// The pull-based streaming message API (BXTP v2 chunked transfers).
//
// A materialized handler gets a whole SoapEnvelope and returns one; a
// STREAM handler never sees a whole message. It pulls request chunks
// through a StreamRequest and pushes response chunks through a
// ResponseWriter, so a 256 MiB array round-trips through a server whose
// per-stream residency is a couple of chunk buffers, not the message.
//
// The two abstract endpoints (StreamSource, StreamSink) are what a server
// plugs in: the thread-per-connection pool backs them with blocking socket
// reads/writes, the event server with bounded queues into its reactor. In
// BOTH cases the blocking behavior of next()/write() IS the backpressure:
// a handler that outruns its peer stalls on its own stream, nothing else.
//
// Patch records are the price of bounded memory: BXSA's Size and
// child-count fields are backpatched, so chunks already on the wire may
// need fix-ups. Producers ship them in a trailing patch chunk; a consumer
// that materializes applies them in assemble(); a pass-through consumer
// (echo, relay) forwards them verbatim and never decodes them.
//
// Streaming security is INVISIBLE at this layer by design: on a channel
// that negotiated a stream-auth algorithm (soap::MessageSecurity's
// stream_auth() offer; FORMAT.md §"Auth trailer") the framing layer
// absorbs every chunk a handler sees or produces into a keyed MAC and
// carries the tag in an Auth trailer chunk before End. Verification is
// incremental and completes BEFORE next() reports end-of-stream, so a
// handler that ran to completion has consumed an authenticated message —
// a tag mismatch surfaces as TransportError, never as truncated-but-
// plausible data. Handlers and these classes need no changes either way.
#pragma once

#include <cstring>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "bxsa/stream_writer.hpp"
#include "common/buffer_pool.hpp"
#include "soap/any_engine.hpp"
#include "transport/framing.hpp"

namespace bxsoap::transport {

/// Where a handler's request chunks come from. next() blocks until a chunk
/// is available and returns nullopt once the end chunk has arrived; it
/// throws TransportError if the connection dies mid-stream.
class StreamSource {
 public:
  virtual ~StreamSource() = default;
  virtual std::optional<StreamChunk> next() = 0;
};

/// Where a handler's response chunks go. write() blocks while the wire (or
/// the reactor's bounded queue) is full; finish() emits the end chunk.
class StreamSink {
 public:
  virtual ~StreamSink() = default;
  virtual void write(StreamChunk chunk) = 0;
  virtual void finish() = 0;
};

/// The handler's view of an incoming chunked message.
///
/// Three consumption styles, cheapest first:
///   * next_chunk(): raw chunks, data and patch alike — a relay forwards
///     them without understanding them.
///   * next_data(): data chunks only; patch chunks are decoded and
///     collected, readable via patches() once the stream ends.
///   * assemble(): materialize everything (data + patches applied) into one
///     SharedBuffer — the escape hatch for handlers that want the tree (or
///     a bxsa::StreamReader) and accept message-sized memory.
class StreamRequest {
 public:
  StreamRequest(std::string content_type, StreamSource& source)
      : content_type_(std::move(content_type)), source_(source) {}

  const std::string& content_type() const noexcept { return content_type_; }

  /// Next chunk verbatim; nullopt at end of stream.
  std::optional<StreamChunk> next_chunk() {
    if (done_) return std::nullopt;
    std::optional<StreamChunk> c = source_.next();
    if (!c) {
      done_ = true;
      return std::nullopt;
    }
    if (c->kind == ChunkKind::kData) data_bytes_ += c->bytes.size();
    return c;
  }

  /// Next DATA chunk; patch chunks are decoded into patches() on the way.
  std::optional<std::vector<std::uint8_t>> next_data() {
    for (;;) {
      std::optional<StreamChunk> c = next_chunk();
      if (!c) return std::nullopt;
      if (c->kind == ChunkKind::kPatch) {
        std::vector<bxsa::PatchRecord> decoded =
            decode_patch_records(c->bytes);
        patches_.insert(patches_.end(), decoded.begin(), decoded.end());
        continue;
      }
      return std::move(c->bytes);
    }
  }

  /// Patches seen so far; complete once next_data()/next_chunk() returned
  /// nullopt. (Producers send them after the last data chunk.)
  std::span<const bxsa::PatchRecord> patches() const noexcept {
    return patches_;
  }

  /// Data bytes pulled so far (the message size once the stream ended).
  std::uint64_t data_bytes() const noexcept { return data_bytes_; }

  bool done() const noexcept { return done_; }

  /// Drain and discard the rest of the stream, recycling chunk buffers
  /// into `pool`. Servers call this after the handler returns so an
  /// unconsumed request tail cannot wedge the connection's backpressure.
  void drain(BufferPool& pool) {
    while (std::optional<StreamChunk> c = next_chunk()) {
      pool.release(std::move(c->bytes));
    }
  }

  /// Materialize the whole message: concatenate every data chunk, apply
  /// the patch records, share the result. Memory use is the full message —
  /// by calling this the handler opts out of the bounded-memory path (the
  /// stream limits in FrameLimits were already enforced upstream, so the
  /// size is at least capped). Chunk buffers recycle into `pool`.
  SharedBuffer assemble(BufferPool& pool) {
    std::vector<std::uint8_t> all;
    while (std::optional<std::vector<std::uint8_t>> chunk = next_data()) {
      all.insert(all.end(), chunk->begin(), chunk->end());
      pool.release(std::move(*chunk));
    }
    apply_patches(all, patches_);
    return SharedBuffer::adopt(std::move(all), &pool);
  }

 private:
  std::string content_type_;
  StreamSource& source_;
  std::vector<bxsa::PatchRecord> patches_;
  std::uint64_t data_bytes_ = 0;
  bool done_ = false;
};

/// The handler's outgoing half. Two production styles:
///   * pass-through: write_chunk()/write_data()/write_patches(), then
///     finish() — an echo or relay moves pooled buffers straight across.
///   * event-level: make_stream_writer() hands back a chunk-mode
///     bxsa::StreamWriter whose buffers flush through this writer as they
///     fill; finish_stream() collects its patch records and closes.
/// Also drives the CLIENT's request stream (same push surface, other
/// direction) — see TcpClientBinding::stream_exchange.
class ResponseWriter {
 public:
  ResponseWriter(StreamSink& sink, BufferPool& pool, std::size_t chunk_bytes,
                 const soap::AnyEncoding* encoding = nullptr)
      : sink_(sink),
        pool_(pool),
        chunk_bytes_(chunk_bytes),
        encoding_(encoding) {}

  BufferPool& pool() noexcept { return pool_; }
  std::size_t chunk_bytes() const noexcept { return chunk_bytes_; }

  /// Forward one chunk verbatim (data or patch).
  void write_chunk(StreamChunk chunk) {
    if (chunk.kind == ChunkKind::kEnd) {
      throw TransportError("end chunks are emitted by finish()");
    }
    require_open();
    sink_.write(std::move(chunk));
  }

  void write_data(std::vector<std::uint8_t> bytes) {
    require_open();
    sink_.write(StreamChunk{ChunkKind::kData, std::move(bytes)});
  }

  void write_patches(std::span<const bxsa::PatchRecord> patches) {
    if (patches.empty()) return;
    require_open();
    ByteWriter body(pool_.acquire(patches.size() * 17));
    encode_patch_records(body, patches);
    sink_.write(StreamChunk{ChunkKind::kPatch, body.take()});
  }

  /// A chunk-mode BXSA event writer flushing into this response. Null when
  /// the server's encoding cannot stream (e.g. textual XML) — the handler
  /// should fall back to pass-through or materialized production.
  std::unique_ptr<bxsa::StreamWriter> make_stream_writer() {
    if (encoding_ == nullptr) return nullptr;
    return encoding_->make_stream_writer(
        chunk_bytes_, pool_,
        [this](std::vector<std::uint8_t> b) { write_data(std::move(b)); });
  }

  /// Close an event-level stream: flush the writer's tail, forward its
  /// patch records, end the message.
  void finish_stream(bxsa::StreamWriter& writer) {
    const std::vector<bxsa::PatchRecord> patches = writer.finish();
    write_patches(patches);
    finish();
  }

  /// End the message (pass-through path; forward patches first if any).
  void finish() {
    require_open();
    finished_ = true;
    sink_.finish();
  }

  bool finished() const noexcept { return finished_; }

 private:
  void require_open() const {
    if (finished_) throw TransportError("write on a finished stream");
  }

  StreamSink& sink_;
  BufferPool& pool_;
  std::size_t chunk_bytes_;
  const soap::AnyEncoding* encoding_;
  bool finished_ = false;
};

/// A streaming exchange handler. Runs on a thread that may block (the
/// pool's connection worker, the event server's per-stream thread); it
/// must consume the request and finish the response (servers drain an
/// unread tail and auto-finish an unfinished response as an empty stream).
using StreamHandler = std::function<void(StreamRequest&, ResponseWriter&)>;

}  // namespace bxsoap::transport
