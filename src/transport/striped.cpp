#include "transport/striped.hpp"

#include <algorithm>
#include <thread>

#include "common/endian.hpp"
#include "common/vls.hpp"

namespace bxsoap::transport {

namespace detail {

namespace {

constexpr char kHelloMagic[4] = {'B', 'X', 'S', 'P'};
constexpr char kMessageMagic[4] = {'B', 'X', 'S', 'M'};

/// The block indices a given stream carries, as (offset, length) slices of
/// the payload — both sides compute the identical layout.
std::vector<std::pair<std::size_t, std::size_t>> slices_for_stream(
    std::size_t payload_size, std::size_t streams, std::size_t stream) {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  std::size_t offset = stream * kStripeBlockSize;
  // Block b lives on stream b % streams; stream s gets blocks s, s+n, ...
  const std::size_t stride = streams * kStripeBlockSize;
  while (offset < payload_size) {
    out.emplace_back(offset,
                     std::min(kStripeBlockSize, payload_size - offset));
    offset += stride;
  }
  return out;
}

}  // namespace

void StripedChannel::send(const soap::WireMessage& m) {
  if (streams_.empty()) throw TransportError("striped channel not connected");

  // Header frame on stream 0.
  ByteWriter header;
  header.write_bytes(kMessageMagic, sizeof(kMessageMagic));
  vls_write(header, m.content_type.size());
  header.write_string(m.content_type);
  header.write<std::uint64_t>(m.payload.size(), ByteOrder::kBig);
  streams_[0].write_all(header.bytes());

  if (m.payload.empty()) return;
  if (streams_.size() == 1) {
    streams_[0].write_all(m.payload);
    return;
  }
  // Writers run concurrently so each connection's window fills in
  // parallel — that is the whole point of striping.
  std::vector<std::thread> writers;
  std::vector<std::string> errors(streams_.size());
  writers.reserve(streams_.size());
  for (std::size_t s = 0; s < streams_.size(); ++s) {
    writers.emplace_back([this, s, &m, &errors] {
      try {
        for (const auto& [offset, len] :
             slices_for_stream(m.payload.size(), streams_.size(), s)) {
          streams_[s].write_all(
              std::span<const std::uint8_t>(m.payload.data() + offset, len));
        }
      } catch (const TransportError& e) {
        errors[s] = e.what();
      }
    });
  }
  for (auto& t : writers) t.join();
  for (const auto& e : errors) {
    if (!e.empty()) throw TransportError("striped send: " + e);
  }
}

soap::WireMessage StripedChannel::receive() {
  if (streams_.empty()) throw TransportError("striped channel not connected");

  std::uint8_t magic[4];
  streams_[0].read_exact(magic, sizeof(magic));
  if (std::memcmp(magic, kMessageMagic, sizeof(magic)) != 0) {
    throw TransportError("striped receive: bad message magic");
  }
  // Content-type length VLS, byte by byte.
  std::uint64_t ct_len = 0;
  int shift = 0;
  for (std::size_t i = 0;; ++i) {
    if (i >= kMaxVlsBytes) throw TransportError("striped: malformed VLS");
    std::uint8_t b;
    streams_[0].read_exact(&b, 1);
    ct_len |= static_cast<std::uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) break;
    shift += 7;
  }
  if (ct_len > 1024) throw TransportError("striped: content type too long");
  soap::WireMessage m;
  const auto ct = streams_[0].read_exact(static_cast<std::size_t>(ct_len));
  m.content_type.assign(reinterpret_cast<const char*>(ct.data()), ct.size());

  std::uint8_t len_be[8];
  streams_[0].read_exact(len_be, sizeof(len_be));
  const std::uint64_t payload_len =
      load<std::uint64_t>(len_be, ByteOrder::kBig);
  if (payload_len > (1ull << 33)) {
    throw TransportError("striped: payload larger than 8 GiB refused");
  }
  m.payload.resize(static_cast<std::size_t>(payload_len));
  if (payload_len == 0) return m;

  if (streams_.size() == 1) {
    streams_[0].read_exact(m.payload.data(), m.payload.size());
    return m;
  }
  std::vector<std::thread> readers;
  std::vector<std::string> errors(streams_.size());
  readers.reserve(streams_.size());
  for (std::size_t s = 0; s < streams_.size(); ++s) {
    readers.emplace_back([this, s, &m, &errors] {
      try {
        for (const auto& [offset, len] :
             slices_for_stream(m.payload.size(), streams_.size(), s)) {
          streams_[s].read_exact(m.payload.data() + offset, len);
        }
      } catch (const TransportError& e) {
        errors[s] = e.what();
      }
    });
  }
  for (auto& t : readers) t.join();
  for (const auto& e : errors) {
    if (!e.empty()) throw TransportError("striped receive: " + e);
  }
  return m;
}

}  // namespace detail

StripedClientBinding::StripedClientBinding(std::uint16_t port, int streams)
    : port_(port), streams_(streams) {
  if (streams < 1 || streams > kMaxStripeStreams) {
    throw TransportError("stream count out of range");
  }
}

void StripedClientBinding::ensure_connected() {
  if (channel_.connected()) return;
  std::vector<TcpStream> streams;
  streams.reserve(static_cast<std::size_t>(streams_));
  for (int i = 0; i < streams_; ++i) {
    TcpStream s = TcpStream::connect(port_);
    s.set_io_stats(io_);
    s.set_no_delay(true);
    std::uint8_t hello[6] = {'B', 'X', 'S', 'P',
                             static_cast<std::uint8_t>(i),
                             static_cast<std::uint8_t>(streams_)};
    s.write_all(std::span<const std::uint8_t>(hello, sizeof(hello)));
    streams.push_back(std::move(s));
  }
  channel_ = detail::StripedChannel(std::move(streams));
}

void StripedClientBinding::send_request(soap::WireMessage m) {
  ensure_connected();
  channel_.send(m);
}

soap::WireMessage StripedClientBinding::receive_response() {
  if (!channel_.connected()) throw TransportError("not connected");
  return channel_.receive();
}

StripedServerBinding::StripedServerBinding()
    : state_(std::make_shared<State>()) {}

std::shared_ptr<detail::StripedChannel> StripedServerBinding::ensure_session() {
  if (auto existing = state_->current()) return existing;
  // Accept the first hello to learn the stream count, then the rest.
  std::vector<TcpStream> ordered;
  std::size_t expected = 0;
  std::size_t got = 0;
  do {
    TcpStream s = state_->listener.accept();
    s.set_io_stats(state_->io);
    s.set_no_delay(true);
    std::uint8_t hello[6];
    s.read_exact(hello, sizeof(hello));
    if (std::memcmp(hello, "BXSP", 4) != 0) {
      throw TransportError("striped accept: bad hello");
    }
    const std::size_t index = hello[4];
    const std::size_t total = hello[5];
    if (total == 0 || total > static_cast<std::size_t>(kMaxStripeStreams) ||
        index >= total) {
      throw TransportError("striped accept: bad stream index");
    }
    if (expected == 0) {
      expected = total;
      ordered.resize(expected);
    } else if (total != expected) {
      throw TransportError("striped accept: inconsistent stream count");
    }
    if (ordered[index].valid()) {
      throw TransportError("striped accept: duplicate stream index");
    }
    ordered[index] = std::move(s);
    ++got;
  } while (got < expected);
  auto channel =
      std::make_shared<detail::StripedChannel>(std::move(ordered));
  state_->set(channel);
  return channel;
}

soap::WireMessage StripedServerBinding::receive_request() {
  for (;;) {
    std::shared_ptr<detail::StripedChannel> channel = ensure_session();
    try {
      return channel->receive();
    } catch (const TransportError&) {
      // Client went away between exchanges; wait for the next session.
      state_->drop(channel);
    }
  }
}

void StripedServerBinding::send_response(soap::WireMessage m) {
  std::shared_ptr<detail::StripedChannel> channel = state_->current();
  if (channel == nullptr) throw TransportError("no client connected");
  channel->send(m);
}

}  // namespace bxsoap::transport
