// Striped SOAP-over-TCP binding — the paper's conclusion, implemented:
//
//   "Both SOAP over BXSA/TCP scheme and SOAP with HTTP data channel ...
//    are still restricted by the bandwidth of a single TCP stream. With
//    our generic framework, however, we can easily rebind the BXSA
//    transport to multiple TCP streams, thereby eliminating this
//    restriction."
//
// One logical conversation rides N parallel TCP connections. Setup: the
// client opens N connections and sends a one-byte-indexed hello on each
// ("BXSP", index, total); the server accepts and orders them. Messages:
// a header frame travels on stream 0 (content type + total length), then
// the payload is striped DETERMINISTICALLY — fixed-size blocks dealt
// round-robin — so no per-block headers or reassembly metadata are needed;
// the receiver computes each stream's slice list from the total length and
// reads them concurrently.
//
// It is a full BindingPolicy: SoapEngine<BxsaEncoding, StripedClientBinding>
// works exactly like the single-stream TcpClientBinding.
#pragma once

#include <memory>
#include <mutex>

#include "soap/binding.hpp"
#include "transport/socket.hpp"

namespace bxsoap::transport {

inline constexpr std::size_t kStripeBlockSize = 256 * 1024;
inline constexpr int kMaxStripeStreams = 64;

namespace detail {

/// The shared send/receive logic once N ordered streams exist.
class StripedChannel {
 public:
  StripedChannel() = default;
  explicit StripedChannel(std::vector<TcpStream> streams)
      : streams_(std::move(streams)) {}

  bool connected() const noexcept { return !streams_.empty(); }
  std::size_t stream_count() const noexcept { return streams_.size(); }

  void send(const soap::WireMessage& m);
  soap::WireMessage receive();

  void close() noexcept {
    for (auto& s : streams_) s.close();
    streams_.clear();
  }
  void shutdown() noexcept {
    for (auto& s : streams_) s.shutdown_both();
  }

  /// Tally all member streams' bytes/syscalls into `io` (obs/metrics.hpp).
  void set_io_stats(obs::IoStats* io) noexcept {
    for (auto& s : streams_) s.set_io_stats(io);
  }

 private:
  std::vector<TcpStream> streams_;
};

}  // namespace detail

class StripedClientBinding {
 public:
  /// Connect `streams` parallel connections to the server (lazy, on first
  /// send).
  StripedClientBinding(std::uint16_t port, int streams);

  void send_request(soap::WireMessage m);
  soap::WireMessage receive_response();
  soap::WireMessage receive_request() {
    throw TransportError("receive_request on a client binding");
  }
  void send_response(soap::WireMessage) {
    throw TransportError("send_response on a client binding");
  }

  void close() { channel_.close(); }

  /// Tally every stripe stream's bytes/syscalls into `io`.
  void set_io_stats(obs::IoStats* io) noexcept {
    io_ = io;
    channel_.set_io_stats(io);
  }

 private:
  void ensure_connected();

  std::uint16_t port_;
  int streams_;
  detail::StripedChannel channel_;
  obs::IoStats* io_ = nullptr;
};

class StripedServerBinding {
 public:
  StripedServerBinding();

  std::uint16_t port() const noexcept { return state_->listener.port(); }

  soap::WireMessage receive_request();
  void send_response(soap::WireMessage m);
  void send_request(soap::WireMessage) {
    throw TransportError("send_request on a server binding");
  }
  soap::WireMessage receive_response() {
    throw TransportError("receive_response on a server binding");
  }

  /// Unblock a pending accept or read from another thread (same contract
  /// as TcpServerBinding::shutdown).
  void shutdown() {
    state_->listener.shutdown();
    if (auto ch = state_->current()) ch->shutdown();
  }

  /// Tally every accepted session's bytes/syscalls into `io`. Applies to
  /// sessions established after the call.
  void set_io_stats(obs::IoStats* io) noexcept { state_->io = io; }

 private:
  std::shared_ptr<detail::StripedChannel> ensure_session();

  struct State {
    TcpListener listener{0};
    std::mutex mu;
    std::shared_ptr<detail::StripedChannel> channel;
    obs::IoStats* io = nullptr;

    std::shared_ptr<detail::StripedChannel> current() {
      std::lock_guard lock(mu);
      return channel;
    }
    void set(std::shared_ptr<detail::StripedChannel> c) {
      std::lock_guard lock(mu);
      channel = std::move(c);
    }
    void drop(const std::shared_ptr<detail::StripedChannel>& c) {
      std::lock_guard lock(mu);
      if (channel == c) channel.reset();
    }
  };

  std::shared_ptr<State> state_;
};

static_assert(soap::BindingPolicy<StripedClientBinding>);
static_assert(soap::BindingPolicy<StripedServerBinding>);

}  // namespace bxsoap::transport
