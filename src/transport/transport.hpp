// Umbrella header for the transport layer.
#pragma once

#include "transport/bindings.hpp"     // IWYU pragma: export
#include "transport/fault.hpp"        // IWYU pragma: export
#include "transport/file_server.hpp"  // IWYU pragma: export
#include "transport/framing.hpp"      // IWYU pragma: export
#include "transport/http.hpp"         // IWYU pragma: export
#include "transport/inmemory.hpp"     // IWYU pragma: export
#include "transport/socket.hpp"       // IWYU pragma: export
#include "transport/spool.hpp"        // IWYU pragma: export
#include "transport/striped.hpp"      // IWYU pragma: export
