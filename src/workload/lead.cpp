#include "workload/lead.hpp"

#include <cmath>

#include "common/prng.hpp"
#include "xdm/qname.hpp"

namespace bxsoap::workload {

using namespace bxsoap::xdm;

namespace {
constexpr std::string_view kLeadUri = "urn:lead";

QName lead_name(std::string_view local) {
  return QName(std::string(kLeadUri), std::string(local), "lead");
}
}  // namespace

LeadDataset make_lead_dataset(std::size_t model_size, std::uint64_t seed) {
  SplitMix64 rng(seed);
  LeadDataset d;
  d.index.resize(model_size);
  d.values.resize(model_size);
  for (std::size_t i = 0; i < model_size; ++i) {
    d.index[i] = static_cast<std::int32_t>(i);
    // Temperature-like readings in [200, 320) K, quantized to 0.01 so the
    // textual form is 5-6 characters (comparable to the LEAD sample).
    const double raw = rng.next_double(200.0, 320.0);
    d.values[i] = std::round(raw * 100.0) / 100.0;
  }
  return d;
}

std::uint64_t dataset_checksum(const LeadDataset& d) {
  std::uint64_t h = 0xcbf29ce484222325ULL ^ d.model_size();
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
  };
  for (const std::int32_t i : d.index) {
    mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(i)));
  }
  for (const double v : d.values) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, 8);
    mix(bits);
  }
  return h;
}

NodePtr to_bxdm(const LeadDataset& d) {
  auto root = make_element(lead_name("data"));
  root->declare_namespace("lead", std::string(kLeadUri));
  root->add_child(make_array<std::int32_t>(lead_name("index"), d.index));
  root->add_child(make_array<double>(lead_name("values"), d.values));
  return root;
}

LeadDataset from_bxdm(const ElementBase& payload) {
  if (payload.kind() != NodeKind::kElement) {
    throw DecodeError("lead payload must be a component element");
  }
  const auto& root = static_cast<const Element&>(payload);
  const ElementBase* index = root.find_child("index");
  const ElementBase* values = root.find_child("values");
  if (index == nullptr || values == nullptr) {
    throw DecodeError("lead payload missing index/values arrays");
  }
  const auto* idx = dynamic_cast<const ArrayElement<std::int32_t>*>(index);
  const auto* val = dynamic_cast<const ArrayElement<double>*>(values);
  if (idx == nullptr || val == nullptr) {
    throw DecodeError("lead payload arrays have wrong item types");
  }
  if (idx->count() != val->count()) {
    throw DecodeError("lead payload arrays differ in length");
  }
  LeadDataset d;
  d.index.assign(idx->view().begin(), idx->view().end());
  d.values.assign(val->view().begin(), val->view().end());
  return d;
}

netcdf::NcFile to_netcdf(const LeadDataset& d) {
  netcdf::NcFile file;
  const std::uint32_t dim = file.add_dimension(
      "model", static_cast<std::uint32_t>(d.model_size()));
  file.global_attributes().push_back(
      {"title", std::string("LEAD-like atmospheric sample")});
  netcdf::Variable& idx =
      file.add_variable("index", netcdf::NcType::kInt, {dim});
  idx.set_values(d.index);
  netcdf::Variable& val =
      file.add_variable("values", netcdf::NcType::kDouble, {dim});
  val.attributes().push_back({"units", std::string("kelvin")});
  val.set_values(d.values);
  return file;
}

LeadDataset from_netcdf(const netcdf::NcFile& file) {
  const netcdf::Variable* idx = file.find_variable("index");
  const netcdf::Variable* val = file.find_variable("values");
  if (idx == nullptr || val == nullptr) {
    throw DecodeError("netcdf file missing index/values variables");
  }
  LeadDataset d;
  d.index = idx->values<std::int32_t>();
  d.values = val->values<double>();
  if (d.index.size() != d.values.size()) {
    throw DecodeError("netcdf variables differ in length");
  }
  return d;
}

void write_netcdf_file(const LeadDataset& d,
                       const std::filesystem::path& path) {
  to_netcdf(d).write_file(path);
}

LeadDataset read_netcdf_file(const std::filesystem::path& path) {
  return from_netcdf(netcdf::NcFile::read_file(path));
}

std::vector<std::size_t> figure56_model_sizes() {
  std::vector<std::size_t> sizes;
  for (std::size_t n = 1365; n <= 5591040; n *= 4) {
    sizes.push_back(n);
  }
  return sizes;
}

// ---- GridDataset ----------------------------------------------------------------

GridDataset make_grid_dataset(std::uint32_t time, std::uint32_t y,
                              std::uint32_t x, std::uint32_t height,
                              std::uint64_t seed) {
  GridDataset d;
  d.time = time;
  d.y = y;
  d.x = x;
  d.height = height;
  const std::size_t n = d.cell_count();
  d.index.resize(n);
  d.values.resize(n);
  SplitMix64 rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    d.index[i] = static_cast<std::int32_t>(i);
    d.values[i] = std::round(rng.next_double(200.0, 320.0) * 100.0) / 100.0;
  }
  return d;
}

netcdf::NcFile grid_to_netcdf(const GridDataset& d) {
  netcdf::NcFile file;
  const std::uint32_t dt = file.add_dimension("time", d.time);
  const std::uint32_t dy = file.add_dimension("y", d.y);
  const std::uint32_t dx = file.add_dimension("x", d.x);
  const std::uint32_t dh = file.add_dimension("height", d.height);
  const std::vector<std::uint32_t> dims{dt, dy, dx, dh};
  file.global_attributes().push_back(
      {"title", std::string("LEAD-like 4-D atmospheric grid")});
  file.add_variable("index", netcdf::NcType::kInt, dims)
      .set_values(d.index);
  netcdf::Variable& vals =
      file.add_variable("values", netcdf::NcType::kDouble, dims);
  vals.attributes().push_back({"units", std::string("kelvin")});
  vals.set_values(d.values);
  return file;
}

GridDataset grid_from_netcdf(const netcdf::NcFile& file) {
  GridDataset d;
  auto dim_of = [&file](std::string_view name) -> std::uint32_t {
    for (const auto& dim : file.dimensions()) {
      if (dim.name == name) return dim.length;
    }
    throw DecodeError("grid netcdf missing dimension '" + std::string(name) +
                      "'");
  };
  d.time = dim_of("time");
  d.y = dim_of("y");
  d.x = dim_of("x");
  d.height = dim_of("height");
  const netcdf::Variable* idx = file.find_variable("index");
  const netcdf::Variable* val = file.find_variable("values");
  if (idx == nullptr || val == nullptr) {
    throw DecodeError("grid netcdf missing index/values variables");
  }
  d.index = idx->values<std::int32_t>();
  d.values = val->values<double>();
  if (d.index.size() != d.cell_count() ||
      d.values.size() != d.cell_count()) {
    throw DecodeError("grid netcdf variable lengths disagree with shape");
  }
  return d;
}

xdm::NodePtr grid_to_bxdm(const GridDataset& d) {
  auto root = make_element(lead_name("grid"));
  root->declare_namespace("lead", std::string(kLeadUri));
  root->add_attribute(QName("time"), d.time);
  root->add_attribute(QName("y"), d.y);
  root->add_attribute(QName("x"), d.x);
  root->add_attribute(QName("height"), d.height);
  root->add_child(make_array<std::int32_t>(lead_name("index"), d.index));
  root->add_child(make_array<double>(lead_name("values"), d.values));
  return root;
}

GridDataset grid_from_bxdm(const xdm::ElementBase& payload) {
  if (payload.kind() != NodeKind::kElement ||
      payload.name().local != "grid") {
    throw DecodeError("expected a lead:grid payload");
  }
  auto dim = [&payload](std::string_view name) -> std::uint32_t {
    const Attribute* a = payload.find_attribute(name);
    if (a == nullptr) {
      throw DecodeError("grid payload missing @" + std::string(name));
    }
    return scalar_get<std::uint32_t>(
        parse_scalar(AtomType::kUInt32, a->text()));
  };
  GridDataset d;
  d.time = dim("time");
  d.y = dim("y");
  d.x = dim("x");
  d.height = dim("height");
  const auto& root = static_cast<const Element&>(payload);
  const auto* idx = dynamic_cast<const ArrayElement<std::int32_t>*>(
      root.find_child("index"));
  const auto* val =
      dynamic_cast<const ArrayElement<double>*>(root.find_child("values"));
  if (idx == nullptr || val == nullptr) {
    throw DecodeError("grid payload arrays missing or mistyped");
  }
  d.index.assign(idx->view().begin(), idx->view().end());
  d.values.assign(val->view().begin(), val->view().end());
  if (d.index.size() != d.cell_count() ||
      d.values.size() != d.cell_count()) {
    throw DecodeError("grid payload lengths disagree with shape");
  }
  return d;
}

LeadDataset flatten(const GridDataset& d) {
  LeadDataset flat;
  flat.index = d.index;
  flat.values = d.values;
  return flat;
}

}  // namespace bxsoap::workload
