// The paper's experimental data set (§6): "derived from a sample file used
// for [the] LEAD project ... consists of two equal-size arrays:
//   * an array of 4-byte integers as the index and
//   * an array of double-precision, 8-byte floating point numbers to
//     represent the dimension values."
// The array length is the experiment's MODEL SIZE.
//
// Our synthetic stand-in: sequential indices and atmospheric-looking values
// (temperatures in Kelvin, two decimals). The value distribution matters
// only for the XML size row of Table 1 — two-decimal readings give text
// lengths comparable to the paper's real LEAD sample, which reported a
// 99.1% XML size overhead at model size 1000.
#pragma once

#include <cstdint>
#include <filesystem>
#include <vector>

#include "netcdf/netcdf.hpp"
#include "xdm/node.hpp"

namespace bxsoap::workload {

struct LeadDataset {
  std::vector<std::int32_t> index;
  std::vector<double> values;

  std::size_t model_size() const noexcept { return index.size(); }
  /// Bytes of the native representation: model_size * (4 + 8).
  std::size_t native_bytes() const noexcept { return index.size() * 12; }

  friend bool operator==(const LeadDataset& a,
                         const LeadDataset& b) = default;
};

/// Deterministic generator (same seed, same data on every platform).
LeadDataset make_lead_dataset(std::size_t model_size,
                              std::uint64_t seed = 2006);

/// Order-sensitive checksum used by the verification service.
std::uint64_t dataset_checksum(const LeadDataset& d);

/// bXDM payload element:
///   <lead:data xmlns:lead="urn:lead"><lead:index .../><lead:values .../>
xdm::NodePtr to_bxdm(const LeadDataset& d);

/// Inverse of to_bxdm; throws DecodeError when the shape is wrong.
LeadDataset from_bxdm(const xdm::ElementBase& payload);

/// netCDF classic form: dimension "model", variables "index" (int) and
/// "values" (double) — the separated scheme's file format.
netcdf::NcFile to_netcdf(const LeadDataset& d);
LeadDataset from_netcdf(const netcdf::NcFile& file);

void write_netcdf_file(const LeadDataset& d,
                       const std::filesystem::path& path);
LeadDataset read_netcdf_file(const std::filesystem::path& path);

/// The model sizes swept by Figures 5/6: 1365 quadrupling to 5591040
/// ("the corresponding BXSA serialization size is from 16K bytes to 64M").
std::vector<std::size_t> figure56_model_sizes();

// ---- the full 4-D shape ---------------------------------------------------------
//
// The paper describes the LEAD sample as atmospheric information that
// "depends on four parameters, namely time, y, x and height"; the
// experiments flatten it to the two arrays above. GridDataset keeps the
// 4-D structure so the netCDF substrate is exercised the way a real LEAD
// file would: four dimensions and 4-D variables.

struct GridDataset {
  std::uint32_t time = 0, y = 0, x = 0, height = 0;  // dimension lengths
  // Flattened in C order (time-major): index [t][yy][xx][h].
  std::vector<std::int32_t> index;
  std::vector<double> values;

  std::size_t cell_count() const noexcept {
    return static_cast<std::size_t>(time) * y * x * height;
  }
  /// Linear offset of one grid cell.
  std::size_t offset(std::uint32_t t, std::uint32_t yy, std::uint32_t xx,
                     std::uint32_t h) const noexcept {
    return ((static_cast<std::size_t>(t) * y + yy) * x + xx) * height + h;
  }

  friend bool operator==(const GridDataset&, const GridDataset&) = default;
};

GridDataset make_grid_dataset(std::uint32_t time, std::uint32_t y,
                              std::uint32_t x, std::uint32_t height,
                              std::uint64_t seed = 2006);

/// netCDF form with the four real dimensions and two 4-D variables.
netcdf::NcFile grid_to_netcdf(const GridDataset& d);
GridDataset grid_from_netcdf(const netcdf::NcFile& file);

/// bXDM form: the grid shape travels as typed attributes on the payload
/// element; the data as packed arrays (flattened, like the wire always is).
xdm::NodePtr grid_to_bxdm(const GridDataset& d);
GridDataset grid_from_bxdm(const xdm::ElementBase& payload);

/// Drop the shape: the flat view the paper's experiments verify.
LeadDataset flatten(const GridDataset& d);

}  // namespace bxsoap::workload
