#include "xbs/xbs.hpp"

// Header-only implementation; this TU anchors the library target.
