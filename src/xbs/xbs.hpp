// XBS — a minimal streaming binary serializer (Chiu, HPC Symposium 2004).
//
// The format the paper layers BXSA on. It packs fundamental types into a
// byte sequence:
//   * 1-, 2-, 4- and 8-byte integers,
//   * 4- and 8-byte IEEE-754 floating-point numbers,
//   * 1-dimensional arrays of the above,
// in either byte order. Array payloads are aligned to a multiple of the
// item size *relative to the stream origin*, so a consumer that maps the
// stream at an aligned address can point native array types directly at the
// payload (the zero-copy property BXSA's ArrayElement relies on).
//
// Alignment padding is explicit zero bytes emitted by the writer and skipped
// by the reader; both sides derive the padding purely from the current
// stream offset, so no padding metadata appears on the wire.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/buffer.hpp"
#include "common/endian.hpp"
#include "common/vls.hpp"

namespace bxsoap::xbs {

/// Returns the number of pad bytes needed to advance `offset` to the next
/// multiple of `alignment` (a power of two).
constexpr std::size_t padding_for(std::size_t offset, std::size_t alignment) {
  return (alignment - (offset % alignment)) % alignment;
}

/// Serializes fundamental values into a growing byte stream.
class Writer {
 public:
  explicit Writer(ByteOrder order = host_byte_order()) : order_(order) {}

  /// Adopt a ByteWriter that may already hold bytes (e.g. a reserved frame
  /// header in a pooled buffer). The XBS stream origin is wherever the
  /// adopted writer currently ends, so array alignment stays relative to the
  /// *payload* start — wire-identical to encoding into a fresh buffer.
  Writer(ByteOrder order, ByteWriter out)
      : order_(order), out_(std::move(out)), origin_(out_.size()) {}

  ByteOrder order() const noexcept { return order_; }
  std::size_t offset() const noexcept {
    return base_ + (out_.size() - origin_);
  }

  /// Bytes currently buffered past the origin (what a drain would return).
  std::size_t buffered() const noexcept { return out_.size() - origin_; }

  /// Logical offset of the first byte still in the buffer: everything
  /// before it has been drained and can no longer be patched in place.
  std::size_t stream_base() const noexcept { return base_; }

  /// Chunk-mode flush: hand back the buffered bytes and continue writing
  /// into `fresh` (an empty, typically pooled, vector). Logical positions
  /// — offset(), patch_at() — keep counting across the drain, so the
  /// stream reads as one contiguous sequence even though its storage left
  /// in pieces. Only meaningful on a writer whose origin is 0 (no adopted
  /// header prefix); patch_at() on a drained offset is out of bounds.
  std::vector<std::uint8_t> drain(std::vector<std::uint8_t> fresh = {}) {
    base_ += out_.size() - origin_;
    std::vector<std::uint8_t> full = out_.take();
    fresh.clear();
    out_ = ByteWriter(std::move(fresh));
    origin_ = 0;
    return full;
  }

  /// Write a scalar without alignment (BXSA stores scalar frame values
  /// unaligned; only array payloads are aligned).
  template <typename T>
  void put_unaligned(T v) {
    out_.write(v, order_);
  }

  /// Write a scalar aligned to sizeof(T) from the stream origin.
  template <typename T>
  void put(T v) {
    align_to(sizeof(T));
    out_.write(v, order_);
  }

  void put_u8(std::uint8_t v) { out_.write_u8(v); }

  void put_vls(std::uint64_t v) { vls_write(out_, v); }

  void put_raw(std::span<const std::uint8_t> bytes) { out_.write_bytes(bytes); }
  void put_raw(const void* data, std::size_t n) { out_.write_bytes(data, n); }

  /// VLS length followed by the bytes of `s`.
  void put_string(std::string_view s) {
    put_vls(s.size());
    out_.write_string(s);
  }

  /// Write a packed 1-D array: pads to alignment sizeof(T), then the items.
  /// The count is NOT written here; BXSA stores it in the frame header.
  template <typename T>
  void put_array(std::span<const T> values) {
    align_to(sizeof(T));
    out_.write_array(values, order_);
  }

  void align_to(std::size_t alignment) {
    out_.write_padding(padding_for(offset(), alignment));
  }

  /// Backpatch at a stream-relative offset (see offset()). The offset must
  /// still be buffered: patching bytes that a drain() already shipped is a
  /// caller bug (the chunked encoder records a PatchRecord instead).
  void patch_at(std::size_t rel_offset, const void* data, std::size_t n) {
    if (rel_offset < base_) {
      throw EncodeError("patch target was already drained");
    }
    out_.patch_bytes(origin_ + (rel_offset - base_), data, n);
  }

  std::vector<std::uint8_t> take() { return out_.take(); }
  /// Release the underlying ByteWriter, header prefix and all.
  ByteWriter take_writer() { return std::move(out_); }
  std::span<const std::uint8_t> bytes() const { return out_.bytes(); }
  ByteWriter& raw_writer() { return out_; }

 private:
  ByteOrder order_;
  ByteWriter out_;
  std::size_t origin_ = 0;
  std::size_t base_ = 0;  // logical offset of the buffer's first byte
};

/// Deserializes values written by Writer. The reader is told the byte order
/// per value group (BXSA frames may change order frame-to-frame).
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : in_(data) {}

  std::size_t offset() const noexcept { return in_.position(); }
  std::size_t remaining() const noexcept { return in_.remaining(); }
  bool at_end() const noexcept { return in_.at_end(); }

  template <typename T>
  T get_unaligned(ByteOrder order) {
    return in_.read<T>(order);
  }

  template <typename T>
  T get(ByteOrder order) {
    align_to(sizeof(T));
    return in_.read<T>(order);
  }

  std::uint8_t get_u8() { return in_.read_u8(); }

  std::uint64_t get_vls() { return vls_read(in_); }

  std::string get_string() {
    const auto n = get_vls();
    return in_.read_string(static_cast<std::size_t>(n));
  }

  /// Non-owning get_string for names that are immediately interned; valid
  /// only while the underlying buffer lives.
  std::string_view get_string_view() {
    const auto n = get_vls();
    return in_.read_string_view(static_cast<std::size_t>(n));
  }

  std::span<const std::uint8_t> get_raw(std::size_t n) {
    return in_.read_bytes(n);
  }

  template <typename T>
  std::vector<T> get_array(std::size_t count, ByteOrder order) {
    align_to(sizeof(T));
    return in_.read_array<T>(count, order);
  }

  /// Align and return a non-owning view of the packed payload without
  /// copying (the memory-mapped-I/O path: valid only while the underlying
  /// buffer lives, and only byte-order-correct when order == host).
  template <typename T>
  std::span<const T> view_array(std::size_t count) {
    align_to(sizeof(T));
    // Divide, don't multiply: count * sizeof(T) can wrap size_t on a
    // hostile count and sail past the bounds check inside read_bytes.
    if (count > in_.remaining() / sizeof(T)) {
      throw DecodeError("array count exceeds remaining input");
    }
    auto raw = in_.read_bytes(count * sizeof(T));
    return {reinterpret_cast<const T*>(raw.data()), count};
  }

  void align_to(std::size_t alignment) {
    in_.skip(padding_for(in_.position(), alignment));
  }

  void skip(std::size_t n) { in_.skip(n); }
  void seek(std::size_t pos) { in_.seek(pos); }

 private:
  ByteReader in_;
};

}  // namespace bxsoap::xbs
