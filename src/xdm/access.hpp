// Typed convenience accessors over bXDM trees.
//
// Application code reading a decoded message wants "the double in <temp>",
// not a dynamic_cast chain. These helpers return nullopt on any shape
// mismatch (missing child, wrong node kind, wrong atom type), so callers
// can distinguish "absent" from "present" without exceptions; use
// require_* when absence is a protocol violation.
#pragma once

#include <optional>

#include "xdm/node.hpp"

namespace bxsoap::xdm {

/// Typed value of a LeafElement child with the given local name.
template <Atomic T>
std::optional<T> leaf_value(const ElementBase& parent,
                            std::string_view child_local) {
  if (parent.kind() != NodeKind::kElement) return std::nullopt;
  const ElementBase* child =
      static_cast<const Element&>(parent).find_child(child_local);
  if (child == nullptr || child->kind() != NodeKind::kLeafElement) {
    return std::nullopt;
  }
  const auto* leaf = dynamic_cast<const LeafElement<T>*>(child);
  if (leaf == nullptr) return std::nullopt;
  return leaf->get();
}

/// Typed values of an ArrayElement child (copies; use array_view for the
/// zero-copy span).
template <PackedAtomic T>
std::optional<std::vector<T>> array_values(const ElementBase& parent,
                                           std::string_view child_local) {
  if (parent.kind() != NodeKind::kElement) return std::nullopt;
  const ElementBase* child =
      static_cast<const Element&>(parent).find_child(child_local);
  const auto* arr = dynamic_cast<const ArrayElement<T>*>(child);
  if (arr == nullptr) return std::nullopt;
  const auto v = arr->view();
  return std::vector<T>(v.begin(), v.end());
}

/// Zero-copy span over an ArrayElement child (valid while the tree lives).
template <PackedAtomic T>
std::optional<std::span<const T>> array_view(const ElementBase& parent,
                                             std::string_view child_local) {
  if (parent.kind() != NodeKind::kElement) return std::nullopt;
  const ElementBase* child =
      static_cast<const Element&>(parent).find_child(child_local);
  const auto* arr = dynamic_cast<const ArrayElement<T>*>(child);
  if (arr == nullptr) return std::nullopt;
  return arr->view();
}

/// Typed attribute value.
template <Atomic T>
std::optional<T> attr_value(const ElementBase& e, std::string_view local) {
  const Attribute* a = e.find_attribute(local);
  if (a == nullptr) return std::nullopt;
  const T* v = std::get_if<T>(&a->value);
  if (v == nullptr) return std::nullopt;
  return *v;
}

/// Throwing variants for protocol-mandatory fields.
template <Atomic T>
T require_leaf(const ElementBase& parent, std::string_view child_local) {
  auto v = leaf_value<T>(parent, child_local);
  if (!v) {
    throw DecodeError("required leaf <" + std::string(child_local) +
                      "> missing or mistyped under <" + parent.name().local +
                      ">");
  }
  return *v;
}

template <Atomic T>
T require_attr(const ElementBase& e, std::string_view local) {
  auto v = attr_value<T>(e, local);
  if (!v) {
    throw DecodeError("required attribute @" + std::string(local) +
                      " missing or mistyped on <" + e.name().local + ">");
  }
  return *v;
}

}  // namespace bxsoap::xdm
