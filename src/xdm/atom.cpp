#include "xdm/atom.hpp"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "common/numeric_text.hpp"

namespace bxsoap::xdm {

std::size_t atom_wire_size(AtomType t) {
  switch (t) {
    case AtomType::kString:
      return 0;
    case AtomType::kInt8:
    case AtomType::kUInt8:
    case AtomType::kBool:
      return 1;
    case AtomType::kInt16:
    case AtomType::kUInt16:
      return 2;
    case AtomType::kInt32:
    case AtomType::kUInt32:
    case AtomType::kFloat32:
      return 4;
    case AtomType::kInt64:
    case AtomType::kUInt64:
    case AtomType::kFloat64:
      return 8;
  }
  throw Error("unknown atom type");
}

std::string_view atom_xsd_name(AtomType t) {
  switch (t) {
    case AtomType::kString:
      return "xsd:string";
    case AtomType::kInt8:
      return "xsd:byte";
    case AtomType::kUInt8:
      return "xsd:unsignedByte";
    case AtomType::kInt16:
      return "xsd:short";
    case AtomType::kUInt16:
      return "xsd:unsignedShort";
    case AtomType::kInt32:
      return "xsd:int";
    case AtomType::kUInt32:
      return "xsd:unsignedInt";
    case AtomType::kInt64:
      return "xsd:long";
    case AtomType::kUInt64:
      return "xsd:unsignedLong";
    case AtomType::kFloat32:
      return "xsd:float";
    case AtomType::kFloat64:
      return "xsd:double";
    case AtomType::kBool:
      return "xsd:boolean";
  }
  throw Error("unknown atom type");
}

std::optional<AtomType> atom_from_xsd_local(std::string_view local) {
  if (local == "string") return AtomType::kString;
  if (local == "byte") return AtomType::kInt8;
  if (local == "unsignedByte") return AtomType::kUInt8;
  if (local == "short") return AtomType::kInt16;
  if (local == "unsignedShort") return AtomType::kUInt16;
  if (local == "int") return AtomType::kInt32;
  if (local == "unsignedInt") return AtomType::kUInt32;
  if (local == "long") return AtomType::kInt64;
  if (local == "unsignedLong") return AtomType::kUInt64;
  if (local == "float") return AtomType::kFloat32;
  if (local == "double") return AtomType::kFloat64;
  if (local == "boolean") return AtomType::kBool;
  return std::nullopt;
}

std::string_view atom_debug_name(AtomType t) {
  switch (t) {
    case AtomType::kString:
      return "string";
    case AtomType::kInt8:
      return "int8";
    case AtomType::kUInt8:
      return "uint8";
    case AtomType::kInt16:
      return "int16";
    case AtomType::kUInt16:
      return "uint16";
    case AtomType::kInt32:
      return "int32";
    case AtomType::kUInt32:
      return "uint32";
    case AtomType::kInt64:
      return "int64";
    case AtomType::kUInt64:
      return "uint64";
    case AtomType::kFloat32:
      return "float32";
    case AtomType::kFloat64:
      return "float64";
    case AtomType::kBool:
      return "bool";
  }
  throw Error("unknown atom type");
}

AtomType scalar_type(const ScalarValue& v) {
  return std::visit(
      [](const auto& x) {
        using T = std::decay_t<decltype(x)>;
        return AtomTraits<T>::kType;
      },
      v);
}

void append_scalar_text(std::string& out, const ScalarValue& v) {
  std::visit(
      [&out](const auto& x) {
        using T = std::decay_t<decltype(x)>;
        if constexpr (std::is_same_v<T, std::string>) {
          out += x;
        } else if constexpr (std::is_same_v<T, bool>) {
          out += x ? "true" : "false";
        } else if constexpr (std::is_same_v<T, float>) {
          append_float(out, x);
        } else if constexpr (std::is_same_v<T, double>) {
          append_double(out, x);
        } else if constexpr (std::is_signed_v<T>) {
          append_int64(out, static_cast<std::int64_t>(x));
        } else {
          append_uint64(out, static_cast<std::uint64_t>(x));
        }
      },
      v);
}

std::string scalar_text(const ScalarValue& v) {
  std::string s;
  append_scalar_text(s, v);
  return s;
}

namespace {

template <typename T>
T parse_integral_or_throw(std::string_view text) {
  if constexpr (std::is_signed_v<T>) {
    auto v = parse_int64(text);
    if (!v || *v < static_cast<std::int64_t>(std::numeric_limits<T>::min()) ||
        *v > static_cast<std::int64_t>(std::numeric_limits<T>::max())) {
      throw DecodeError("bad integer lexical form: '" + std::string(text) +
                        "'");
    }
    return static_cast<T>(*v);
  } else {
    auto v = parse_uint64(text);
    if (!v || *v > static_cast<std::uint64_t>(std::numeric_limits<T>::max())) {
      throw DecodeError("bad unsigned lexical form: '" + std::string(text) +
                        "'");
    }
    return static_cast<T>(*v);
  }
}

}  // namespace

ScalarValue parse_scalar(AtomType type, std::string_view text) {
  const std::string_view t = trim_xml_ws(text);
  switch (type) {
    case AtomType::kString:
      return std::string(text);  // strings keep surrounding whitespace
    case AtomType::kInt8:
      return parse_integral_or_throw<std::int8_t>(t);
    case AtomType::kUInt8:
      return parse_integral_or_throw<std::uint8_t>(t);
    case AtomType::kInt16:
      return parse_integral_or_throw<std::int16_t>(t);
    case AtomType::kUInt16:
      return parse_integral_or_throw<std::uint16_t>(t);
    case AtomType::kInt32:
      return parse_integral_or_throw<std::int32_t>(t);
    case AtomType::kUInt32:
      return parse_integral_or_throw<std::uint32_t>(t);
    case AtomType::kInt64:
      return parse_integral_or_throw<std::int64_t>(t);
    case AtomType::kUInt64:
      return parse_integral_or_throw<std::uint64_t>(t);
    case AtomType::kFloat32: {
      auto v = parse_float(t);
      if (!v) throw DecodeError("bad float lexical form: '" + std::string(t) + "'");
      return *v;
    }
    case AtomType::kFloat64: {
      auto v = parse_double(t);
      if (!v) throw DecodeError("bad double lexical form: '" + std::string(t) + "'");
      return *v;
    }
    case AtomType::kBool:
      if (t == "true" || t == "1") return true;
      if (t == "false" || t == "0") return false;
      throw DecodeError("bad boolean lexical form: '" + std::string(t) + "'");
  }
  throw Error("unknown atom type");
}

namespace {

/// strtod/strtoll need a NUL-terminated buffer; lexical forms are short.
template <typename Convert>
auto era_convert(std::string_view text, Convert convert) {
  char buf[64];
  const std::string_view t = trim_xml_ws(text);
  if (t.empty() || t.size() >= sizeof(buf)) {
    throw DecodeError("bad numeric lexical form: '" + std::string(text) +
                      "'");
  }
  std::memcpy(buf, t.data(), t.size());
  buf[t.size()] = '\0';
  char* end = nullptr;
  errno = 0;
  const auto v = convert(buf, &end);
  if (errno == ERANGE || end != buf + t.size()) {
    throw DecodeError("bad numeric lexical form: '" + std::string(text) +
                      "'");
  }
  return v;
}

}  // namespace

ScalarValue parse_scalar_era(AtomType type, std::string_view text) {
  switch (type) {
    case AtomType::kFloat64:
      return era_convert(
          text, [](const char* s, char** e) { return std::strtod(s, e); });
    case AtomType::kFloat32:
      return era_convert(
          text, [](const char* s, char** e) { return std::strtof(s, e); });
    case AtomType::kInt8:
    case AtomType::kInt16:
    case AtomType::kInt32:
    case AtomType::kInt64: {
      const long long v = era_convert(text, [](const char* s, char** e) {
        return std::strtoll(s, e, 10);
      });
      // Reuse parse_scalar's width checks on the canonical form.
      return parse_scalar(type, format_int64(v));
    }
    case AtomType::kUInt8:
    case AtomType::kUInt16:
    case AtomType::kUInt32:
    case AtomType::kUInt64: {
      // strtoull silently wraps negative input; reject it up front.
      if (trim_xml_ws(text).starts_with('-')) {
        throw DecodeError("bad unsigned lexical form: '" + std::string(text) +
                          "'");
      }
      const unsigned long long v =
          era_convert(text, [](const char* s, char** e) {
            return std::strtoull(s, e, 10);
          });
      return parse_scalar(type, format_uint64(v));
    }
    case AtomType::kString:
    case AtomType::kBool:
      return parse_scalar(type, text);
  }
  throw Error("unknown atom type");
}

}  // namespace bxsoap::xdm
