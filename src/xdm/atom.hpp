// Typed atomic values — the piece XDM adds over the XML Infoset and the key
// to the paper's performance result: a LeafElement<double> keeps its value
// as a machine double, so the BXSA encoder never touches ASCII.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <variant>

#include "common/error.hpp"

namespace bxsoap::xdm {

/// Wire/type codes for atomic values. The numeric values are stable: BXSA
/// writes them as the one-byte "value type code" in element and attribute
/// frames.
enum class AtomType : std::uint8_t {
  kString = 0,
  kInt8 = 1,
  kUInt8 = 2,
  kInt16 = 3,
  kUInt16 = 4,
  kInt32 = 5,
  kUInt32 = 6,
  kInt64 = 7,
  kUInt64 = 8,
  kFloat32 = 9,
  kFloat64 = 10,
  kBool = 11,
};

/// Size in bytes of one value of the given type on the wire; 0 for kString
/// (variable length).
std::size_t atom_wire_size(AtomType t);

/// Lexical metadata for a type: its XML Schema name ("xsd:int", ...) used as
/// xsi:type when transcoding to textual XML.
std::string_view atom_xsd_name(AtomType t);

/// Reverse lookup from an XML Schema local name ("int", "double", ...).
std::optional<AtomType> atom_from_xsd_local(std::string_view local);

/// Human-readable name for diagnostics ("int32", "float64", ...).
std::string_view atom_debug_name(AtomType t);

/// Maps C++ primitive types to their AtomType code at compile time, and is
/// the concept gate for LeafElement<T> / ArrayElement<T>.
template <typename T>
struct AtomTraits;

#define BXSOAP_ATOM_TRAITS(cpp, code)                    \
  template <>                                            \
  struct AtomTraits<cpp> {                               \
    static constexpr AtomType kType = AtomType::code;    \
    using value_type = cpp;                              \
  }

BXSOAP_ATOM_TRAITS(std::int8_t, kInt8);
BXSOAP_ATOM_TRAITS(std::uint8_t, kUInt8);
BXSOAP_ATOM_TRAITS(std::int16_t, kInt16);
BXSOAP_ATOM_TRAITS(std::uint16_t, kUInt16);
BXSOAP_ATOM_TRAITS(std::int32_t, kInt32);
BXSOAP_ATOM_TRAITS(std::uint32_t, kUInt32);
BXSOAP_ATOM_TRAITS(std::int64_t, kInt64);
BXSOAP_ATOM_TRAITS(std::uint64_t, kUInt64);
BXSOAP_ATOM_TRAITS(float, kFloat32);
BXSOAP_ATOM_TRAITS(double, kFloat64);
BXSOAP_ATOM_TRAITS(bool, kBool);

#undef BXSOAP_ATOM_TRAITS

template <>
struct AtomTraits<std::string> {
  static constexpr AtomType kType = AtomType::kString;
  using value_type = std::string;
};

template <typename T>
concept Atomic = requires { AtomTraits<T>::kType; };

/// Numeric atom types only — the ones ArrayElement may hold as a packed
/// array. Strings are not fixed-width; bool is excluded because
/// std::vector<bool> has no contiguous byte representation (use uint8
/// arrays for flags).
template <typename T>
concept PackedAtomic = Atomic<T> && !std::is_same_v<T, std::string> &&
                       !std::is_same_v<T, bool>;

/// A type-erased atomic value. Holds the value natively; conversion to/from
/// text happens only at the textual-XML boundary.
using ScalarValue =
    std::variant<std::string, std::int8_t, std::uint8_t, std::int16_t,
                 std::uint16_t, std::int32_t, std::uint32_t, std::int64_t,
                 std::uint64_t, float, double, bool>;

AtomType scalar_type(const ScalarValue& v);

/// Format a scalar as XML Schema canonical-ish text (numbers via to_chars,
/// bool as "true"/"false", strings verbatim).
void append_scalar_text(std::string& out, const ScalarValue& v);
std::string scalar_text(const ScalarValue& v);

/// Parse text into a scalar of the requested type; throws DecodeError if the
/// text is not a valid lexical form for the type.
ScalarValue parse_scalar(AtomType type, std::string_view text);

/// 2005-era variant: strtod/strtoll instead of from_chars. Same values,
/// era-faithful CPU cost (see xml::RetypeOptions::era_number_parsing).
ScalarValue parse_scalar_era(AtomType type, std::string_view text);

template <Atomic T>
const T& scalar_get(const ScalarValue& v) {
  const T* p = std::get_if<T>(&v);
  if (p == nullptr) {
    throw Error("scalar holds a different type than requested");
  }
  return *p;
}

}  // namespace bxsoap::xdm
