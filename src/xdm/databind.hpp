// Compile-time XML databinding — the "XML databinding" box in the paper's
// Figure 3, in the same generic-programming style as the engine: describe a
// C++ struct's fields once with member pointers, get bXDM marshalling both
// ways. Because the mapping targets the DATA MODEL, the same binding works
// over textual XML and BXSA unchanged.
//
//   struct Observation {
//     std::int32_t station;
//     double temp;
//     std::vector<double> samples;
//   };
//
//   inline const auto kObservationBinding =
//       databind::record<Observation>("urn:wx", "observation", "wx")
//           .attribute("station", &Observation::station)
//           .field("temp", &Observation::temp)
//           .array("samples", &Observation::samples);
//
//   auto element = kObservationBinding.to_element(obs);
//   Observation back = kObservationBinding.from_element(*element);
//
// Scalars become LeafElement<T>, vectors of packed atomics become
// ArrayElement<T>, attribute() fields become typed attributes. Nested
// records compose with nested().
#pragma once

#include <tuple>

#include "xdm/access.hpp"
#include "xdm/node.hpp"

namespace bxsoap::xdm::databind {

namespace detail {

template <typename T, Atomic M>
struct LeafField {
  const char* name;
  M T::* ptr;

  void write(const T& value, Element& out, const QName& ns_template) const {
    QName q(ns_template.namespace_uri, name, ns_template.prefix);
    out.add_child(make_leaf<M>(std::move(q), value.*ptr));
  }
  void read(T& value, const Element& in) const {
    auto v = leaf_value<M>(in, name);
    if (!v) {
      throw DecodeError(std::string("databind: missing leaf <") + name +
                        ">");
    }
    value.*ptr = std::move(*v);
  }
};

template <typename T, PackedAtomic M>
struct ArrayField {
  const char* name;
  std::vector<M> T::* ptr;

  void write(const T& value, Element& out, const QName& ns_template) const {
    QName q(ns_template.namespace_uri, name, ns_template.prefix);
    out.add_child(make_array<M>(std::move(q), value.*ptr));
  }
  void read(T& value, const Element& in) const {
    auto v = array_values<M>(in, name);
    if (!v) {
      throw DecodeError(std::string("databind: missing array <") + name +
                        ">");
    }
    value.*ptr = std::move(*v);
  }
};

template <typename T, Atomic M>
struct AttributeField {
  const char* name;
  M T::* ptr;

  void write(const T& value, Element& out, const QName&) const {
    out.add_attribute(QName(name), value.*ptr);
  }
  void read(T& value, const Element& in) const {
    auto v = attr_value<M>(in, name);
    if (!v) {
      throw DecodeError(std::string("databind: missing attribute @") + name);
    }
    value.*ptr = std::move(*v);
  }
};

template <typename T, typename M, typename Binding>
struct NestedField {
  const char* name;
  M T::* ptr;
  Binding binding;

  void write(const T& value, Element& out, const QName&) const {
    out.add_child(binding.to_element(value.*ptr));
  }
  void read(T& value, const Element& in) const {
    const ElementBase* child = in.find_child(name);
    if (child == nullptr) {
      throw DecodeError(std::string("databind: missing record <") + name +
                        ">");
    }
    value.*ptr = binding.from_element(*child);
  }
};

}  // namespace detail

/// An immutable description of how T maps to an element; each modifier
/// returns an extended copy (the builder is usable at namespace scope).
template <typename T, typename... Fields>
class Record {
 public:
  Record(QName name, std::tuple<Fields...> fields)
      : name_(std::move(name)), fields_(std::move(fields)) {}

  /// <name>value</name> child holding one typed leaf.
  template <Atomic M>
  auto field(const char* name, M T::* ptr) const {
    return append(detail::LeafField<T, M>{name, ptr});
  }

  /// Packed array child.
  template <PackedAtomic M>
  auto array(const char* name, std::vector<M> T::* ptr) const {
    return append(detail::ArrayField<T, M>{name, ptr});
  }

  /// Typed attribute on the record element itself.
  template <Atomic M>
  auto attribute(const char* name, M T::* ptr) const {
    return append(detail::AttributeField<T, M>{name, ptr});
  }

  /// Nested record child marshalled through another binding. The child
  /// binding's element name is used for lookup, so `name` must match it.
  template <typename M, typename Binding>
  auto nested(const char* name, M T::* ptr, Binding binding) const {
    return append(
        detail::NestedField<T, M, Binding>{name, ptr, std::move(binding)});
  }

  std::unique_ptr<Element> to_element(const T& value) const {
    auto out = make_element(name_);
    if (!name_.namespace_uri.empty()) {
      out->declare_namespace(name_.prefix, name_.namespace_uri);
    }
    std::apply(
        [&](const auto&... fs) { (fs.write(value, *out, name_), ...); },
        fields_);
    return out;
  }

  T from_element(const ElementBase& element) const {
    if (element.kind() != NodeKind::kElement) {
      throw DecodeError("databind: record element must be a component "
                        "element");
    }
    if (element.name().local != name_.local ||
        element.name().namespace_uri != name_.namespace_uri) {
      throw DecodeError("databind: expected <" + name_.local + ">, got <" +
                        element.name().local + ">");
    }
    T value{};
    const auto& el = static_cast<const Element&>(element);
    std::apply([&](const auto&... fs) { (fs.read(value, el), ...); },
               fields_);
    return value;
  }

  const QName& element_name() const noexcept { return name_; }

 private:
  template <typename F>
  auto append(F f) const {
    return Record<T, Fields..., F>(
        name_, std::tuple_cat(fields_, std::tuple<F>(std::move(f))));
  }

  QName name_;
  std::tuple<Fields...> fields_;
};

/// Start a binding description for T.
template <typename T>
Record<T> record(std::string namespace_uri, std::string local,
                 std::string prefix = {}) {
  return Record<T>(
      QName(std::move(namespace_uri), std::move(local), std::move(prefix)),
      {});
}

}  // namespace bxsoap::xdm::databind
