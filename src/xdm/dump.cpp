#include "xdm/dump.hpp"

namespace bxsoap::xdm {

namespace {

void dump_attrs(const ElementBase& e, std::string& out) {
  for (const auto& a : e.attributes()) {
    out += " @" + a.name.lexical() + "=" + a.text();
  }
}

void dump_node(const Node& n, int depth, std::string& out) {
  out.append(static_cast<std::size_t>(depth) * 2, ' ');
  switch (n.kind()) {
    case NodeKind::kDocument: {
      out += "document\n";
      for (const auto& c : static_cast<const Document&>(n).children()) {
        dump_node(*c, depth + 1, out);
      }
      break;
    }
    case NodeKind::kElement: {
      const auto& e = static_cast<const Element&>(n);
      out += "element " + e.name().lexical();
      dump_attrs(e, out);
      out += "\n";
      for (const auto& c : e.children()) dump_node(*c, depth + 1, out);
      break;
    }
    case NodeKind::kLeafElement: {
      const auto& e = static_cast<const LeafElementBase&>(n);
      out += "leaf(" + std::string(atom_debug_name(e.atom_type())) + ") " +
             e.name().lexical();
      dump_attrs(e, out);
      out += " = ";
      e.append_text(out);
      out += "\n";
      break;
    }
    case NodeKind::kArrayElement: {
      const auto& e = static_cast<const ArrayElementBase&>(n);
      out += "array(" + std::string(atom_debug_name(e.atom_type())) + ")[" +
             std::to_string(e.count()) + "] " + e.name().lexical();
      dump_attrs(e, out);
      out += "\n";
      break;
    }
    case NodeKind::kText:
      out += "text \"" + static_cast<const TextNode&>(n).text() + "\"\n";
      break;
    case NodeKind::kPI: {
      const auto& pi = static_cast<const PINode&>(n);
      out += "pi " + pi.target() + " \"" + pi.data() + "\"\n";
      break;
    }
    case NodeKind::kComment:
      out += "comment \"" + static_cast<const CommentNode&>(n).text() + "\"\n";
      break;
  }
}

}  // namespace

std::string dump(const Node& n) {
  std::string out;
  dump_node(n, 0, out);
  return out;
}

}  // namespace bxsoap::xdm
