// Human-readable tree dump for diagnostics and test failure messages.
#pragma once

#include <string>

#include "xdm/node.hpp"

namespace bxsoap::xdm {

/// Multi-line indented rendering of the tree, e.g.
///   element ns:data
///     leaf(float64) temperature = 287.5
///     array(int32)[1000] index
std::string dump(const Node& n);

}  // namespace bxsoap::xdm
