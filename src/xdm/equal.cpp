#include "xdm/equal.hpp"

#include <sstream>

namespace bxsoap::xdm {

namespace {

struct Differ {
  const EqualOptions& opt;
  std::string diff;  // empty = equal so far

  bool fail(const std::string& where, const std::string& why) {
    if (diff.empty()) diff = where + ": " + why;
    return false;
  }

  static bool scalar_equal(const ScalarValue& a, const ScalarValue& b) {
    // Variant equality: same alternative and equal value. NaN != NaN is
    // intentional — transcodability of NaN payloads is tested bitwise at
    // the codec layer, not here.
    return a == b;
  }

  bool qname_equal(const std::string& where, const QName& a, const QName& b) {
    if (a.namespace_uri != b.namespace_uri) {
      return fail(where, "namespace '" + a.namespace_uri + "' vs '" +
                             b.namespace_uri + "'");
    }
    if (a.local != b.local) {
      return fail(where, "local name '" + a.local + "' vs '" + b.local + "'");
    }
    if (opt.compare_prefixes && a.prefix != b.prefix) {
      return fail(where, "prefix '" + a.prefix + "' vs '" + b.prefix + "'");
    }
    return true;
  }

  bool element_base_equal(const std::string& where, const ElementBase& a,
                          const ElementBase& b) {
    if (!qname_equal(where + "/@name", a.name(), b.name())) return false;
    if (opt.compare_prefixes && a.namespaces() != b.namespaces()) {
      return fail(where, "namespace declarations differ");
    }
    if (a.attributes().size() != b.attributes().size()) {
      return fail(where, "attribute count " +
                             std::to_string(a.attributes().size()) + " vs " +
                             std::to_string(b.attributes().size()));
    }
    for (std::size_t i = 0; i < a.attributes().size(); ++i) {
      const Attribute& x = a.attributes()[i];
      const Attribute& y = b.attributes()[i];
      const std::string aw = where + "/@" + x.name.local;
      if (!qname_equal(aw, x.name, y.name)) return false;
      if (!scalar_equal(x.value, y.value)) {
        return fail(aw, "value '" + x.text() + "' vs '" + y.text() + "'");
      }
    }
    return true;
  }

  bool node_equal(const std::string& where, const Node& a, const Node& b) {
    if (a.kind() != b.kind()) {
      return fail(where, "node kind " +
                             std::to_string(static_cast<int>(a.kind())) +
                             " vs " +
                             std::to_string(static_cast<int>(b.kind())));
    }
    switch (a.kind()) {
      case NodeKind::kDocument: {
        const auto& x = static_cast<const Document&>(a);
        const auto& y = static_cast<const Document&>(b);
        return children_equal(where, x.children(), y.children());
      }
      case NodeKind::kElement: {
        const auto& x = static_cast<const Element&>(a);
        const auto& y = static_cast<const Element&>(b);
        const std::string w = where + "/" + x.name().local;
        if (!element_base_equal(w, x, y)) return false;
        return children_equal(w, x.children(), y.children());
      }
      case NodeKind::kLeafElement: {
        const auto& x = static_cast<const LeafElementBase&>(a);
        const auto& y = static_cast<const LeafElementBase&>(b);
        const std::string w = where + "/" + x.name().local;
        if (!element_base_equal(w, x, y)) return false;
        if (x.atom_type() != y.atom_type()) {
          return fail(w, std::string("atom type ") +
                             std::string(atom_debug_name(x.atom_type())) +
                             " vs " +
                             std::string(atom_debug_name(y.atom_type())));
        }
        if (!scalar_equal(x.scalar(), y.scalar())) {
          return fail(w, "leaf value '" + x.text() + "' vs '" + y.text() + "'");
        }
        return true;
      }
      case NodeKind::kArrayElement: {
        const auto& x = static_cast<const ArrayElementBase&>(a);
        const auto& y = static_cast<const ArrayElementBase&>(b);
        const std::string w = where + "/" + x.name().local;
        if (!element_base_equal(w, x, y)) return false;
        if (x.atom_type() != y.atom_type()) {
          return fail(w, "array atom type differs");
        }
        if (x.count() != y.count()) {
          return fail(w, "array count " + std::to_string(x.count()) + " vs " +
                             std::to_string(y.count()));
        }
        const auto xb = x.packed_bytes();
        const auto yb = y.packed_bytes();
        if (xb.size() != yb.size() ||
            (!xb.empty() &&
             std::memcmp(xb.data(), yb.data(), xb.size()) != 0)) {
          return fail(w, "array payload bytes differ");
        }
        return true;
      }
      case NodeKind::kText: {
        const auto& x = static_cast<const TextNode&>(a);
        const auto& y = static_cast<const TextNode&>(b);
        if (x.text() != y.text()) {
          return fail(where, "text '" + x.text() + "' vs '" + y.text() + "'");
        }
        return true;
      }
      case NodeKind::kPI: {
        const auto& x = static_cast<const PINode&>(a);
        const auto& y = static_cast<const PINode&>(b);
        if (x.target() != y.target() || x.data() != y.data()) {
          return fail(where, "PI differs");
        }
        return true;
      }
      case NodeKind::kComment: {
        const auto& x = static_cast<const CommentNode&>(a);
        const auto& y = static_cast<const CommentNode&>(b);
        if (x.text() != y.text()) {
          return fail(where, "comment differs");
        }
        return true;
      }
    }
    return fail(where, "unknown node kind");
  }

  bool children_equal(const std::string& where,
                      const std::vector<NodePtr>& a,
                      const std::vector<NodePtr>& b) {
    if (a.size() != b.size()) {
      return fail(where, "child count " + std::to_string(a.size()) + " vs " +
                             std::to_string(b.size()));
    }
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (!node_equal(where + "[" + std::to_string(i) + "]", *a[i], *b[i])) {
        return false;
      }
    }
    return true;
  }
};

}  // namespace

bool deep_equal(const Node& a, const Node& b, const EqualOptions& opt) {
  Differ d{opt, {}};
  return d.node_equal("", a, b);
}

std::string first_difference(const Node& a, const Node& b,
                             const EqualOptions& opt) {
  Differ d{opt, {}};
  d.node_equal("", a, b);
  return d.diff;
}

}  // namespace bxsoap::xdm
