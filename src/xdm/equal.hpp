// Deep structural equality over bXDM trees (round-trip test oracle).
#pragma once

#include "xdm/node.hpp"

namespace bxsoap::xdm {

/// Options controlling what counts as "equal".
struct EqualOptions {
  /// Compare prefixes and namespace declarations, not just expanded names.
  /// Off by default: transcoding may rewrite prefixes without changing
  /// meaning.
  bool compare_prefixes = false;
};

bool deep_equal(const Node& a, const Node& b, const EqualOptions& opt = {});

/// Like deep_equal but returns a human-readable description of the first
/// difference (empty string when equal). Used in test failure messages.
std::string first_difference(const Node& a, const Node& b,
                             const EqualOptions& opt = {});

}  // namespace bxsoap::xdm
