#include "xdm/node.hpp"

namespace bxsoap::xdm {

void TextNode::accept(NodeVisitor& v) const { v.visit(*this); }
void PINode::accept(NodeVisitor& v) const { v.visit(*this); }
void CommentNode::accept(NodeVisitor& v) const { v.visit(*this); }
void Element::accept(NodeVisitor& v) const { v.visit(*this); }
void Document::accept(NodeVisitor& v) const { v.visit(*this); }

NodePtr Element::clone() const {
  auto p = std::make_unique<Element>(name());
  p->copy_element_base(*this);
  for (const auto& c : children_) {
    p->add_child(c->clone());
  }
  return p;
}

const ElementBase* Element::find_child(const QName& name) const noexcept {
  for (const auto& c : children_) {
    if (const ElementBase* e = as_element(*c); e && e->name() == name) {
      return e;
    }
  }
  return nullptr;
}

const ElementBase* Element::find_child(std::string_view local) const noexcept {
  for (const auto& c : children_) {
    if (const ElementBase* e = as_element(*c); e && e->name().local == local) {
      return e;
    }
  }
  return nullptr;
}

std::vector<const ElementBase*> Element::child_elements() const {
  std::vector<const ElementBase*> out;
  for (const auto& c : children_) {
    if (const ElementBase* e = as_element(*c)) out.push_back(e);
  }
  return out;
}

namespace {

void append_string_value(const Node& n, std::string& out) {
  switch (n.kind()) {
    case NodeKind::kText:
      out += static_cast<const TextNode&>(n).text();
      break;
    case NodeKind::kElement:
      for (const auto& c : static_cast<const Element&>(n).children()) {
        append_string_value(*c, out);
      }
      break;
    case NodeKind::kLeafElement:
      static_cast<const LeafElementBase&>(n).append_text(out);
      break;
    case NodeKind::kArrayElement: {
      const auto& a = static_cast<const ArrayElementBase&>(n);
      for (std::size_t i = 0; i < a.count(); ++i) {
        if (i > 0) out += ' ';
        a.append_item_text(i, out);
      }
      break;
    }
    default:
      break;  // PIs and comments contribute nothing to the string value
  }
}

}  // namespace

std::string Element::string_value() const {
  std::string out;
  append_string_value(*this, out);
  return out;
}

NodePtr Document::clone() const {
  auto p = std::make_unique<Document>();
  for (const auto& c : children_) {
    p->add_child(c->clone());
  }
  return p;
}

bool Document::has_root() const noexcept {
  for (const auto& c : children_) {
    if (is_element(*c)) return true;
  }
  return false;
}

const ElementBase& Document::root() const {
  for (const auto& c : children_) {
    if (const ElementBase* e = as_element(*c)) return *e;
  }
  throw Error("document has no root element");
}

ElementBase& Document::root() {
  for (const auto& c : children_) {
    if (ElementBase* e = as_element(*c)) return *e;
  }
  throw Error("document has no root element");
}

}  // namespace bxsoap::xdm
