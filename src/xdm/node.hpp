// bXDM — the paper's extension of the XQuery/XPath Data Model (XDM).
//
// bXDM keeps XDM's seven node kinds (Document, Element, Attribute,
// Namespace, PI, Text, Comment) and refines Element into three concrete
// shapes:
//
//   * Element          — "component element": ordered children (elements,
//                        text, PIs, comments); mixed content allowed.
//   * LeafElement<T>   — an element whose content is ONE typed atomic value
//                        held in native machine form (no text conversion).
//   * ArrayElement<T>  — an element whose content is a packed 1-D array of a
//                        primitive type; compatible with C/Fortran layouts.
//
// Attributes and namespace declarations are value types owned by their
// element rather than free-standing nodes; this mirrors BXSA's decision to
// inline them into element frames ("enlarge the granularity of the frame")
// and avoids per-attribute allocations. Path queries can still address them.
//
// Ownership: the tree owns its children via std::unique_ptr; nodes are
// movable via pointer, deep-copyable via clone().
#pragma once

#include <cstring>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "xdm/atom.hpp"
#include "xdm/qname.hpp"

namespace bxsoap::xdm {

enum class NodeKind : std::uint8_t {
  kDocument,
  kElement,       // component element
  kLeafElement,   // Element refinement with one typed atomic value
  kArrayElement,  // Element refinement with a packed array value
  kText,
  kPI,
  kComment,
};

class NodeVisitor;

/// Base of every tree node.
class Node {
 public:
  virtual ~Node() = default;

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  virtual NodeKind kind() const noexcept = 0;
  virtual void accept(NodeVisitor& v) const = 0;
  virtual std::unique_ptr<Node> clone() const = 0;

 protected:
  Node() = default;
};

using NodePtr = std::unique_ptr<Node>;

/// A typed attribute. BXSA stores attribute values with a type code, so
/// attributes carry a ScalarValue, not raw text.
struct Attribute {
  QName name;
  ScalarValue value;

  Attribute() = default;
  Attribute(QName n, ScalarValue v)
      : name(std::move(n)), value(std::move(v)) {}

  AtomType type() const { return scalar_type(value); }
  std::string text() const { return scalar_text(value); }
};

/// Text node (character data in mixed content).
class TextNode final : public Node {
 public:
  explicit TextNode(std::string text) : text_(std::move(text)) {}

  NodeKind kind() const noexcept override { return NodeKind::kText; }
  void accept(NodeVisitor& v) const override;
  NodePtr clone() const override {
    return std::make_unique<TextNode>(text_);
  }

  const std::string& text() const noexcept { return text_; }
  void set_text(std::string t) { text_ = std::move(t); }

 private:
  std::string text_;
};

/// Processing instruction.
class PINode final : public Node {
 public:
  PINode(std::string target, std::string data)
      : target_(std::move(target)), data_(std::move(data)) {}

  NodeKind kind() const noexcept override { return NodeKind::kPI; }
  void accept(NodeVisitor& v) const override;
  NodePtr clone() const override {
    return std::make_unique<PINode>(target_, data_);
  }

  const std::string& target() const noexcept { return target_; }
  const std::string& data() const noexcept { return data_; }

 private:
  std::string target_;
  std::string data_;
};

/// Comment.
class CommentNode final : public Node {
 public:
  explicit CommentNode(std::string text) : text_(std::move(text)) {}

  NodeKind kind() const noexcept override { return NodeKind::kComment; }
  void accept(NodeVisitor& v) const override;
  NodePtr clone() const override {
    return std::make_unique<CommentNode>(text_);
  }

  const std::string& text() const noexcept { return text_; }

 private:
  std::string text_;
};

/// Common state of the three element shapes: name, namespace declarations
/// and attributes (inlined per the BXSA frame layout).
class ElementBase : public Node {
 public:
  const QName& name() const noexcept { return name_; }
  void set_name(QName n) { name_ = std::move(n); }

  const std::vector<NamespaceDecl>& namespaces() const noexcept {
    return namespaces_;
  }
  void declare_namespace(std::string prefix, std::string uri) {
    namespaces_.push_back({std::move(prefix), std::move(uri)});
  }

  const std::vector<Attribute>& attributes() const noexcept { return attrs_; }
  std::vector<Attribute>& attributes() noexcept { return attrs_; }

  void add_attribute(QName name, ScalarValue value) {
    attrs_.emplace_back(std::move(name), std::move(value));
  }

  /// First attribute with the given expanded name, or nullptr.
  const Attribute* find_attribute(const QName& name) const noexcept {
    for (const auto& a : attrs_) {
      if (a.name == name) return &a;
    }
    return nullptr;
  }
  /// Convenience lookup by local name only (no-namespace attributes).
  const Attribute* find_attribute(std::string_view local) const noexcept {
    for (const auto& a : attrs_) {
      if (a.name.namespace_uri.empty() && a.name.local == local) return &a;
    }
    return nullptr;
  }

 protected:
  explicit ElementBase(QName name) : name_(std::move(name)) {}

  void copy_element_base(const ElementBase& from) {
    name_ = from.name_;
    namespaces_ = from.namespaces_;
    attrs_ = from.attrs_;
  }

 private:
  QName name_;
  std::vector<NamespaceDecl> namespaces_;
  std::vector<Attribute> attrs_;
};

/// Component element: general content model.
class Element final : public ElementBase {
 public:
  explicit Element(QName name) : ElementBase(std::move(name)) {}

  NodeKind kind() const noexcept override { return NodeKind::kElement; }
  void accept(NodeVisitor& v) const override;
  NodePtr clone() const override;

  const std::vector<NodePtr>& children() const noexcept { return children_; }
  std::size_t child_count() const noexcept { return children_.size(); }

  Node& add_child(NodePtr child) {
    children_.push_back(std::move(child));
    return *children_.back();
  }
  /// Insert before position `index` (clamped to the end).
  Node& insert_child(std::size_t index, NodePtr child) {
    if (index > children_.size()) index = children_.size();
    auto it = children_.insert(
        children_.begin() + static_cast<std::ptrdiff_t>(index),
        std::move(child));
    return **it;
  }
  /// Remove and return the child at `index`; throws on out-of-range.
  NodePtr remove_child(std::size_t index) {
    if (index >= children_.size()) {
      throw Error("remove_child index out of range");
    }
    NodePtr out = std::move(children_[index]);
    children_.erase(children_.begin() + static_cast<std::ptrdiff_t>(index));
    return out;
  }
  Element& add_element(QName name) {
    return static_cast<Element&>(
        add_child(std::make_unique<Element>(std::move(name))));
  }
  void add_text(std::string text) {
    add_child(std::make_unique<TextNode>(std::move(text)));
  }

  /// First child element (any shape) with the given expanded name.
  const ElementBase* find_child(const QName& name) const noexcept;
  /// First child element with the given local name, any namespace.
  const ElementBase* find_child(std::string_view local) const noexcept;

  /// All child elements (any shape), in document order.
  std::vector<const ElementBase*> child_elements() const;

  /// Concatenation of all descendant text (the XPath string value).
  std::string string_value() const;

 private:
  std::vector<NodePtr> children_;
};

/// Type-erased view of a LeafElement<T>; encoders consume this so they need
/// no per-instantiation virtuals.
class LeafElementBase : public ElementBase {
 public:
  NodeKind kind() const noexcept override { return NodeKind::kLeafElement; }

  virtual AtomType atom_type() const noexcept = 0;
  /// The value as a type-erased scalar (copies; use typed get() on the
  /// concrete class for the zero-copy path).
  virtual ScalarValue scalar() const = 0;
  /// Append the value's XML text form to `out`.
  virtual void append_text(std::string& out) const = 0;
  /// Native bytes of the value in host byte order (empty for strings).
  virtual std::span<const std::uint8_t> native_bytes() const noexcept = 0;

  std::string text() const {
    std::string s;
    append_text(s);
    return s;
  }

 protected:
  using ElementBase::ElementBase;
};

template <Atomic T>
class LeafElement final : public LeafElementBase {
 public:
  LeafElement(QName name, T value)
      : LeafElementBase(std::move(name)), value_(std::move(value)) {}

  void accept(NodeVisitor& v) const override;
  NodePtr clone() const override {
    auto p = std::make_unique<LeafElement<T>>(name(), value_);
    p->copy_element_base(*this);
    return p;
  }

  AtomType atom_type() const noexcept override { return AtomTraits<T>::kType; }
  ScalarValue scalar() const override { return ScalarValue(value_); }
  void append_text(std::string& out) const override {
    append_scalar_text(out, ScalarValue(value_));
  }
  std::span<const std::uint8_t> native_bytes() const noexcept override {
    if constexpr (std::is_same_v<T, std::string>) {
      return {reinterpret_cast<const std::uint8_t*>(value_.data()),
              value_.size()};
    } else {
      return {reinterpret_cast<const std::uint8_t*>(&value_), sizeof(T)};
    }
  }

  const T& get() const noexcept { return value_; }
  void set(T v) { value_ = std::move(v); }

 private:
  T value_;
};

/// Type-erased view of an ArrayElement<T>.
class ArrayElementBase : public ElementBase {
 public:
  NodeKind kind() const noexcept override { return NodeKind::kArrayElement; }

  virtual AtomType atom_type() const noexcept = 0;
  virtual std::size_t count() const noexcept = 0;
  /// Packed payload in host byte order; count()*atom_wire_size() bytes.
  virtual std::span<const std::uint8_t> packed_bytes() const noexcept = 0;
  /// Append item i's XML text form (used when transcoding to textual XML,
  /// where each item becomes one child element).
  virtual void append_item_text(std::size_t i, std::string& out) const = 0;
  virtual ScalarValue item_scalar(std::size_t i) const = 0;

  /// Element name used for the per-item wrapper when serialized as textual
  /// XML. The paper's Table 1 uses the shortest possible tag; we default to
  /// "d" and preserve whatever name a parsed document used.
  const std::string& item_name() const noexcept { return item_name_; }
  void set_item_name(std::string n) { item_name_ = std::move(n); }

 protected:
  explicit ArrayElementBase(QName name)
      : ElementBase(std::move(name)), item_name_("d") {}

  std::string item_name_;
};

template <PackedAtomic T>
class ArrayElement final : public ArrayElementBase {
 public:
  explicit ArrayElement(QName name) : ArrayElementBase(std::move(name)) {}
  ArrayElement(QName name, std::vector<T> values)
      : ArrayElementBase(std::move(name)), values_(std::move(values)) {}

  void accept(NodeVisitor& v) const override;
  NodePtr clone() const override {
    // Clones always own their items: a view's lifetime contract should not
    // silently propagate to copies.
    auto p = std::make_unique<ArrayElement<T>>(
        name(), std::vector<T>(view().begin(), view().end()));
    p->copy_element_base(*this);
    p->set_item_name(item_name());
    return p;
  }

  AtomType atom_type() const noexcept override { return AtomTraits<T>::kType; }
  std::size_t count() const noexcept override { return view().size(); }
  std::span<const std::uint8_t> packed_bytes() const noexcept override {
    const auto v = view();
    return {reinterpret_cast<const std::uint8_t*>(v.data()),
            v.size() * sizeof(T)};
  }
  void append_item_text(std::size_t i, std::string& out) const override {
    append_scalar_text(out, ScalarValue(item(i)));
  }
  ScalarValue item_scalar(std::size_t i) const override {
    return ScalarValue(item(i));
  }

  /// The items, whether owned or viewed — the accessor new code should use.
  std::span<const T> view() const noexcept {
    return backing_ != nullptr ? view_ : std::span<const T>(values_);
  }

  /// Point this element at a packed payload owned elsewhere; `keepalive`
  /// (typically SharedBuffer::handle()) pins that owner for this node's
  /// lifetime, so moving the node between documents stays safe.
  void set_view(std::span<const T> items,
                std::shared_ptr<const void> keepalive) {
    view_ = items;
    backing_ = std::move(keepalive);
    values_.clear();
  }

  /// True when the items live in a wire buffer rather than in this node.
  bool is_view() const noexcept { return backing_ != nullptr; }

  /// Copy viewed items into owned storage and drop the wire buffer pin.
  /// No-op for already-owned arrays.
  void materialize() {
    if (backing_ == nullptr) return;
    values_.assign(view_.begin(), view_.end());
    view_ = {};
    backing_.reset();
  }

  /// Owned-storage accessor; throws for view-backed arrays (call
  /// materialize() first, or use view()).
  const std::vector<T>& values() const {
    if (backing_ != nullptr) {
      throw Error("ArrayElement::values() on a zero-copy view; use view()");
    }
    return values_;
  }
  /// Mutable access materializes a view first: writers always own.
  std::vector<T>& values() {
    materialize();
    return values_;
  }

 private:
  const T& item(std::size_t i) const {
    const auto v = view();
    if (i >= v.size()) throw std::out_of_range("array item index out of range");
    return v[i];
  }

  std::vector<T> values_;
  std::span<const T> view_;
  std::shared_ptr<const void> backing_;
};

/// Document node: at most one root element plus top-level PIs/comments.
class Document final : public Node {
 public:
  Document() = default;

  NodeKind kind() const noexcept override { return NodeKind::kDocument; }
  void accept(NodeVisitor& v) const override;
  NodePtr clone() const override;

  const std::vector<NodePtr>& children() const noexcept { return children_; }

  Node& add_child(NodePtr child) {
    children_.push_back(std::move(child));
    return *children_.back();
  }

  /// The root element; throws if the document has none.
  const ElementBase& root() const;
  ElementBase& root();
  bool has_root() const noexcept;

 private:
  std::vector<NodePtr> children_;
};

using DocumentPtr = std::unique_ptr<Document>;

/// Visitor over concrete node shapes (the encoders' entry point — the paper
/// models every encoder as "a generic visitor of the bXDM data model").
class NodeVisitor {
 public:
  virtual ~NodeVisitor() = default;
  virtual void visit(const Document& n) = 0;
  virtual void visit(const Element& n) = 0;
  virtual void visit(const LeafElementBase& n) = 0;
  virtual void visit(const ArrayElementBase& n) = 0;
  virtual void visit(const TextNode& n) = 0;
  virtual void visit(const PINode& n) = 0;
  virtual void visit(const CommentNode& n) = 0;
};

template <Atomic T>
void LeafElement<T>::accept(NodeVisitor& v) const {
  v.visit(static_cast<const LeafElementBase&>(*this));
}

template <PackedAtomic T>
void ArrayElement<T>::accept(NodeVisitor& v) const {
  v.visit(static_cast<const ArrayElementBase&>(*this));
}

// ---- builder helpers -------------------------------------------------------

inline std::unique_ptr<Element> make_element(QName name) {
  return std::make_unique<Element>(std::move(name));
}

template <Atomic T>
std::unique_ptr<LeafElement<T>> make_leaf(QName name, T value) {
  return std::make_unique<LeafElement<T>>(std::move(name), std::move(value));
}

/// Deduce the leaf type from the value (make_leaf(q, 3.14) -> double).
inline std::unique_ptr<LeafElement<std::string>> make_leaf(QName name,
                                                           const char* value) {
  return make_leaf<std::string>(std::move(name), std::string(value));
}

template <PackedAtomic T>
std::unique_ptr<ArrayElement<T>> make_array(QName name,
                                            std::vector<T> values) {
  return std::make_unique<ArrayElement<T>>(std::move(name),
                                           std::move(values));
}

inline DocumentPtr make_document(NodePtr root) {
  auto doc = std::make_unique<Document>();
  doc->add_child(std::move(root));
  return doc;
}

/// Downcast helpers: return nullptr when the node is not that shape.
template <typename T>
const T* as(const Node& n) {
  return dynamic_cast<const T*>(&n);
}
template <typename T>
T* as(Node& n) {
  return dynamic_cast<T*>(&n);
}

/// True for any of the three element shapes.
inline bool is_element(const Node& n) {
  const NodeKind k = n.kind();
  return k == NodeKind::kElement || k == NodeKind::kLeafElement ||
         k == NodeKind::kArrayElement;
}

inline const ElementBase* as_element(const Node& n) {
  return is_element(n) ? static_cast<const ElementBase*>(&n) : nullptr;
}
inline ElementBase* as_element(Node& n) {
  return is_element(n) ? static_cast<ElementBase*>(&n) : nullptr;
}

}  // namespace bxsoap::xdm
