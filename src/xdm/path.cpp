#include "xdm/path.hpp"

#include <algorithm>

namespace bxsoap::xdm {

namespace {

struct Lexer {
  std::string_view s;
  std::size_t pos = 0;

  bool eof() const { return pos >= s.size(); }
  char peek() const { return s[pos]; }
  char take() { return s[pos++]; }

  bool consume(char c) {
    if (!eof() && peek() == c) {
      ++pos;
      return true;
    }
    return false;
  }

  static bool is_name_char(char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
           (c >= '0' && c <= '9') || c == '_' || c == '-' || c == '.';
  }

  std::string name() {
    const std::size_t start = pos;
    while (!eof() && is_name_char(peek())) ++pos;
    if (pos == start) {
      throw PathError("expected a name at position " + std::to_string(start));
    }
    return std::string(s.substr(start, pos - start));
  }
};

}  // namespace

Path Path::compile(std::string_view expr, const PrefixMap& prefixes) {
  Path p;
  Lexer lx{expr};
  if (lx.eof()) throw PathError("empty expression");

  bool next_descendant = false;
  if (lx.consume('/')) {
    next_descendant = lx.consume('/');
  }

  while (!lx.eof()) {
    Step step;
    step.descendant = next_descendant;

    if (lx.consume('*')) {
      step.any_name = true;
      step.any_namespace = true;
    } else {
      std::string first = lx.name();
      if (lx.consume(':')) {
        auto it = prefixes.find(first);
        if (it == prefixes.end()) {
          throw PathError("unmapped prefix '" + first + "'");
        }
        step.namespace_uri = it->second;
        if (lx.consume('*')) {
          step.any_name = true;
        } else {
          step.local = lx.name();
        }
      } else {
        step.local = std::move(first);
        step.any_namespace = true;  // unprefixed: match by local name
      }
    }

    while (lx.consume('[')) {
      Predicate pred;
      auto quoted_value = [&lx]() {
        if (!lx.consume('\'')) {
          throw PathError("expected quoted value in predicate");
        }
        std::string v;
        while (!lx.eof() && lx.peek() != '\'') v.push_back(lx.take());
        if (!lx.consume('\'')) throw PathError("unterminated quoted value");
        return v;
      };
      if (lx.consume('@')) {
        pred.attr_local = lx.name();
        if (lx.consume('=')) {
          pred.kind = Predicate::Kind::kAttrEquals;
          pred.attr_value = quoted_value();
        } else {
          pred.kind = Predicate::Kind::kAttrPresent;
        }
      } else if (lx.consume('.')) {
        if (!lx.consume('=')) throw PathError("expected '=' after '.'");
        pred.kind = Predicate::Kind::kSelfEquals;
        pred.attr_value = quoted_value();
      } else if (!lx.eof() && lx.peek() >= '0' && lx.peek() <= '9') {
        std::string digits;
        while (!lx.eof() && lx.peek() >= '0' && lx.peek() <= '9') {
          digits.push_back(lx.take());
        }
        pred.kind = Predicate::Kind::kPosition;
        pred.position = static_cast<std::size_t>(std::stoull(digits));
        if (pred.position == 0) throw PathError("positions are 1-based");
      } else {
        pred.attr_local = lx.name();  // child element local name
        if (!lx.consume('=')) {
          throw PathError("expected '=' after child name in predicate");
        }
        pred.kind = Predicate::Kind::kChildEquals;
        pred.attr_value = quoted_value();
      }
      if (!lx.consume(']')) throw PathError("expected ']'");
      step.predicates.push_back(std::move(pred));
    }

    p.steps_.push_back(std::move(step));

    if (lx.eof()) break;
    if (!lx.consume('/')) {
      throw PathError("unexpected character '" + std::string(1, lx.peek()) +
                      "' at position " + std::to_string(lx.pos));
    }
    next_descendant = lx.consume('/');
  }

  if (p.steps_.empty()) throw PathError("expression has no steps");
  return p;
}

namespace {

/// XPath string value of any element shape.
std::string element_string_value(const ElementBase& e) {
  switch (e.kind()) {
    case NodeKind::kElement:
      return static_cast<const Element&>(e).string_value();
    case NodeKind::kLeafElement:
      return static_cast<const LeafElementBase&>(e).text();
    case NodeKind::kArrayElement: {
      const auto& a = static_cast<const ArrayElementBase&>(e);
      std::string out;
      for (std::size_t i = 0; i < a.count(); ++i) {
        if (i > 0) out += ' ';
        a.append_item_text(i, out);
      }
      return out;
    }
    default:
      return {};
  }
}

/// First child element with the given local name, for any element shape.
const ElementBase* child_by_local(const ElementBase& e,
                                  std::string_view local) {
  if (e.kind() != NodeKind::kElement) return nullptr;
  return static_cast<const Element&>(e).find_child(local);
}

}  // namespace

bool Path::step_matches(const Step& s, const ElementBase& e) {
  if (!s.any_name && e.name().local != s.local) return false;
  if (!s.any_namespace && e.name().namespace_uri != s.namespace_uri) {
    return false;
  }
  return true;
}

void Path::collect(const Step& s, const Node& n, bool include_self,
                   std::vector<const ElementBase*>& out) {
  if (include_self) {
    if (const ElementBase* e = as_element(n); e && step_matches(s, *e)) {
      out.push_back(e);
    }
  }
  // Children of documents and component elements; leaf/array elements have
  // no element children.
  const std::vector<NodePtr>* children = nullptr;
  if (n.kind() == NodeKind::kDocument) {
    children = &static_cast<const Document&>(n).children();
  } else if (n.kind() == NodeKind::kElement) {
    children = &static_cast<const Element&>(n).children();
  }
  if (children == nullptr) return;
  for (const auto& c : *children) {
    if (s.descendant) {
      collect(s, *c, /*include_self=*/true, out);
    } else if (const ElementBase* e = as_element(*c);
               e && step_matches(s, *e)) {
      out.push_back(e);
    }
  }
}

std::vector<const ElementBase*> Path::select(const Node& from) const {
  std::vector<const Node*> frontier{&from};
  std::vector<const ElementBase*> matches;

  for (const Step& step : steps_) {
    matches.clear();
    for (const Node* n : frontier) {
      std::vector<const ElementBase*> found;
      collect(step, *n, /*include_self=*/false, found);
      // Apply predicates within this context node's match list.
      for (const Predicate& pred : step.predicates) {
        std::vector<const ElementBase*> kept;
        std::size_t position = 0;
        for (const ElementBase* e : found) {
          ++position;
          bool ok = false;
          switch (pred.kind) {
            case Predicate::Kind::kPosition:
              ok = (position == pred.position);
              break;
            case Predicate::Kind::kAttrPresent:
              ok = (e->find_attribute(pred.attr_local) != nullptr);
              break;
            case Predicate::Kind::kAttrEquals: {
              const Attribute* a = e->find_attribute(pred.attr_local);
              ok = (a != nullptr && a->text() == pred.attr_value);
              break;
            }
            case Predicate::Kind::kChildEquals: {
              const ElementBase* c = child_by_local(*e, pred.attr_local);
              ok = (c != nullptr &&
                    element_string_value(*c) == pred.attr_value);
              break;
            }
            case Predicate::Kind::kSelfEquals:
              ok = (element_string_value(*e) == pred.attr_value);
              break;
          }
          if (ok) kept.push_back(e);
        }
        found = std::move(kept);
      }
      matches.insert(matches.end(), found.begin(), found.end());
    }
    frontier.assign(matches.begin(), matches.end());
  }

  // Dedup while keeping document order of first occurrence ('//' from
  // multiple context nodes can visit an element twice).
  std::vector<const ElementBase*> unique;
  for (const ElementBase* e : matches) {
    if (std::find(unique.begin(), unique.end(), e) == unique.end()) {
      unique.push_back(e);
    }
  }
  return unique;
}

const ElementBase* Path::first(const Node& from) const {
  auto all = select(from);
  return all.empty() ? nullptr : all.front();
}

std::vector<const ElementBase*> select(const Node& from,
                                       std::string_view expr,
                                       const PrefixMap& prefixes) {
  return Path::compile(expr, prefixes).select(from);
}

const ElementBase* select_first(const Node& from, std::string_view expr,
                                const PrefixMap& prefixes) {
  return Path::compile(expr, prefixes).first(from);
}

}  // namespace bxsoap::xdm
