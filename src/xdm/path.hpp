// A small XPath-style query engine over bXDM.
//
// The paper argues that "any XDM-based XML processing (e.g. XPath or XSLT)
// should be able to run with binary XML with minor modification"; this
// module demonstrates that claim: the same query runs identically over a
// tree built in memory, parsed from textual XML, or decoded from BXSA.
//
// Supported grammar (a deliberate subset of XPath 1.0 abbreviated syntax):
//
//   path      := ('/' | '//')? step (('/' | '//') step)*
//   step      := nametest predicate*
//   nametest  := '*' | name | prefix ':' name | prefix ':' '*'
//   predicate := '[' integer ']'                 (1-based position)
//              | '[' '@' name '=' 'value' ']'    (attribute equality, text)
//              | '[' '@' name ']'                (attribute presence)
//              | '[' name '=' 'value' ']'        (child string value equals)
//              | '[' '.' '=' 'value' ']'         (own string value equals)
//
// Prefixes are resolved through a caller-supplied prefix->URI map; an
// unmapped prefix is an error. Matching is on expanded names.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "xdm/node.hpp"

namespace bxsoap::xdm {

class PathError : public Error {
 public:
  explicit PathError(const std::string& what) : Error("path: " + what) {}
};

using PrefixMap = std::map<std::string, std::string, std::less<>>;

/// A compiled path expression (parse once, run many times).
class Path {
 public:
  /// Compile `expr`; throws PathError on syntax errors or unmapped prefixes.
  static Path compile(std::string_view expr, const PrefixMap& prefixes = {});

  /// All elements selected by this path starting from `from` (a Document or
  /// any element), in document order.
  std::vector<const ElementBase*> select(const Node& from) const;

  /// First match or nullptr.
  const ElementBase* first(const Node& from) const;

 private:
  struct Predicate {
    enum class Kind {
      kPosition,
      kAttrEquals,
      kAttrPresent,
      kChildEquals,
      kSelfEquals,
    } kind;
    std::size_t position = 0;   // 1-based
    std::string attr_local;     // attribute/child local name
    std::string attr_value;
  };

  struct Step {
    bool descendant = false;  // reached via '//'
    bool any_name = false;    // '*'
    std::string namespace_uri;
    bool any_namespace = false;  // unprefixed nametest matches any namespace
    std::string local;
    std::vector<Predicate> predicates;
  };

  std::vector<Step> steps_;

  static bool step_matches(const Step& s, const ElementBase& e);
  static void collect(const Step& s, const Node& n, bool include_self,
                      std::vector<const ElementBase*>& out);
};

/// One-shot convenience: compile + select.
std::vector<const ElementBase*> select(const Node& from,
                                       std::string_view expr,
                                       const PrefixMap& prefixes = {});

/// One-shot convenience: compile + first.
const ElementBase* select_first(const Node& from, std::string_view expr,
                                const PrefixMap& prefixes = {});

}  // namespace bxsoap::xdm
