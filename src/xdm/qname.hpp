// Qualified names and namespace declarations for bXDM.
#pragma once

#include <string>
#include <string_view>

namespace bxsoap::xdm {

/// An expanded qualified name. Identity (for equality and queries) is
/// (namespace_uri, local); the prefix is serialization advice kept so a
/// BXSA->XML->BXSA round trip preserves the author's prefixes.
struct QName {
  std::string namespace_uri;  // empty = no namespace
  std::string local;
  std::string prefix;  // empty = default/no prefix

  QName() = default;
  explicit QName(std::string local_name) : local(std::move(local_name)) {}
  QName(std::string uri, std::string local_name)
      : namespace_uri(std::move(uri)), local(std::move(local_name)) {}
  QName(std::string uri, std::string local_name, std::string pfx)
      : namespace_uri(std::move(uri)),
        local(std::move(local_name)),
        prefix(std::move(pfx)) {}

  bool has_namespace() const noexcept { return !namespace_uri.empty(); }

  /// "prefix:local" or just "local"; the lexical form used in textual XML.
  std::string lexical() const {
    return prefix.empty() ? local : prefix + ":" + local;
  }

  friend bool operator==(const QName& a, const QName& b) noexcept {
    return a.namespace_uri == b.namespace_uri && a.local == b.local;
  }
  friend bool operator!=(const QName& a, const QName& b) noexcept {
    return !(a == b);
  }
};

/// One xmlns declaration: prefix -> URI. An empty prefix declares the
/// default namespace.
struct NamespaceDecl {
  std::string prefix;
  std::string uri;

  friend bool operator==(const NamespaceDecl& a,
                         const NamespaceDecl& b) noexcept {
    return a.prefix == b.prefix && a.uri == b.uri;
  }
};

}  // namespace bxsoap::xdm
