#include "xml/escape.hpp"

namespace bxsoap::xml {

void append_escaped_text(std::string& out, std::string_view s) {
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        // Only ]]> strictly requires escaping '>', but escaping it always is
        // the conventional safe choice.
        out += "&gt;";
        break;
      default:
        out.push_back(c);
    }
  }
}

void append_escaped_attr(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      case '\n':
        out += "&#10;";
        break;
      case '\r':
        out += "&#13;";
        break;
      case '\t':
        out += "&#9;";
        break;
      default:
        out.push_back(c);
    }
  }
}

std::string escape_text(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  append_escaped_text(out, s);
  return out;
}

std::string escape_attr(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  append_escaped_attr(out, s);
  return out;
}

}  // namespace bxsoap::xml
