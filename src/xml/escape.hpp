// XML 1.0 character escaping.
#pragma once

#include <string>
#include <string_view>

namespace bxsoap::xml {

/// Escape for element content: & < > (plus ]]> safety).
void append_escaped_text(std::string& out, std::string_view s);

/// Escape for a double-quoted attribute value: also " and newlines/tabs
/// (attribute-value normalization would otherwise fold them).
void append_escaped_attr(std::string& out, std::string_view s);

std::string escape_text(std::string_view s);
std::string escape_attr(std::string_view s);

}  // namespace bxsoap::xml
