// Well-known namespace URIs used by the typed XML serialization.
#pragma once

#include <string_view>

namespace bxsoap::xml {

inline constexpr std::string_view kXsiUri =
    "http://www.w3.org/2001/XMLSchema-instance";
inline constexpr std::string_view kXsdUri =
    "http://www.w3.org/2001/XMLSchema";

/// Our annotation namespace, used where standard vocabularies have no typed
/// equivalent (array item names/types, typed attributes). Everything in this
/// namespace is consumed (and removed) by the typed re-parse, so a
/// BXSA -> XML -> BXSA round trip is clean.
inline constexpr std::string_view kBxUri = "urn:bxsa:annotations";

inline constexpr std::string_view kXmlnsUri = "http://www.w3.org/2000/xmlns/";

}  // namespace bxsoap::xml
