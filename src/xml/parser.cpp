#include "xml/parser.hpp"

#include <vector>

#include "xml/ns_constants.hpp"

namespace bxsoap::xml {

using namespace bxsoap::xdm;

namespace {

bool is_ws(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\n';
}

bool is_name_start(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
         static_cast<unsigned char>(c) >= 0x80;
}

bool is_name_char(char c) {
  return is_name_start(c) || (c >= '0' && c <= '9') || c == '-' || c == '.';
}

void append_utf8(std::string& out, std::uint32_t cp) {
  if (cp <= 0x7F) {
    out.push_back(static_cast<char>(cp));
  } else if (cp <= 0x7FF) {
    out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp <= 0xFFFF) {
    out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  }
}

class Parser {
 public:
  Parser(std::string_view text, const ParseOptions& opt)
      : s_(text), opt_(opt) {}

  DocumentPtr parse() {
    auto doc = std::make_unique<Document>();
    skip_prolog_ws_and_decl();
    bool saw_root = false;
    while (!eof()) {
      if (peek() != '<') {
        // Top-level text must be whitespace only.
        const std::size_t start = pos_;
        while (!eof() && peek() != '<') {
          if (!is_ws(peek())) {
            fail("character data is not allowed outside the root element");
          }
          take();
        }
        (void)start;
        continue;
      }
      if (starts_with("<!--")) {
        doc->add_child(parse_comment());
      } else if (starts_with("<?")) {
        doc->add_child(parse_pi());
      } else if (starts_with("<!DOCTYPE")) {
        fail("DOCTYPE is not supported (SOAP forbids DTDs)");
      } else {
        if (saw_root) fail("multiple root elements");
        ns_stack_.clear();
        doc->add_child(parse_element());
        saw_root = true;
      }
    }
    if (!saw_root) fail("document has no root element");
    return doc;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw ParseError(why, line_, pos_ - line_start_ + 1);
  }

  bool eof() const { return pos_ >= s_.size(); }
  char peek() const { return s_[pos_]; }

  char take() {
    const char c = s_[pos_++];
    if (c == '\n') {
      ++line_;
      line_start_ = pos_;
    }
    return c;
  }

  bool starts_with(std::string_view prefix) const {
    return s_.substr(pos_, prefix.size()) == prefix;
  }

  void expect(char c) {
    if (eof() || peek() != c) {
      fail(std::string("expected '") + c + "'");
    }
    take();
  }

  void expect_str(std::string_view t) {
    if (!starts_with(t)) fail("expected '" + std::string(t) + "'");
    for (std::size_t i = 0; i < t.size(); ++i) take();
  }

  void skip_ws() {
    while (!eof() && is_ws(peek())) take();
  }

  std::string read_name() {
    if (eof() || !is_name_start(peek())) fail("expected a name");
    std::string name;
    name.push_back(take());
    while (!eof() && (is_name_char(peek()) || peek() == ':')) {
      name.push_back(take());
    }
    return name;
  }

  /// Consume until `terminator`, decoding entity and character references.
  std::string read_text_until(char terminator) {
    std::string out;
    while (!eof() && peek() != terminator && peek() != '<') {
      const char c = take();
      if (c == '&') {
        decode_reference(out);
      } else {
        out.push_back(c);
      }
    }
    return out;
  }

  void decode_reference(std::string& out) {
    // '&' already consumed.
    std::string name;
    while (!eof() && peek() != ';') {
      name.push_back(take());
      if (name.size() > 10) fail("unterminated entity reference");
    }
    if (eof()) fail("unterminated entity reference");
    take();  // ';'
    if (name == "amp") {
      out.push_back('&');
    } else if (name == "lt") {
      out.push_back('<');
    } else if (name == "gt") {
      out.push_back('>');
    } else if (name == "quot") {
      out.push_back('"');
    } else if (name == "apos") {
      out.push_back('\'');
    } else if (!name.empty() && name[0] == '#') {
      std::uint32_t cp = 0;
      bool any = false;
      if (name.size() > 1 && (name[1] == 'x' || name[1] == 'X')) {
        for (std::size_t i = 2; i < name.size(); ++i) {
          const char h = name[i];
          std::uint32_t d;
          if (h >= '0' && h <= '9') d = static_cast<std::uint32_t>(h - '0');
          else if (h >= 'a' && h <= 'f') d = static_cast<std::uint32_t>(h - 'a' + 10);
          else if (h >= 'A' && h <= 'F') d = static_cast<std::uint32_t>(h - 'A' + 10);
          else fail("bad hex character reference");
          cp = cp * 16 + d;
          any = true;
        }
      } else {
        for (std::size_t i = 1; i < name.size(); ++i) {
          const char d = name[i];
          if (d < '0' || d > '9') fail("bad character reference");
          cp = cp * 10 + static_cast<std::uint32_t>(d - '0');
          any = true;
        }
      }
      if (!any || cp > 0x10FFFF) fail("bad character reference");
      append_utf8(out, cp);
    } else {
      fail("unknown entity '&" + name + ";' (no DTD support)");
    }
  }

  // ---- namespaces -----------------------------------------------------------

  std::string_view resolve_prefix(std::string_view prefix) {
    for (auto it = ns_stack_.rbegin(); it != ns_stack_.rend(); ++it) {
      if (it->prefix == prefix) return it->uri;
    }
    if (prefix.empty()) return {};
    if (prefix == "xml") return "http://www.w3.org/XML/1998/namespace";
    fail("unbound namespace prefix '" + std::string(prefix) + "'");
  }

  QName make_qname(const std::string& raw, bool is_attribute) {
    const auto colon = raw.find(':');
    if (colon == std::string::npos) {
      if (is_attribute) return QName(raw);  // unprefixed attr: no namespace
      return QName(std::string(resolve_prefix("")), raw);
    }
    const std::string prefix = raw.substr(0, colon);
    const std::string local = raw.substr(colon + 1);
    if (local.empty() || local.find(':') != std::string::npos) {
      fail("malformed QName '" + raw + "'");
    }
    return QName(std::string(resolve_prefix(prefix)), local, prefix);
  }

  // ---- productions ----------------------------------------------------------

  void skip_prolog_ws_and_decl() {
    skip_ws();
    if (starts_with("<?xml") && s_.size() > pos_ + 5 &&
        (is_ws(s_[pos_ + 5]) || s_[pos_ + 5] == '?')) {
      while (!eof() && !starts_with("?>")) take();
      if (eof()) fail("unterminated XML declaration");
      take();
      take();
    }
  }

  NodePtr parse_comment() {
    expect_str("<!--");
    std::string text;
    while (!eof() && !starts_with("-->")) {
      text.push_back(take());
      if (text.size() >= 2 && text.substr(text.size() - 2) == "--") {
        fail("'--' is not allowed inside a comment");
      }
    }
    if (eof()) fail("unterminated comment");
    expect_str("-->");
    return std::make_unique<CommentNode>(std::move(text));
  }

  NodePtr parse_pi() {
    expect_str("<?");
    const std::string target = read_name();
    if (target == "xml") fail("XML declaration only allowed at the start");
    std::string data;
    skip_ws();
    while (!eof() && !starts_with("?>")) data.push_back(take());
    if (eof()) fail("unterminated processing instruction");
    expect_str("?>");
    return std::make_unique<PINode>(target, std::move(data));
  }

  struct RawAttr {
    std::string name;
    std::string value;
  };

  NodePtr parse_element() {
    if (++depth_guard_ > opt_.max_depth) {
      fail("element nesting exceeds the depth limit of " +
           std::to_string(opt_.max_depth));
    }
    expect('<');
    const std::string raw_name = read_name();

    // Collect raw attributes first: xmlns declarations must be in force
    // before any QName (including the element's own) is resolved.
    std::vector<RawAttr> raw_attrs;
    bool self_closing = false;
    for (;;) {
      const bool had_ws = !eof() && is_ws(peek());
      skip_ws();
      if (eof()) fail("unterminated start tag");
      if (peek() == '>') {
        take();
        break;
      }
      if (peek() == '/') {
        take();
        expect('>');
        self_closing = true;
        break;
      }
      if (!had_ws) fail("expected whitespace before attribute");
      RawAttr a;
      a.name = read_name();
      skip_ws();
      expect('=');
      skip_ws();
      if (eof() || (peek() != '"' && peek() != '\'')) {
        fail("attribute value must be quoted");
      }
      const char quote = take();
      a.value = read_text_until(quote);
      if (eof() || peek() != quote) {
        fail(peek() == '<' ? "'<' in attribute value"
                           : "unterminated attribute value");
      }
      take();
      raw_attrs.push_back(std::move(a));
    }

    const std::size_t ns_mark = ns_stack_.size();
    std::vector<NamespaceDecl> decls;
    std::vector<RawAttr> plain_attrs;
    for (auto& a : raw_attrs) {
      if (a.name == "xmlns") {
        decls.push_back({"", a.value});
        ns_stack_.push_back(decls.back());
      } else if (a.name.rfind("xmlns:", 0) == 0) {
        const std::string prefix = a.name.substr(6);
        if (prefix.empty() || a.value.empty()) {
          fail("namespace prefix must bind a non-empty URI");
        }
        decls.push_back({prefix, a.value});
        ns_stack_.push_back(decls.back());
      } else {
        plain_attrs.push_back(std::move(a));
      }
    }

    auto element = std::make_unique<Element>(make_qname(raw_name, false));
    for (auto& d : decls) element->declare_namespace(d.prefix, d.uri);
    for (auto& a : plain_attrs) {
      const QName qn = make_qname(a.name, true);
      if (element->find_attribute(qn) != nullptr) {
        fail("duplicate attribute '" + a.name + "'");
      }
      element->add_attribute(qn, ScalarValue(std::move(a.value)));
    }

    if (!self_closing) {
      parse_content(*element, raw_name);
    }
    ns_stack_.resize(ns_mark);
    --depth_guard_;
    return element;
  }

  void parse_content(Element& parent, const std::string& raw_name) {
    std::string text;
    auto flush_text = [&] {
      if (text.empty()) return;
      if (opt_.ignore_whitespace) {
        bool all_ws = true;
        for (char c : text) {
          if (!is_ws(c)) {
            all_ws = false;
            break;
          }
        }
        if (all_ws) {
          text.clear();
          return;
        }
      }
      parent.add_text(std::move(text));
      text.clear();
    };

    for (;;) {
      if (eof()) fail("unterminated element <" + raw_name + ">");
      if (peek() != '<') {
        const char c = take();
        if (c == '&') {
          decode_reference(text);
        } else {
          text.push_back(c);
        }
        continue;
      }
      if (starts_with("</")) {
        flush_text();
        take();
        take();
        const std::string closing = read_name();
        if (closing != raw_name) {
          fail("mismatched end tag </" + closing + ">, expected </" +
               raw_name + ">");
        }
        skip_ws();
        expect('>');
        return;
      }
      if (starts_with("<!--")) {
        flush_text();
        parent.add_child(parse_comment());
      } else if (starts_with("<![CDATA[")) {
        expect_str("<![CDATA[");
        while (!eof() && !starts_with("]]>")) text.push_back(take());
        if (eof()) fail("unterminated CDATA section");
        expect_str("]]>");
      } else if (starts_with("<?")) {
        flush_text();
        parent.add_child(parse_pi());
      } else if (starts_with("<!")) {
        fail("unsupported markup declaration in content");
      } else {
        flush_text();
        parent.add_child(parse_element());
      }
    }
  }

  std::string_view s_;
  ParseOptions opt_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
  std::size_t line_start_ = 0;
  std::size_t depth_guard_ = 0;
  std::vector<NamespaceDecl> ns_stack_;
};

}  // namespace

DocumentPtr parse_xml(std::string_view text, const ParseOptions& opt) {
  Parser p(text, opt);
  return p.parse();
}

}  // namespace bxsoap::xml
