// A non-validating XML 1.0 parser producing an untyped bXDM tree.
//
// Supported: elements, attributes, namespace resolution (xmlns / xmlns:p,
// default-namespace undeclaration), character data, entity references
// (&amp; &lt; &gt; &quot; &apos;), numeric character references (decimal and
// hex, encoded back to UTF-8), CDATA sections, comments, processing
// instructions and the XML declaration. DOCTYPE declarations are rejected
// (no DTD support — SOAP explicitly forbids them anyway).
//
// "Untyped" means every element is a component Element and every attribute
// value a string. Use xml::retype() afterwards to reconstruct
// LeafElement<T>/ArrayElement<T> from xsi:type / bx:* annotations.
#pragma once

#include <string_view>

#include "common/error.hpp"
#include "xdm/node.hpp"

namespace bxsoap::xml {

class ParseError : public DecodeError {
 public:
  ParseError(const std::string& what, std::size_t line, std::size_t column)
      : DecodeError("xml:" + std::to_string(line) + ":" +
                    std::to_string(column) + ": " + what),
        line_(line),
        column_(column) {}

  std::size_t line() const noexcept { return line_; }
  std::size_t column() const noexcept { return column_; }

 private:
  std::size_t line_;
  std::size_t column_;
};

struct ParseOptions {
  /// Drop text nodes consisting only of XML whitespace between elements
  /// (convenient for hand-written test documents; keep OFF for round-trip
  /// fidelity).
  bool ignore_whitespace = false;
  /// Maximum element nesting depth. The parser (and the tree it builds)
  /// recurse per level, so unbounded depth is a stack-exhaustion attack;
  /// 1024 is far beyond any real SOAP message.
  std::size_t max_depth = 1024;
};

/// Parse a complete document. Throws ParseError on malformed input.
xdm::DocumentPtr parse_xml(std::string_view text,
                           const ParseOptions& opt = {});

}  // namespace bxsoap::xml
