#include "xml/retype.hpp"

#include <vector>

#include "common/numeric_text.hpp"
#include "xml/ns_constants.hpp"

namespace bxsoap::xml {

using namespace bxsoap::xdm;

namespace {

bool is_reserved_uri(std::string_view uri) {
  return uri == kXsiUri || uri == kXsdUri || uri == kBxUri;
}

class Retyper {
 public:
  explicit Retyper(const RetypeOptions& opt) : opt_(opt) {}

  NodePtr transform_element(const ElementBase& e) {
    // Already-typed shapes pass through (retype is idempotent).
    if (e.kind() != NodeKind::kElement) return e.clone();
    const auto& el = static_cast<const Element&>(e);

    scopes_.push_back(el.namespaces());
    NodePtr result = transform_component(el);
    scopes_.pop_back();
    return result;
  }

  DocumentPtr transform_document(const Document& doc) {
    auto out = std::make_unique<Document>();
    for (const auto& c : doc.children()) {
      if (const ElementBase* e = as_element(*c)) {
        out->add_child(transform_element(*e));
      } else {
        out->add_child(c->clone());
      }
    }
    return out;
  }

 private:
  std::string_view resolve(std::string_view prefix) const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      for (auto d = it->rbegin(); d != it->rend(); ++d) {
        if (d->prefix == prefix) return d->uri;
      }
    }
    return {};
  }

  /// Parse an annotation value like "xsd:double" into an AtomType; the
  /// prefix must resolve to the XML Schema namespace in scope.
  AtomType parse_type_value(std::string_view value) const {
    const std::string_view v = trim_xml_ws(value);
    const auto colon = v.find(':');
    if (colon == std::string_view::npos) {
      throw DecodeError("type annotation '" + std::string(v) +
                        "' has no namespace prefix");
    }
    if (resolve(v.substr(0, colon)) != kXsdUri) {
      throw DecodeError("type annotation prefix does not resolve to the XML "
                        "Schema namespace");
    }
    auto t = atom_from_xsd_local(v.substr(colon + 1));
    if (!t) {
      throw DecodeError("unknown XML Schema type '" + std::string(v) + "'");
    }
    return *t;
  }

  /// Find an annotation attribute by expanded name; returns its text or
  /// nullopt.
  static std::optional<std::string> take_annotation(
      std::vector<Attribute>& attrs, std::string_view uri,
      std::string_view local) {
    for (auto it = attrs.begin(); it != attrs.end(); ++it) {
      if (it->name.namespace_uri == uri && it->name.local == local) {
        std::string v = it->text();
        attrs.erase(it);
        return v;
      }
    }
    return std::nullopt;
  }

  /// Copy name/namespaces (minus reserved) onto `dst`, then the attributes,
  /// applying bx:at-* typed-attribute annotations.
  void finish_element_base(ElementBase& dst, const ElementBase& src,
                           std::vector<Attribute> attrs) {
    for (const auto& d : src.namespaces()) {
      if (!is_reserved_uri(d.uri)) dst.declare_namespace(d.prefix, d.uri);
    }
    // Typed-attribute annotations: bx:at-<local>="xsd:T".
    std::vector<Attribute> out;
    for (auto& a : attrs) {
      if (a.name.namespace_uri == kBxUri) continue;  // consumed below
      out.push_back(std::move(a));
    }
    for (const auto& a : attrs) {
      if (a.name.namespace_uri != kBxUri ||
          a.name.local.rfind("at-", 0) != 0) {
        continue;
      }
      const std::string target = a.name.local.substr(3);
      const AtomType t = parse_type_value(a.text());
      bool found = false;
      for (auto& candidate : out) {
        if (candidate.name.namespace_uri.empty() &&
            candidate.name.local == target) {
          candidate.value =
              parse(t, scalar_get<std::string>(candidate.value));
          found = true;
          break;
        }
      }
      if (!found) {
        throw DecodeError("typed-attribute annotation for missing attribute '" +
                          target + "'");
      }
    }
    for (auto& a : out) dst.attributes().push_back(std::move(a));
  }

  static std::string element_text(const Element& e) {
    std::string text;
    for (const auto& c : e.children()) {
      switch (c->kind()) {
        case NodeKind::kText:
          text += static_cast<const TextNode&>(*c).text();
          break;
        case NodeKind::kComment:
        case NodeKind::kPI:
          break;  // ignorable in a typed value
        default:
          throw DecodeError("typed element <" + e.name().local +
                            "> must not have element children");
      }
    }
    return text;
  }

  template <Atomic T>
  NodePtr make_typed_leaf(const Element& e, std::vector<Attribute> attrs) {
    ScalarValue v = parse(AtomTraits<T>::kType, element_text(e));
    auto leaf = std::make_unique<LeafElement<T>>(e.name(),
                                                 scalar_get<T>(v));
    finish_element_base(*leaf, e, std::move(attrs));
    return leaf;
  }

  NodePtr make_leaf(AtomType t, const Element& e,
                    std::vector<Attribute> attrs) {
    switch (t) {
      case AtomType::kString:
        return make_typed_leaf<std::string>(e, std::move(attrs));
      case AtomType::kInt8:
        return make_typed_leaf<std::int8_t>(e, std::move(attrs));
      case AtomType::kUInt8:
        return make_typed_leaf<std::uint8_t>(e, std::move(attrs));
      case AtomType::kInt16:
        return make_typed_leaf<std::int16_t>(e, std::move(attrs));
      case AtomType::kUInt16:
        return make_typed_leaf<std::uint16_t>(e, std::move(attrs));
      case AtomType::kInt32:
        return make_typed_leaf<std::int32_t>(e, std::move(attrs));
      case AtomType::kUInt32:
        return make_typed_leaf<std::uint32_t>(e, std::move(attrs));
      case AtomType::kInt64:
        return make_typed_leaf<std::int64_t>(e, std::move(attrs));
      case AtomType::kUInt64:
        return make_typed_leaf<std::uint64_t>(e, std::move(attrs));
      case AtomType::kFloat32:
        return make_typed_leaf<float>(e, std::move(attrs));
      case AtomType::kFloat64:
        return make_typed_leaf<double>(e, std::move(attrs));
      case AtomType::kBool:
        return make_typed_leaf<bool>(e, std::move(attrs));
    }
    throw DecodeError("unknown leaf type code");
  }

  template <PackedAtomic T>
  NodePtr make_typed_array(const Element& e, std::vector<Attribute> attrs,
                           std::optional<std::string> item_name) {
    auto arr = std::make_unique<ArrayElement<T>>(e.name());
    for (const auto& c : e.children()) {
      switch (c->kind()) {
        case NodeKind::kText: {
          // Whitespace between items is tolerated; anything else is data
          // loss and rejected.
          const auto& t = static_cast<const TextNode&>(*c).text();
          if (!trim_xml_ws(t).empty()) {
            throw DecodeError("unexpected text inside array element <" +
                              e.name().local + ">");
          }
          break;
        }
        case NodeKind::kComment:
        case NodeKind::kPI:
          break;
        case NodeKind::kElement: {
          const auto& item = static_cast<const Element&>(*c);
          if (!item_name) item_name = item.name().local;
          ScalarValue v = parse(AtomTraits<T>::kType, element_text(item));
          arr->values().push_back(scalar_get<T>(v));
          break;
        }
        default:
          throw DecodeError("unexpected typed child inside array element");
      }
    }
    if (item_name) arr->set_item_name(*item_name);
    finish_element_base(*arr, e, std::move(attrs));
    return arr;
  }

  NodePtr make_array(AtomType t, const Element& e,
                     std::vector<Attribute> attrs,
                     std::optional<std::string> item_name) {
    switch (t) {
      case AtomType::kInt8:
        return make_typed_array<std::int8_t>(e, std::move(attrs), item_name);
      case AtomType::kUInt8:
        return make_typed_array<std::uint8_t>(e, std::move(attrs), item_name);
      case AtomType::kInt16:
        return make_typed_array<std::int16_t>(e, std::move(attrs), item_name);
      case AtomType::kUInt16:
        return make_typed_array<std::uint16_t>(e, std::move(attrs), item_name);
      case AtomType::kInt32:
        return make_typed_array<std::int32_t>(e, std::move(attrs), item_name);
      case AtomType::kUInt32:
        return make_typed_array<std::uint32_t>(e, std::move(attrs), item_name);
      case AtomType::kInt64:
        return make_typed_array<std::int64_t>(e, std::move(attrs), item_name);
      case AtomType::kUInt64:
        return make_typed_array<std::uint64_t>(e, std::move(attrs), item_name);
      case AtomType::kFloat32:
        return make_typed_array<float>(e, std::move(attrs), item_name);
      case AtomType::kFloat64:
        return make_typed_array<double>(e, std::move(attrs), item_name);
      case AtomType::kBool:
      case AtomType::kString:
        throw DecodeError("bool/string arrays are not packed types");
    }
    throw DecodeError("unknown array type code");
  }

  NodePtr transform_component(const Element& e) {
    std::vector<Attribute> attrs = e.attributes();

    if (auto t = take_annotation(attrs, kXsiUri, "type")) {
      return make_leaf(parse_type_value(*t), e, std::move(attrs));
    }
    if (auto t = take_annotation(attrs, kBxUri, "arrayType")) {
      auto item_name = take_annotation(attrs, kBxUri, "itemName");
      return make_array(parse_type_value(*t), e, std::move(attrs), item_name);
    }

    auto out = std::make_unique<Element>(e.name());
    finish_element_base(*out, e, std::move(attrs));
    for (const auto& c : e.children()) {
      if (const ElementBase* child = as_element(*c)) {
        out->add_child(transform_element(*child));
      } else {
        out->add_child(c->clone());
      }
    }
    return out;
  }

  ScalarValue parse(AtomType t, std::string_view text) const {
    return opt_.era_number_parsing ? parse_scalar_era(t, text)
                                   : parse_scalar(t, text);
  }

  RetypeOptions opt_;
  std::vector<std::vector<NamespaceDecl>> scopes_;
};

}  // namespace

DocumentPtr retype(const Document& doc, const RetypeOptions& opt) {
  Retyper r(opt);
  return r.transform_document(doc);
}

NodePtr retype_element(const ElementBase& element, const RetypeOptions& opt) {
  Retyper r(opt);
  return r.transform_element(element);
}

}  // namespace bxsoap::xml
