// Typed re-parse: reconstruct LeafElement<T> / ArrayElement<T> from the
// annotations write_xml() emits (xsi:type, bx:arrayType, bx:itemName,
// bx:at-*). This is the second half of the paper's transcodability story:
//
//   bXDM --write_xml--> text --parse_xml--> untyped bXDM --retype--> bXDM
//
// must reproduce the original tree (floats at full precision). Annotation
// attributes and declarations of the xsi/xsd/bx namespaces are consumed and
// removed so the round trip leaves no residue.
//
// The paper's SOAP-encoding-rule note applies: without a schema, the textual
// form must carry explicit type information, otherwise retype() has nothing
// to go on and returns the element untouched (still a component Element).
#pragma once

#include "xdm/node.hpp"

namespace bxsoap::xml {

struct RetypeOptions {
  /// Parse numbers with strtod/strtoll the way 2005-era stacks did instead
  /// of std::from_chars. Values are identical; the CPU cost matches the
  /// era the paper measured (the read-side twin of
  /// xml::WriteOptions::era_number_formatting).
  bool era_number_parsing = false;
};

/// Rebuild a typed tree from an untyped parse. Unannotated elements pass
/// through unchanged. Throws DecodeError when an annotation is malformed
/// (unknown type name, leaf with element children, non-numeric array item).
xdm::DocumentPtr retype(const xdm::Document& doc,
                        const RetypeOptions& opt = {});

/// Element-level entry point (used by tests and the SOAP body decoder).
xdm::NodePtr retype_element(const xdm::ElementBase& element,
                            const RetypeOptions& opt = {});

}  // namespace bxsoap::xml
