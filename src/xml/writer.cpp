#include "xml/writer.hpp"

#include <cstdio>
#include <optional>
#include <vector>

#include "xml/escape.hpp"
#include "xml/ns_constants.hpp"

namespace bxsoap::xml {

using namespace bxsoap::xdm;

namespace {

/// 2005-era formatting: printf-family with enough digits to round-trip.
void append_scalar_text_era(std::string& out, const ScalarValue& v) {
  char buf[64];
  std::visit(
      [&](const auto& x) {
        using T = std::decay_t<decltype(x)>;
        if constexpr (std::is_same_v<T, std::string>) {
          out += x;
        } else if constexpr (std::is_same_v<T, bool>) {
          out += x ? "true" : "false";
        } else if constexpr (std::is_floating_point_v<T>) {
          const int n = std::snprintf(buf, sizeof(buf), "%.17g",
                                      static_cast<double>(x));
          out.append(buf, static_cast<std::size_t>(n));
        } else if constexpr (std::is_signed_v<T>) {
          const int n = std::snprintf(buf, sizeof(buf), "%lld",
                                      static_cast<long long>(x));
          out.append(buf, static_cast<std::size_t>(n));
        } else {
          const int n = std::snprintf(buf, sizeof(buf), "%llu",
                                      static_cast<unsigned long long>(x));
          out.append(buf, static_cast<std::size_t>(n));
        }
      },
      v);
}

class Writer final : public NodeVisitor {
 public:
  explicit Writer(const WriteOptions& opt) : opt_(opt) {}

  std::string take() { return std::move(out_); }

  void visit(const Document& d) override {
    if (opt_.xml_decl) {
      out_ += "<?xml version=\"1.0\" encoding=\"UTF-8\"?>";
      maybe_newline();
    }
    for (const auto& c : d.children()) {
      c->accept(*this);
      if (!is_element(*c)) maybe_newline();
    }
  }

  void visit(const Element& e) override {
    OpenTag tag = begin_open_tag(e);
    if (e.children().empty()) {
      out_ += "/>";
      end_open_tag(tag);
      return;
    }
    out_ += '>';
    const bool block = opt_.indent > 0 && !has_text_child(e);
    ++depth_;
    for (const auto& c : e.children()) {
      if (block) indent_line();
      c->accept(*this);
    }
    --depth_;
    if (block) indent_line();
    close_tag(tag.lexical);
    end_open_tag(tag);
  }

  void visit(const LeafElementBase& e) override {
    OpenTag tag = begin_open_tag(e);
    if (opt_.emit_type_info) {
      emit_type_attr("xsi", kXsiUri, "type", e.atom_type());
    }
    out_ += '>';
    std::string text;
    if (opt_.era_number_formatting) {
      append_scalar_text_era(text, e.scalar());
    } else {
      e.append_text(text);
    }
    append_escaped_text(out_, text);
    close_tag(tag.lexical);
    end_open_tag(tag);
  }

  void visit(const ArrayElementBase& e) override {
    OpenTag tag = begin_open_tag(e);
    if (opt_.emit_type_info) {
      emit_type_attr("bx", kBxUri, "arrayType", e.atom_type());
      if (e.item_name() != "d") {
        const std::string pfx = require_prefix(kBxUri, "bx");
        out_ += ' ' + pfx + ":itemName=\"";
        append_escaped_attr(out_, e.item_name());
        out_ += '"';
      }
    }
    out_ += '>';
    const bool block = opt_.indent > 0;
    ++depth_;
    std::string text;
    for (std::size_t i = 0; i < e.count(); ++i) {
      if (block) indent_line();
      out_ += '<';
      out_ += e.item_name();
      out_ += '>';
      text.clear();
      if (opt_.era_number_formatting) {
        append_scalar_text_era(text, e.item_scalar(i));
      } else {
        e.append_item_text(i, text);
      }
      append_escaped_text(out_, text);
      out_ += "</";
      out_ += e.item_name();
      out_ += '>';
    }
    --depth_;
    if (block) indent_line();
    close_tag(tag.lexical);
    end_open_tag(tag);
  }

  void visit(const TextNode& t) override { append_escaped_text(out_, t.text()); }

  void visit(const PINode& pi) override {
    out_ += "<?" + pi.target();
    if (!pi.data().empty()) out_ += ' ' + pi.data();
    out_ += "?>";
  }

  void visit(const CommentNode& c) override {
    out_ += "<!--" + c.text() + "-->";
  }

 private:
  struct OpenTag {
    std::string lexical;  // the element's serialized name
  };

  // ---- namespace scope handling -------------------------------------------

  /// Innermost binding of `prefix`, or nullopt when unbound.
  std::optional<std::string_view> uri_for_prefix(std::string_view prefix) const {
    for (auto scope = scopes_.rbegin(); scope != scopes_.rend(); ++scope) {
      for (auto d = scope->rbegin(); d != scope->rend(); ++d) {
        if (d->prefix == prefix) return std::string_view(d->uri);
      }
    }
    return std::nullopt;
  }

  /// An in-scope, unshadowed prefix bound to `uri`.
  std::optional<std::string> prefix_for_uri(std::string_view uri,
                                            bool allow_default) const {
    for (auto scope = scopes_.rbegin(); scope != scopes_.rend(); ++scope) {
      for (auto d = scope->rbegin(); d != scope->rend(); ++d) {
        if (d->uri != uri) continue;
        if (d->prefix.empty() && !allow_default) continue;
        if (uri_for_prefix(d->prefix) == uri) return d->prefix;
      }
    }
    return std::nullopt;
  }

  /// Bind `prefix` -> `uri` on the current element.
  void declare(std::string prefix, std::string uri) {
    scopes_.back().push_back({prefix, uri});
    pending_decls_.push_back(scopes_.back().back());
  }

  std::string fresh_prefix() {
    for (;;) {
      std::string candidate = "n" + std::to_string(++gen_counter_);
      if (!uri_for_prefix(candidate)) return candidate;
    }
  }

  /// Ensure some prefix is bound to `uri`; prefer `wanted` (declared here if
  /// free). Returns the usable prefix. Never returns the default namespace.
  std::string require_prefix(std::string_view uri, std::string_view wanted) {
    if (auto p = prefix_for_uri(uri, /*allow_default=*/false)) return *p;
    std::string prefix(wanted);
    if (prefix.empty() || uri_for_prefix(prefix).has_value()) {
      prefix = fresh_prefix();
    }
    declare(prefix, std::string(uri));
    return prefix;
  }

  /// Resolve the serialized name of an element.
  std::string qualify_element(const QName& name) {
    if (name.namespace_uri.empty()) {
      // An unprefixed name picks up the default namespace; undeclare it if
      // one is in force.
      if (auto def = uri_for_prefix(""); def && !def->empty()) {
        declare("", "");
      }
      return name.local;
    }
    // Prefer the author's prefix when it (already or newly) binds correctly.
    if (!name.prefix.empty()) {
      auto bound = uri_for_prefix(name.prefix);
      if (bound == name.namespace_uri) return name.lexical();
      if (!bound.has_value()) {
        declare(name.prefix, name.namespace_uri);
        return name.lexical();
      }
      // Prefix taken by another URI: fall through to lookup/generate.
    }
    if (auto p = prefix_for_uri(name.namespace_uri, /*allow_default=*/true)) {
      return p->empty() ? name.local : *p + ":" + name.local;
    }
    if (name.prefix.empty()) {
      // No binding anywhere: declare as the default namespace.
      declare("", name.namespace_uri);
      return name.local;
    }
    const std::string p = fresh_prefix();
    declare(p, name.namespace_uri);
    return p + ":" + name.local;
  }

  /// Resolve the serialized name of an attribute (default ns never applies).
  std::string qualify_attribute(const QName& name) {
    if (name.namespace_uri.empty()) return name.local;
    const std::string p = require_prefix(
        name.namespace_uri, name.prefix.empty() ? "a" : name.prefix);
    return p + ":" + name.local;
  }

  // ---- tag emission ---------------------------------------------------------

  OpenTag begin_open_tag(const ElementBase& e) {
    scopes_.emplace_back();
    pending_decls_.clear();
    for (const auto& d : e.namespaces()) {
      declare(d.prefix, d.uri);
    }

    OpenTag tag;
    tag.lexical = qualify_element(e.name());
    out_ += '<';
    out_ += tag.lexical;

    // Resolve attribute names (may add declarations) before emitting, so all
    // xmlns attributes appear before ordinary ones.
    std::vector<std::pair<std::string, const Attribute*>> attrs;
    attrs.reserve(e.attributes().size());
    for (const auto& a : e.attributes()) {
      attrs.emplace_back(qualify_attribute(a.name), &a);
    }
    // Typed attributes get a bx:at-<name> annotation; reserve the bx and
    // xsd prefixes before flushing declarations.
    std::string bx, xsd;
    if (opt_.emit_type_info) {
      for (const auto& [lex, a] : attrs) {
        if (a->type() != AtomType::kString) {
          bx = require_prefix(kBxUri, "bx");
          xsd = require_prefix(kXsdUri, "xsd");
          break;
        }
      }
    }

    flush_declarations();

    for (const auto& [lex, a] : attrs) {
      out_ += ' ' + lex + "=\"";
      append_escaped_attr(out_, a->text());
      out_ += '"';
      if (opt_.emit_type_info && a->type() != AtomType::kString) {
        const std::string_view canonical = atom_xsd_name(a->type());
        out_ += ' ' + bx + ":at-" + a->name.local + "=\"" + xsd +
                std::string(canonical.substr(3)) + '"';
      }
    }
    return tag;
  }

  /// Emit ` pfx:local="xsd:<type>"`, declaring pfx and xsd as needed.
  void emit_type_attr(std::string_view wanted_prefix, std::string_view uri,
                      std::string_view local, AtomType t) {
    const std::string pfx = require_prefix(uri, wanted_prefix);
    const std::string xsd = require_prefix(kXsdUri, "xsd");
    const std::string_view canonical = atom_xsd_name(t);  // "xsd:double"
    flush_declarations();
    out_ += ' ' + pfx + ":" + std::string(local) + "=\"" + xsd +
            std::string(canonical.substr(3)) + '"';
  }

  void flush_declarations() {
    for (const auto& d : pending_decls_) {
      if (d.prefix.empty()) {
        out_ += " xmlns=\"";
      } else {
        out_ += " xmlns:" + d.prefix + "=\"";
      }
      append_escaped_attr(out_, d.uri);
      out_ += '"';
    }
    pending_decls_.clear();
  }

  void end_open_tag(OpenTag&) { scopes_.pop_back(); }

  void close_tag(const std::string& lexical) {
    out_ += "</";
    out_ += lexical;
    out_ += '>';
  }

  static bool has_text_child(const Element& e) {
    for (const auto& c : e.children()) {
      if (c->kind() == NodeKind::kText) return true;
    }
    return false;
  }

  void maybe_newline() {
    if (opt_.indent > 0) out_ += '\n';
  }

  void indent_line() {
    if (opt_.indent > 0) {
      out_ += '\n';
      out_.append(static_cast<std::size_t>(depth_ * opt_.indent), ' ');
    }
  }

  WriteOptions opt_;
  std::string out_;
  std::vector<std::vector<NamespaceDecl>> scopes_;
  std::vector<NamespaceDecl> pending_decls_;
  int depth_ = 0;
  int gen_counter_ = 0;
};

}  // namespace

std::string write_xml(const Node& node, const WriteOptions& opt) {
  Writer w(opt);
  if (opt.xml_decl && node.kind() != NodeKind::kDocument) {
    // visit(Document) emits the declaration itself; for bare nodes, prefix
    // it here.
    std::string out = "<?xml version=\"1.0\" encoding=\"UTF-8\"?>";
    node.accept(w);
    return out + w.take();
  }
  node.accept(w);
  return w.take();
}

std::string write_xml(const Document& doc, const WriteOptions& opt) {
  return write_xml(static_cast<const Node&>(doc), opt);
}

}  // namespace bxsoap::xml
