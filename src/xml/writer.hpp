// Textual XML 1.0 serialization of bXDM (the XMLEncoding side of the paper's
// transcodability requirement).
//
// Typed nodes are lowered to plain XML as follows (all annotations live in
// reserved namespaces and are stripped again by the typed re-parse):
//
//   LeafElement<T>   ->  <name xsi:type="xsd:T">text</name>
//   ArrayElement<T>  ->  <name bx:arrayType="xsd:T" bx:itemName="d">
//                          <d>item0</d><d>item1</d>...
//                        </name>
//   typed Attribute  ->  name="text" plus bx:at-name="xsd:T"
//                        (XML has no standard typed-attribute syntax; this
//                        is our documented extension, per the paper's note
//                        that the XML serialization "should contain the type
//                        information explicitly" when no schema is known)
//
// With `emit_type_info = false` the writer produces the paper's plain,
// schema-free XML (what Table 1 measures): no annotations, arrays as bare
// repeated elements.
#pragma once

#include <string>

#include "xdm/node.hpp"

namespace bxsoap::xml {

struct WriteOptions {
  /// Emit xsi:type / bx:* annotations so the document can be re-typed.
  bool emit_type_info = true;
  /// Emit an <?xml version="1.0" encoding="UTF-8"?> declaration.
  bool xml_decl = false;
  /// Pretty-print with newlines and this indent (0 = compact single line).
  int indent = 0;
  /// Format numbers with snprintf("%.17g") the way 2005-era SOAP stacks
  /// did, instead of std::to_chars. Same values on the wire (full
  /// precision round-trips), but the CONVERSION cost matches the era the
  /// paper measured — the paper's central claim is that this conversion
  /// dominates textual-XML SOAP for scientific data. Used by the
  /// era-faithful benchmark series and bench_ablation_convert.
  bool era_number_formatting = false;
};

/// Serialize any bXDM node to XML text.
std::string write_xml(const xdm::Node& node, const WriteOptions& opt = {});

/// Convenience for the common document case.
std::string write_xml(const xdm::Document& doc, const WriteOptions& opt = {});

}  // namespace bxsoap::xml
