// Umbrella header for the textual XML 1.0 codec.
#pragma once

#include "xml/escape.hpp"     // IWYU pragma: export
#include "xml/ns_constants.hpp"  // IWYU pragma: export
#include "xml/parser.hpp"     // IWYU pragma: export
#include "xml/retype.hpp"     // IWYU pragma: export
#include "xml/writer.hpp"     // IWYU pragma: export
