#include "xslt/transform.hpp"

#include <optional>
#include <vector>

#include "common/numeric_text.hpp"
#include "xml/parser.hpp"

namespace bxsoap::xslt {

using namespace bxsoap::xdm;

namespace {

/// A match pattern: "/", "*", or a (namespace, local) name test.
struct MatchPattern {
  enum class Kind { kRoot, kAnyElement, kName } kind = Kind::kAnyElement;
  std::string namespace_uri;
  bool any_namespace = true;
  std::string local;

  /// Specificity for template-precedence: name > * > (root handled apart).
  int specificity() const {
    return kind == Kind::kName ? 2 : (kind == Kind::kAnyElement ? 1 : 3);
  }

  bool matches_element(const ElementBase& e) const {
    switch (kind) {
      case Kind::kRoot:
        return false;
      case Kind::kAnyElement:
        return true;
      case Kind::kName:
        return e.name().local == local &&
               (any_namespace || e.name().namespace_uri == namespace_uri);
    }
    return false;
  }
};

MatchPattern parse_pattern(std::string_view text, const PrefixMap& prefixes) {
  const std::string_view t = trim_xml_ws(text);
  MatchPattern p;
  if (t == "/") {
    p.kind = MatchPattern::Kind::kRoot;
    return p;
  }
  if (t == "*") {
    p.kind = MatchPattern::Kind::kAnyElement;
    return p;
  }
  p.kind = MatchPattern::Kind::kName;
  const auto colon = t.find(':');
  if (colon == std::string_view::npos) {
    p.local = std::string(t);
    p.any_namespace = true;
  } else {
    const std::string prefix(t.substr(0, colon));
    auto it = prefixes.find(prefix);
    if (it == prefixes.end()) {
      throw TransformError("unmapped prefix in match pattern '" +
                           std::string(t) + "'");
    }
    p.namespace_uri = it->second;
    p.any_namespace = false;
    p.local = std::string(t.substr(colon + 1));
  }
  if (p.local.empty() || p.local.find('/') != std::string_view::npos) {
    throw TransformError("unsupported match pattern '" + std::string(t) +
                         "' (use '/', '*', name or pfx:name)");
  }
  return p;
}

/// The string value of any node (XPath semantics, matching path.cpp's).
std::string node_string_value(const Node& n) {
  switch (n.kind()) {
    case NodeKind::kText:
      return static_cast<const TextNode&>(n).text();
    case NodeKind::kElement:
      return static_cast<const Element&>(n).string_value();
    case NodeKind::kLeafElement:
      return static_cast<const LeafElementBase&>(n).text();
    case NodeKind::kArrayElement: {
      const auto& a = static_cast<const ArrayElementBase&>(n);
      std::string out;
      for (std::size_t i = 0; i < a.count(); ++i) {
        if (i > 0) out += ' ';
        a.append_item_text(i, out);
      }
      return out;
    }
    case NodeKind::kDocument: {
      const auto& d = static_cast<const Document&>(n);
      return d.has_root() ? node_string_value(d.root()) : std::string{};
    }
    default:
      return {};
  }
}

/// A select expression: ".", "@attr", or a compiled path.
struct SelectExpr {
  enum class Kind { kSelf, kAttribute, kPath } kind = Kind::kSelf;
  std::string attr_local;
  std::optional<Path> path;

  static SelectExpr parse(std::string_view text, const PrefixMap& prefixes) {
    const std::string_view t = trim_xml_ws(text);
    SelectExpr e;
    if (t.empty() || t == ".") {
      e.kind = Kind::kSelf;
      return e;
    }
    if (t.front() == '@') {
      e.kind = Kind::kAttribute;
      e.attr_local = std::string(t.substr(1));
      if (e.attr_local.empty()) {
        throw TransformError("empty attribute select");
      }
      return e;
    }
    e.kind = Kind::kPath;
    try {
      e.path = Path::compile(t, prefixes);
    } catch (const PathError& err) {
      throw TransformError("bad select '" + std::string(t) +
                           "': " + err.what());
    }
    return e;
  }

  /// The string value of the expression at `context`.
  std::string string_value(const Node& context) const {
    switch (kind) {
      case Kind::kSelf:
        return node_string_value(context);
      case Kind::kAttribute: {
        const ElementBase* e = as_element(context);
        if (e == nullptr) return {};
        const Attribute* a = e->find_attribute(attr_local);
        return a != nullptr ? a->text() : std::string{};
      }
      case Kind::kPath: {
        const ElementBase* first = path->first(context);
        return first != nullptr ? node_string_value(*first) : std::string{};
      }
    }
    return {};
  }

  /// Nodes the expression selects at `context` (for apply-templates/test).
  std::vector<const ElementBase*> select(const Node& context) const {
    switch (kind) {
      case Kind::kSelf: {
        if (const ElementBase* e = as_element(context)) return {e};
        return {};
      }
      case Kind::kAttribute:
        return {};  // attributes are not applied to; use boolean() instead
      case Kind::kPath:
        return path->select(context);
    }
    return {};
  }

  /// XSLT boolean(): non-empty node set / non-empty string.
  bool test(const Node& context) const {
    switch (kind) {
      case Kind::kSelf:
        return true;
      case Kind::kAttribute: {
        const ElementBase* e = as_element(context);
        return e != nullptr && e->find_attribute(attr_local) != nullptr;
      }
      case Kind::kPath:
        return !path->select(context).empty();
    }
    return false;
  }
};

struct Template {
  MatchPattern match;
  const Element* body;  // points into the owned stylesheet document
};

}  // namespace

struct Stylesheet::Impl {
  DocumentPtr owned_doc;  // keeps Template::body pointers alive
  PrefixMap prefixes;
  std::vector<Template> templates;

  const Template* find_template(const Node& n) const {
    const Template* best = nullptr;
    if (n.kind() == NodeKind::kDocument) {
      for (const auto& t : templates) {
        if (t.match.kind == MatchPattern::Kind::kRoot) return &t;
      }
      return nullptr;
    }
    const ElementBase* e = as_element(n);
    if (e == nullptr) return nullptr;
    for (const auto& t : templates) {
      if (t.match.matches_element(*e) &&
          (best == nullptr ||
           t.match.specificity() > best->match.specificity())) {
        best = &t;
      }
    }
    return best;
  }

  // ---- execution ----------------------------------------------------------

  void apply_to(const Node& n, Element& out) const {
    if (const Template* t = find_template(n)) {
      instantiate(*t->body, n, out);
      return;
    }
    // Built-in rules.
    switch (n.kind()) {
      case NodeKind::kDocument:
        for (const auto& c : static_cast<const Document&>(n).children()) {
          apply_to(*c, out);
        }
        break;
      case NodeKind::kElement:
        for (const auto& c : static_cast<const Element&>(n).children()) {
          apply_to(*c, out);
        }
        break;
      case NodeKind::kText:
      case NodeKind::kLeafElement:
      case NodeKind::kArrayElement: {
        std::string text = node_string_value(n);
        if (!text.empty()) out.add_text(std::move(text));
        break;
      }
      default:
        break;  // comments and PIs are dropped, per XSLT's built-ins
    }
  }

  /// Instantiate a template body (children of <xsl:template>) at `context`,
  /// appending output nodes to `out`.
  void instantiate(const Element& body, const Node& context,
                   Element& out) const {
    for (const auto& child : body.children()) {
      instantiate_node(*child, context, out);
    }
  }

  void instantiate_node(const Node& n, const Node& context,
                        Element& out) const {
    switch (n.kind()) {
      case NodeKind::kText:
        out.add_text(static_cast<const TextNode&>(n).text());
        return;
      case NodeKind::kComment:
      case NodeKind::kPI:
        return;  // stylesheet comments are not copied
      case NodeKind::kLeafElement:
      case NodeKind::kArrayElement:
        // Typed literal result elements: copy verbatim.
        out.add_child(n.clone());
        return;
      case NodeKind::kElement:
        break;
      default:
        return;
    }

    const auto& e = static_cast<const Element&>(n);
    if (e.name().namespace_uri == kXslUri) {
      run_instruction(e, context, out);
      return;
    }
    // Literal result element: shallow-copy the shell (attribute value
    // templates interpolated), recurse into content.
    auto copy = make_element(e.name());
    for (const auto& d : e.namespaces()) {
      if (d.uri != kXslUri) copy->declare_namespace(d.prefix, d.uri);
    }
    for (const auto& a : e.attributes()) {
      if (const std::string* text = std::get_if<std::string>(&a.value)) {
        copy->add_attribute(a.name, expand_avt(*text, context));
      } else {
        copy->add_attribute(a.name, a.value);
      }
    }
    instantiate(e, context, *copy);
    out.add_child(std::move(copy));
  }

  /// Attribute value template: "{EXPR}" spans are replaced by the
  /// expression's string value; "{{" and "}}" escape literal braces.
  std::string expand_avt(std::string_view text, const Node& context) const {
    std::string out;
    for (std::size_t i = 0; i < text.size(); ++i) {
      const char c = text[i];
      if (c == '{') {
        if (i + 1 < text.size() && text[i + 1] == '{') {
          out.push_back('{');
          ++i;
          continue;
        }
        const std::size_t close = text.find('}', i + 1);
        if (close == std::string_view::npos) {
          throw TransformError("unterminated '{' in attribute value "
                               "template");
        }
        out += SelectExpr::parse(text.substr(i + 1, close - i - 1), prefixes)
                   .string_value(context);
        i = close;
      } else if (c == '}') {
        if (i + 1 < text.size() && text[i + 1] == '}') {
          out.push_back('}');
          ++i;
          continue;
        }
        throw TransformError("stray '}' in attribute value template");
      } else {
        out.push_back(c);
      }
    }
    return out;
  }

  void run_instruction(const Element& e, const Node& context,
                       Element& out) const {
    const std::string& op = e.name().local;
    auto select_of = [&](const char* attr,
                         const char* fallback) -> SelectExpr {
      const Attribute* a = e.find_attribute(attr);
      return SelectExpr::parse(a != nullptr ? a->text() : fallback,
                               prefixes);
    };

    if (op == "value-of") {
      std::string text = select_of("select", ".").string_value(context);
      if (!text.empty()) out.add_text(std::move(text));
      return;
    }
    if (op == "apply-templates") {
      const Attribute* sel = e.find_attribute("select");
      if (sel == nullptr) {
        // All children of the context node.
        if (context.kind() == NodeKind::kDocument) {
          for (const auto& c :
               static_cast<const Document&>(context).children()) {
            apply_to(*c, out);
          }
        } else if (context.kind() == NodeKind::kElement) {
          for (const auto& c :
               static_cast<const Element&>(context).children()) {
            apply_to(*c, out);
          }
        }
        return;
      }
      for (const ElementBase* target :
           SelectExpr::parse(sel->text(), prefixes).select(context)) {
        apply_to(*target, out);
      }
      return;
    }
    if (op == "if") {
      const Attribute* test = e.find_attribute("test");
      if (test == nullptr) throw TransformError("xsl:if without @test");
      if (SelectExpr::parse(test->text(), prefixes).test(context)) {
        instantiate(e, context, out);
      }
      return;
    }
    if (op == "for-each") {
      const Attribute* sel = e.find_attribute("select");
      if (sel == nullptr) {
        throw TransformError("xsl:for-each without @select");
      }
      for (const ElementBase* item :
           SelectExpr::parse(sel->text(), prefixes).select(context)) {
        instantiate(e, *item, out);  // context switches to the item
      }
      return;
    }
    if (op == "choose") {
      for (const ElementBase* branch :
           static_cast<const Element&>(e).child_elements()) {
        if (branch->name().namespace_uri != kXslUri ||
            branch->kind() != NodeKind::kElement) {
          throw TransformError("xsl:choose may only contain when/otherwise");
        }
        const auto& be = static_cast<const Element&>(*branch);
        if (branch->name().local == "when") {
          const Attribute* test = be.find_attribute("test");
          if (test == nullptr) {
            throw TransformError("xsl:when without @test");
          }
          if (SelectExpr::parse(test->text(), prefixes).test(context)) {
            instantiate(be, context, out);
            return;
          }
        } else if (branch->name().local == "otherwise") {
          instantiate(be, context, out);
          return;
        } else {
          throw TransformError("unexpected xsl:" + branch->name().local +
                               " inside xsl:choose");
        }
      }
      return;  // no branch taken
    }
    throw TransformError("unsupported instruction xsl:" + op);
  }
};

Stylesheet::Stylesheet(std::unique_ptr<Impl> impl) : impl_(std::move(impl)) {}
Stylesheet::~Stylesheet() = default;
Stylesheet::Stylesheet(Stylesheet&&) noexcept = default;
Stylesheet& Stylesheet::operator=(Stylesheet&&) noexcept = default;

Stylesheet Stylesheet::compile(const Document& stylesheet_doc,
                               const PrefixMap& prefixes) {
  auto impl = std::make_unique<Impl>();
  impl->prefixes = prefixes;
  impl->owned_doc = DocumentPtr(
      static_cast<Document*>(stylesheet_doc.clone().release()));

  const ElementBase& root = impl->owned_doc->root();
  if (root.name().namespace_uri != kXslUri ||
      root.name().local != "stylesheet" ||
      root.kind() != NodeKind::kElement) {
    throw TransformError("root element must be xsl:stylesheet");
  }
  for (const ElementBase* child :
       static_cast<const Element&>(root).child_elements()) {
    if (child->name().namespace_uri != kXslUri ||
        child->name().local != "template" ||
        child->kind() != NodeKind::kElement) {
      throw TransformError("only xsl:template is allowed at the top level");
    }
    const Attribute* match = child->find_attribute("match");
    if (match == nullptr) {
      throw TransformError("xsl:template without @match");
    }
    impl->templates.push_back(
        {parse_pattern(match->text(), prefixes),
         static_cast<const Element*>(child)});
  }
  if (impl->templates.empty()) {
    throw TransformError("stylesheet has no templates");
  }
  return Stylesheet(std::move(impl));
}

Stylesheet Stylesheet::compile(std::string_view stylesheet_xml,
                               const PrefixMap& prefixes) {
  xml::ParseOptions opt;
  opt.ignore_whitespace = true;
  return compile(*xml::parse_xml(stylesheet_xml, opt), prefixes);
}

DocumentPtr Stylesheet::apply(const Document& source) const {
  // Collect output under a scratch element, then move its children into a
  // fresh document.
  Element scratch{QName("result-fragment")};
  impl_->apply_to(source, scratch);

  auto out = std::make_unique<Document>();
  while (scratch.child_count() > 0) {
    out->add_child(scratch.remove_child(0));
  }
  return out;
}

}  // namespace bxsoap::xslt
