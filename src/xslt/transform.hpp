// A miniature XSLT engine over bXDM — the second half of the paper's
// Figure 3 claim that "any XDM-based XML processing (e.g., XPath or XSLT)
// should be able to run with binary XML with minor modification". The
// stylesheet below transforms a document identically whether the input was
// built in memory, parsed from textual XML, or decoded from BXSA frames.
//
// Supported subset (XSLT 1.0 shapes):
//
//   <xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
//     <xsl:template match="PATTERN">          pattern: "/", name, pfx:name,
//       ...literal result elements...                  or "*"
//       <xsl:value-of select="EXPR"/>         EXPR: path (xdm::Path subset),
//       <xsl:apply-templates [select="PATH"]/>      ".", or "@attr"
//       <xsl:if test="EXPR">...</xsl:if>      true when EXPR selects
//       <xsl:for-each select="PATH">...</xsl:for-each>    something
//       <xsl:choose><xsl:when test="E">...</xsl:when>
//                   <xsl:otherwise>...</xsl:otherwise></xsl:choose>
//     </xsl:template>
//   </xsl:stylesheet>
//
// Literal result elements support attribute value templates:
// out="{EXPR}text" interpolates the expression's string value.
//
// Built-in rules mirror XSLT's: document/element nodes apply templates to
// their children; text, leaf and array elements emit their string value.
// Template precedence: named match > "*" > built-in.
#pragma once

#include <memory>
#include <string>

#include "xdm/node.hpp"
#include "xdm/path.hpp"

namespace bxsoap::xslt {

inline constexpr std::string_view kXslUri =
    "http://www.w3.org/1999/XSL/Transform";

class TransformError : public Error {
 public:
  explicit TransformError(const std::string& what)
      : Error("xslt: " + what) {}
};

/// A compiled stylesheet (parse once, run many times).
class Stylesheet {
 public:
  /// Compile from a stylesheet DOCUMENT (usually xml::parse_xml output).
  /// `prefixes` maps the prefixes used inside select/match expressions.
  static Stylesheet compile(const xdm::Document& stylesheet_doc,
                            const xdm::PrefixMap& prefixes = {});

  /// Convenience: compile from stylesheet text.
  static Stylesheet compile(std::string_view stylesheet_xml,
                            const xdm::PrefixMap& prefixes = {});

  /// Apply to a source document; the result is a new document whose
  /// children are whatever the templates produced.
  xdm::DocumentPtr apply(const xdm::Document& source) const;

  ~Stylesheet();
  Stylesheet(Stylesheet&&) noexcept;
  Stylesheet& operator=(Stylesheet&&) noexcept;

 private:
  struct Impl;
  explicit Stylesheet(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

}  // namespace bxsoap::xslt
