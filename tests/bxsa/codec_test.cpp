#include <gtest/gtest.h>

#include "bxsa/decoder.hpp"
#include "bxsa/encoder.hpp"
#include "bxsa/frame.hpp"
#include "common/prng.hpp"
#include "common/vls.hpp"
#include "xdm/dump.hpp"
#include "xdm/equal.hpp"

namespace bxsoap::bxsa {
namespace {

using namespace bxsoap::xdm;

void expect_round_trip(const Node& node,
                       ByteOrder order = host_byte_order()) {
  EncodeOptions opt;
  opt.order = order;
  const auto bytes = encode(node, opt);
  const NodePtr back = decode(bytes);
  EXPECT_TRUE(deep_equal(node, *back))
      << first_difference(node, *back) << "\noriginal:\n"
      << dump(node) << "decoded:\n"
      << dump(*back);
}

TEST(BxsaCodec, EmptyElement) {
  Element e{QName("empty")};
  expect_round_trip(e);
}

TEST(BxsaCodec, DocumentWithPrologAndRoot) {
  auto doc = std::make_unique<Document>();
  doc->add_child(std::make_unique<CommentNode>("prolog"));
  doc->add_child(std::make_unique<PINode>("pi-target", "pi data"));
  doc->add_child(make_element(QName("root")));
  expect_round_trip(*doc);
}

TEST(BxsaCodec, LeafValuesAllTypes) {
  auto root = make_element(QName("r"));
  root->add_child(make_leaf<std::int8_t>(QName("i8"), -128));
  root->add_child(make_leaf<std::uint8_t>(QName("u8"), 255));
  root->add_child(make_leaf<std::int16_t>(QName("i16"), -32768));
  root->add_child(make_leaf<std::uint16_t>(QName("u16"), 65535));
  root->add_child(make_leaf<std::int32_t>(QName("i32"), -2147483648));
  root->add_child(make_leaf<std::uint32_t>(QName("u32"), 4294967295u));
  root->add_child(make_leaf<std::int64_t>(
      QName("i64"), std::numeric_limits<std::int64_t>::min()));
  root->add_child(make_leaf<std::uint64_t>(
      QName("u64"), std::numeric_limits<std::uint64_t>::max()));
  root->add_child(make_leaf<float>(QName("f32"), -0.0f));
  root->add_child(make_leaf<double>(QName("f64"), 1.7976931348623157e308));
  root->add_child(make_leaf<bool>(QName("bt"), true));
  root->add_child(make_leaf<bool>(QName("bf"), false));
  root->add_child(make_leaf<std::string>(QName("s"), std::string("hi there")));
  expect_round_trip(*root);
  expect_round_trip(*root, ByteOrder::kBig);
}

TEST(BxsaCodec, ArraysAllPackedTypes) {
  auto root = make_element(QName("r"));
  root->add_child(make_array<std::int8_t>(QName("a1"), {-1, 0, 1}));
  root->add_child(make_array<std::uint8_t>(QName("a2"), {7}));
  root->add_child(make_array<std::int16_t>(QName("a3"), {-9, 9}));
  root->add_child(make_array<std::uint16_t>(QName("a4"), {65535}));
  root->add_child(make_array<std::int32_t>(QName("a5"), {1, 2, 3, 4}));
  root->add_child(make_array<std::uint32_t>(QName("a6"), {0xDEADBEEF}));
  root->add_child(make_array<std::int64_t>(QName("a7"), {-5, 5}));
  root->add_child(make_array<std::uint64_t>(QName("a8"), {1ull << 60}));
  root->add_child(make_array<float>(QName("a9"), {1.5f, -2.5f}));
  root->add_child(make_array<double>(QName("a10"), {3.141592653589793}));
  expect_round_trip(*root);
  expect_round_trip(*root, ByteOrder::kBig);
}

TEST(BxsaCodec, EmptyArray) {
  auto root = make_element(QName("r"));
  root->add_child(make_array<double>(QName("a"), {}));
  expect_round_trip(*root);
}

TEST(BxsaCodec, MixedContent) {
  auto root = make_element(QName("r"));
  root->add_text("before ");
  auto& mid = root->add_element(QName("mid"));
  mid.add_text("inner");
  root->add_text(" after");
  root->add_child(std::make_unique<CommentNode>("note"));
  root->add_child(std::make_unique<PINode>("app", "hint"));
  expect_round_trip(*root);
}

TEST(BxsaCodec, AttributesTypedRoundTrip) {
  auto e = make_element(QName("e"));
  e->add_attribute(QName("s"), std::string("text \"quoted\""));
  e->add_attribute(QName("i"), std::int32_t{-42});
  e->add_attribute(QName("d"), 2.5);
  e->add_attribute(QName("b"), true);
  e->add_attribute(QName("u"), std::uint64_t{1} << 50);
  expect_round_trip(*e);
  expect_round_trip(*e, ByteOrder::kBig);
}

TEST(BxsaCodec, NamespacesOnElementsAndAttributes) {
  auto root = make_element(QName("urn:a", "root", "a"));
  root->declare_namespace("a", "urn:a");
  root->declare_namespace("b", "urn:b");
  root->add_attribute(QName("urn:b", "k", "b"), std::string("v"));
  auto child = make_element(QName("urn:b", "child", "b"));
  child->add_attribute(QName("urn:a", "ka", "a"), std::int32_t{1});
  auto grand = make_element(QName("urn:a", "grand", "a"));
  child->add_child(std::move(grand));
  root->add_child(std::move(child));
  auto back_doc = make_document(std::move(root));
  expect_round_trip(*back_doc);

  // Prefixes must survive (strict comparison).
  const auto bytes = encode(*back_doc);
  const NodePtr back = decode(bytes);
  EqualOptions strict;
  strict.compare_prefixes = true;
  EXPECT_TRUE(deep_equal(*back_doc, *back, strict))
      << first_difference(*back_doc, *back, strict);
}

TEST(BxsaCodec, UndeclaredNamespaceIsAutoDeclared) {
  // The model never declared urn:x; the codec must still round-trip the
  // expanded names (an auto-declaration lands in the frame's table).
  Element e{QName("urn:x", "r", "x")};
  const auto bytes = encode(e);
  const NodePtr back = decode(bytes);
  const auto* el = as<Element>(*back);
  ASSERT_NE(el, nullptr);
  EXPECT_EQ(el->name().namespace_uri, "urn:x");
  EXPECT_EQ(el->name().prefix, "x");
  ASSERT_EQ(el->namespaces().size(), 1u);
  EXPECT_EQ(el->namespaces()[0].uri, "urn:x");
}

TEST(BxsaCodec, DefaultNamespace) {
  auto root = make_element(QName("urn:d", "r"));
  root->declare_namespace("", "urn:d");
  root->add_child(make_element(QName("urn:d", "c")));
  expect_round_trip(*root);
}

TEST(BxsaCodec, SameLocalNameDifferentNamespaces) {
  auto root = make_element(QName("r"));
  root->add_child(make_element(QName("urn:a", "x", "a")));
  root->add_child(make_element(QName("urn:b", "x", "b")));
  expect_round_trip(*root);
}

TEST(BxsaCodec, DeepNesting) {
  auto root = make_element(QName("urn:deep", "l0", "d"));
  root->declare_namespace("d", "urn:deep");
  Element* cur = root.get();
  for (int i = 1; i < 40; ++i) {
    cur = &cur->add_element(
        QName("urn:deep", "l" + std::to_string(i), "d"));
  }
  cur->add_child(make_array<double>(QName("urn:deep", "payload", "d"),
                                    {1.0, 2.0, 3.0}));
  expect_round_trip(*root);
}

TEST(BxsaCodec, ItemNamePreserved) {
  auto arr = make_array<std::int32_t>(QName("a"), {1});
  arr->set_item_name("value");
  const auto bytes = encode(*arr);
  const NodePtr back = decode(bytes);
  EXPECT_EQ(static_cast<const ArrayElementBase&>(*back).item_name(), "value");
}

TEST(BxsaCodec, UnicodeNamesAndText) {
  auto root = make_element(QName("r\xC3\xA9sum\xC3\xA9"));
  root->add_text("caf\xC3\xA9 \xE2\x82\xAC");
  root->add_attribute(QName("\xCE\xB1"), std::string("\xCE\xB2"));
  expect_round_trip(*root);
}

TEST(BxsaCodec, LeadWorkloadShape) {
  // The paper's experiment payload: parallel int32 index + float64 value.
  SplitMix64 rng(42);
  std::vector<std::int32_t> idx(1000);
  std::vector<double> val(1000);
  for (int i = 0; i < 1000; ++i) {
    idx[i] = i;
    val[i] = rng.next_double(200, 320);
  }
  auto root = make_element(QName("urn:lead", "data", "lead"));
  root->declare_namespace("lead", "urn:lead");
  root->add_child(make_array<std::int32_t>(QName("urn:lead", "index", "lead"),
                                           idx));
  root->add_child(
      make_array<double>(QName("urn:lead", "values", "lead"), val));
  auto doc = make_document(std::move(root));
  expect_round_trip(*doc);
  expect_round_trip(*doc, ByteOrder::kBig);
}

// ---- alignment ---------------------------------------------------------------

TEST(BxsaAlignment, DoublePayloadIsEightByteAligned) {
  auto root = make_element(QName("x"));  // odd-sized header
  root->add_child(make_array<double>(QName("a"), {1.0, 2.0}));
  const auto bytes = encode(*root);

  // Find the payload by looking for the bit pattern of 1.0 at an aligned
  // offset.
  double one = 1.0;
  std::uint8_t pattern[8];
  std::memcpy(pattern, &one, 8);
  bool found = false;
  for (std::size_t off = 0; off + 16 <= bytes.size(); ++off) {
    if (std::memcmp(bytes.data() + off, pattern, 8) == 0) {
      EXPECT_EQ(off % 8, 0u) << "payload at offset " << off;
      found = true;
      break;
    }
  }
  EXPECT_TRUE(found);
}

TEST(BxsaAlignment, VaryingPrefixLengthsStayAligned) {
  // Sweep element-name lengths so the header preceding the array payload
  // takes every residue mod 8; alignment must hold for all of them.
  for (int pad = 0; pad < 16; ++pad) {
    auto root = make_element(QName(std::string("n") + std::string(pad, 'x')));
    root->add_child(make_array<std::int64_t>(
        QName("a"), {0x0101010101010101LL, 0x0202020202020202LL}));
    const auto bytes = encode(*root);
    const NodePtr back = decode(bytes);
    EXPECT_TRUE(deep_equal(*root, *back)) << "pad=" << pad;

    std::uint8_t pattern[8];
    const std::int64_t v = 0x0101010101010101LL;
    std::memcpy(pattern, &v, 8);
    for (std::size_t off = 0; off + 8 <= bytes.size(); ++off) {
      if (std::memcmp(bytes.data() + off, pattern, 8) == 0) {
        EXPECT_EQ(off % 8, 0u) << "pad=" << pad;
        break;
      }
    }
  }
}

TEST(BxsaAlignment, NestedArraysAllAligned) {
  auto root = make_element(QName("r"));
  for (int i = 0; i < 5; ++i) {
    auto& c = root->add_element(QName("c" + std::to_string(i)));
    c.add_child(make_array<double>(QName("a"),
                                   {1.0 + i, 2.0 + i, 3.0 + i}));
  }
  expect_round_trip(*root);
}

// ---- random property test ----------------------------------------------------

NodePtr random_tree(SplitMix64& rng, int depth) {
  const std::uint64_t pick = rng.next_below(depth > 3 ? 3 : 5);
  switch (pick) {
    case 0: {  // leaf double
      return make_leaf<double>(QName("leaf" + std::to_string(rng.next_below(5))),
                               rng.next_double(-1e10, 1e10));
    }
    case 1: {  // leaf string
      std::string s;
      for (std::uint64_t i = 0, n = rng.next_below(20); i < n; ++i) {
        s.push_back(static_cast<char>('a' + rng.next_below(26)));
      }
      return make_leaf<std::string>(QName("s"), std::move(s));
    }
    case 2: {  // array
      std::vector<std::int32_t> v(rng.next_below(30));
      for (auto& x : v) x = rng.next_i32();
      return make_array<std::int32_t>(QName("arr"), std::move(v));
    }
    default: {  // component with random children
      auto e = make_element(QName("urn:ns" + std::to_string(rng.next_below(3)),
                                  "el" + std::to_string(rng.next_below(4)),
                                  "p" + std::to_string(rng.next_below(3))));
      if (rng.next_bool()) {
        e->add_attribute(QName("k" + std::to_string(rng.next_below(3))),
                         static_cast<std::int32_t>(rng.next_i32()));
      }
      const std::uint64_t n = rng.next_below(4);
      for (std::uint64_t i = 0; i < n; ++i) {
        if (rng.next_below(5) == 0) {
          e->add_text("t" + std::to_string(rng.next_below(100)));
        } else {
          e->add_child(random_tree(rng, depth + 1));
        }
      }
      return e;
    }
  }
}

class BxsaRandomRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BxsaRandomRoundTrip, EncodeDecodeEquals) {
  SplitMix64 rng(GetParam());
  auto root = make_element(QName("root"));
  const std::uint64_t n = 1 + rng.next_below(6);
  for (std::uint64_t i = 0; i < n; ++i) {
    root->add_child(random_tree(rng, 0));
  }
  auto doc = make_document(std::move(root));
  const ByteOrder order =
      rng.next_bool() ? ByteOrder::kLittle : ByteOrder::kBig;
  EncodeOptions opt;
  opt.order = order;
  const auto bytes = encode(*doc, opt);
  const NodePtr back = decode(bytes);
  EXPECT_TRUE(deep_equal(*doc, *back)) << first_difference(*doc, *back);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BxsaRandomRoundTrip,
                         ::testing::Range<std::uint64_t>(1, 41));

// ---- malformed input ----------------------------------------------------------

TEST(BxsaDecodeErrors, EmptyInput) {
  EXPECT_THROW(decode({}), DecodeError);
}

TEST(BxsaDecodeErrors, UnknownFrameType) {
  const std::uint8_t bytes[] = {0x3F, 0x00};
  EXPECT_THROW(decode({bytes, 2}), DecodeError);
}

TEST(BxsaDecodeErrors, ReservedByteOrderBits) {
  const std::uint8_t bytes[] = {0x81, 0x00};  // BO bits = 10
  EXPECT_THROW(decode({bytes, 2}), DecodeError);
}

TEST(BxsaDecodeErrors, SizeBeyondBuffer) {
  const std::uint8_t bytes[] = {0x05, 0x7F, 'x'};  // chardata claiming 127 B
  EXPECT_THROW(decode({bytes, 3}), DecodeError);
}

TEST(BxsaDecodeErrors, TruncatedEverywhere) {
  // Chop a valid document at every byte; the decoder must throw, never
  // crash or loop.
  auto root = make_element(QName("urn:x", "r", "x"));
  root->add_attribute(QName("k"), 2.5);
  root->add_child(make_array<double>(QName("a"), {1.0, 2.0}));
  root->add_child(make_leaf<std::int32_t>(QName("n"), 5));
  const auto bytes = encode(*root);
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    EXPECT_THROW(decode({bytes.data(), cut}), DecodeError) << "cut=" << cut;
  }
}

TEST(BxsaDecodeErrors, TrailingGarbage) {
  Element e{QName("r")};
  auto bytes = encode(e);
  bytes.push_back(0x00);
  EXPECT_THROW(decode(bytes), DecodeError);
}

TEST(BxsaDecodeErrors, BadNamespaceIndex) {
  // Craft: component element frame with ns ref depth=1 index=5 but empty
  // table. Header: N1=0, name ref depth=1 index=5 name "r", N2=0, count=0.
  std::vector<std::uint8_t> body = {0x00, 0x01, 0x05, 0x01, 'r', 0x00, 0x00};
  std::vector<std::uint8_t> bytes = {0x02,
                                     static_cast<std::uint8_t>(body.size())};
  bytes.insert(bytes.end(), body.begin(), body.end());
  EXPECT_THROW(decode(bytes), DecodeError);
}

TEST(BxsaDecodeErrors, BadScopeDepth) {
  // depth=3 with only this frame's scope open.
  std::vector<std::uint8_t> body = {0x00, 0x03, 0x00, 0x01, 'r', 0x00, 0x00};
  std::vector<std::uint8_t> bytes = {0x02,
                                     static_cast<std::uint8_t>(body.size())};
  bytes.insert(bytes.end(), body.begin(), body.end());
  EXPECT_THROW(decode(bytes), DecodeError);
}

TEST(BxsaDecodeErrors, BadBoolByte) {
  // Leaf frame: N1=0, name depth=0 "b", N2=0, type=bool(11), value=7.
  std::vector<std::uint8_t> body = {0x00, 0x00, 0x01, 'b', 0x00, 11, 7};
  std::vector<std::uint8_t> bytes = {0x03,
                                     static_cast<std::uint8_t>(body.size())};
  bytes.insert(bytes.end(), body.begin(), body.end());
  EXPECT_THROW(decode(bytes), DecodeError);
}

TEST(BxsaDecodeErrors, DocumentRequiredByDecodeDocument) {
  Element e{QName("r")};
  const auto bytes = encode(e);
  EXPECT_THROW(decode_document(bytes), DecodeError);
  auto doc = make_document(make_element(QName("r")));
  EXPECT_NO_THROW(decode_document(encode(*doc)));
}

TEST(BxsaDecodeErrors, PathologicalNestingHitsDepthLimit) {
  // Hand-build 2000 nested component frames (the encoder would need a real
  // 2000-deep tree; hostile bytes do not). The decoder must refuse, not
  // exhaust the stack.
  // Innermost: empty component element <a/>.
  std::vector<std::uint8_t> frame = {0x02, 0x07, 0x00, 0x00,
                                     0x01, 'a',  0x00, 0x00};
  for (int i = 0; i < 2000; ++i) {
    // Wrap: body = N1=0, name(depth0,"a"), N2=0, count=1, child frame.
    std::vector<std::uint8_t> body = {0x00, 0x00, 0x01, 'a', 0x00, 0x01};
    body.insert(body.end(), frame.begin(), frame.end());
    std::vector<std::uint8_t> wrapped = {0x02};
    ByteWriter size_field;
    vls_write(size_field, body.size());
    wrapped.insert(wrapped.end(), size_field.bytes().begin(),
                   size_field.bytes().end());
    wrapped.insert(wrapped.end(), body.begin(), body.end());
    frame = std::move(wrapped);
  }
  EXPECT_THROW(decode(frame), DecodeError);
}

// ---- size characteristics (Table 1 sanity) ------------------------------------

TEST(BxsaSize, OverheadIsSmallForLeadWorkload) {
  std::vector<std::int32_t> idx(1000);
  std::vector<double> val(1000);
  for (int i = 0; i < 1000; ++i) {
    idx[i] = i;
    val[i] = 273.15 + i * 0.01;
  }
  auto root = make_element(QName("data"));
  root->add_child(make_array<std::int32_t>(QName("index"), idx));
  root->add_child(make_array<double>(QName("values"), val));
  auto doc = make_document(std::move(root));
  const auto bytes = encode(*doc);
  const std::size_t native = 1000 * (4 + 8);
  const double overhead =
      static_cast<double>(bytes.size() - native) / native;
  EXPECT_GT(bytes.size(), native);
  EXPECT_LT(overhead, 0.02) << "paper reports ~1.3% for BXSA";
}

TEST(BxsaSize, LeafFrameUsesCanonicalSize) {
  // A tiny leaf must not pay the 5-byte backpatched size field.
  LeafElement<std::int8_t> leaf{QName("v"), 1};
  const auto bytes = encode(leaf);
  // prefix(1) + size(1) + N1(1) + depth(1) + namelen(1)+'v' + N2(1) +
  // type(1) + value(1) = 9 bytes.
  EXPECT_EQ(bytes.size(), 9u);
}

}  // namespace
}  // namespace bxsoap::bxsa
