#include "bxsa/dict.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "bxsa/decoder.hpp"
#include "bxsa/encoder.hpp"
#include "workload/lead.hpp"
#include "xdm/dump.hpp"
#include "xdm/equal.hpp"

namespace bxsoap::bxsa {
namespace {

using namespace bxsoap::xdm;

std::vector<std::uint8_t> denc(std::span<const std::uint8_t> in,
                               SymbolDictionary& d) {
  ByteWriter w;
  dict_encode(in, d, w);
  return w.take();
}

std::vector<std::uint8_t> ddec(std::span<const std::uint8_t> in,
                               SymbolDictionary& d) {
  ByteWriter w;
  dict_decode(in, d, w);
  return w.take();
}

/// Runs `n` copies of `node` through one encoder/decoder dictionary pair
/// and checks every message round-trips to the exact plain-encoder bytes.
void expect_stream_identity(const Node& node, std::size_t n,
                            ByteOrder order = host_byte_order(),
                            DictLimits limits = {}) {
  EncodeOptions opt;
  opt.order = order;
  const auto plain = encode(node, opt);
  SymbolDictionary enc_dict(limits);
  SymbolDictionary dec_dict(limits);
  for (std::size_t i = 0; i < n; ++i) {
    const auto coded = denc(plain, enc_dict);
    const auto back = ddec(coded, dec_dict);
    ASSERT_EQ(back, plain) << "message " << i << " did not round-trip";
    const NodePtr decoded = decode(back);
    ASSERT_TRUE(deep_equal(node, *decoded)) << first_difference(node, *decoded);
  }
}

NodePtr rich_document() {
  auto doc = std::make_unique<Document>();
  doc->add_child(std::make_unique<CommentNode>("prolog comment"));
  doc->add_child(std::make_unique<PINode>("target", "pi data"));
  auto root = make_element(QName("http://example.org/app", "root", "app"));
  root->declare_namespace("app", "http://example.org/app");
  root->declare_namespace("", "http://example.org/default");
  root->add_attribute(QName("http://example.org/app", "version", "app"),
                      std::int32_t{7});
  root->add_attribute(QName("note"), std::string("an attribute VALUE"));
  auto& mid = root->add_element(QName("http://example.org/default", "mid"));
  mid.add_text("character content stays literal");
  mid.add_child(make_leaf<std::string>(QName("s"), std::string("string leaf")));
  mid.add_child(make_leaf<double>(QName("pi"), 3.14159));
  root->add_child(make_array<double>(QName("samples"), {1.5, -2.5, 3.25}));
  root->add_child(make_array<std::int16_t>(QName("shorts"), {-9, 9, 42}));
  root->add_child(make_array<std::uint8_t>(QName("blob"), {1, 2, 3}));
  doc->add_child(std::move(root));
  return doc;
}

TEST(SymbolDict, RoundTripIdentityRichDocument) {
  const NodePtr doc = rich_document();
  expect_stream_identity(*doc, 3);
  expect_stream_identity(*doc, 3, ByteOrder::kBig);
}

TEST(SymbolDict, RoundTripIdentityAllArrayTypes) {
  auto root = make_element(QName("r"));
  root->add_child(make_array<std::int8_t>(QName("a1"), {-1, 0, 1}));
  root->add_child(make_array<std::uint8_t>(QName("a2"), {7}));
  root->add_child(make_array<std::int16_t>(QName("a3"), {-9, 9}));
  root->add_child(make_array<std::uint16_t>(QName("a4"), {65535}));
  root->add_child(make_array<std::int32_t>(QName("a5"), {1, 2, 3, 4}));
  root->add_child(make_array<std::uint32_t>(QName("a6"), {0xDEADBEEF}));
  root->add_child(make_array<std::int64_t>(QName("a7"), {-5, 5}));
  root->add_child(make_array<std::uint64_t>(QName("a8"), {1ull << 60}));
  root->add_child(make_array<float>(QName("a9"), {1.5f, -2.5f}));
  root->add_child(make_array<double>(QName("a10"), {3.141592653589793}));
  root->add_child(make_array<double>(QName("empty"), {}));
  expect_stream_identity(*root, 2);
  expect_stream_identity(*root, 2, ByteOrder::kBig);
}

// Replacing name literals with short references shifts every downstream
// offset, so the array padding the plain encoder emitted must be re-derived
// rather than copied. Element names of staggered lengths in front of wide
// arrays make any copied-padding bug show up as a round-trip mismatch.
TEST(SymbolDict, ArrayPaddingRecomputedAcrossShiftedOffsets) {
  for (std::size_t pad = 0; pad < 8; ++pad) {
    auto root = make_element(QName(std::string(pad + 1, 'n')));
    root->add_child(make_array<double>(QName("d8"), {1.0, 2.0}));
    root->add_child(
        make_leaf<std::string>(QName(std::string(pad + 3, 'm')), "x"));
    root->add_child(make_array<std::int32_t>(QName("i4"), {1, 2, 3}));
    expect_stream_identity(*root, 3);
  }
}

TEST(SymbolDict, RoundTripIdentityLeadDataset) {
  const auto ds = workload::make_lead_dataset(16, 4);
  const NodePtr doc = workload::to_bxdm(ds);
  expect_stream_identity(*doc, 3);
}

/// The shape the tentpole targets: a small SOAP envelope whose bytes are
/// dominated by namespace URIs and element names, not payload.
NodePtr envelope_like_document() {
  constexpr const char* kEnvNs = "http://schemas.xmlsoap.org/soap/envelope/";
  constexpr const char* kAppNs = "http://example.org/services/smallmsg";
  auto doc = std::make_unique<Document>();
  auto env = make_element(QName(kEnvNs, "Envelope", "soapenv"));
  env->declare_namespace("soapenv", kEnvNs);
  env->add_child(make_element(QName(kEnvNs, "Header", "soapenv")));
  auto body = make_element(QName(kEnvNs, "Body", "soapenv"));
  auto op = make_element(QName(kAppNs, "GetQuote", "m"));
  op->declare_namespace("m", kAppNs);
  op->add_child(make_leaf<std::string>(QName(kAppNs, "symbol", "m"),
                                       std::string("ACME")));
  op->add_child(make_leaf<std::int32_t>(QName(kAppNs, "count", "m"), 100));
  body->add_child(std::move(op));
  env->add_child(std::move(body));
  doc->add_child(std::move(env));
  return doc;
}

TEST(SymbolDict, SteadyStateShrinksSmallMessages) {
  const NodePtr doc = envelope_like_document();
  const auto plain = encode(*doc);
  SymbolDictionary dict({});
  const auto first = denc(plain, dict);
  const auto steady = denc(plain, dict);
  // First message carries the add-tagged literals (slightly larger than
  // plain); from the second message on, every symbol is a 1-2 byte ref.
  EXPECT_LT(steady.size(), plain.size());
  EXPECT_LT(static_cast<double>(steady.size()),
            0.7 * static_cast<double>(plain.size()))
      << "steady-state " << steady.size() << " vs plain " << plain.size();
  EXPECT_GT(first.size(), steady.size());
}

TEST(SymbolDict, CountsDistinguishSymbolsFromContent) {
  auto root = make_element(QName("op"));
  root->add_child(
      make_leaf<std::string>(QName("v"), std::string("repeated value")));
  root->add_child(
      make_leaf<std::string>(QName("v"), std::string("repeated value")));
  const auto plain = encode(*root);
  SymbolDictionary dict({});
  ByteWriter w1;
  const DictCounts c1 = dict_encode(plain, dict, w1);
  // Symbols: "op", "v" (second "v" hits within the same message). The
  // repeated string VALUE is content and must not enter the table.
  EXPECT_EQ(c1.added, 2u);
  EXPECT_EQ(c1.hits, 1u);
  EXPECT_EQ(c1.misses, 0u);
  EXPECT_EQ(dict.size(), 2u);
  ByteWriter w2;
  const DictCounts c2 = dict_encode(plain, dict, w2);
  EXPECT_EQ(c2.added, 0u);
  EXPECT_EQ(c2.hits, 3u);
  EXPECT_GT(c2.bytes_saved, 0u);
}

TEST(SymbolDict, ReferenceIntoEmptyTableFaults) {
  auto root = make_element(QName("r"));
  const auto plain = encode(*root);
  SymbolDictionary enc_dict({});
  const auto first = denc(plain, enc_dict);
  const auto second = denc(plain, enc_dict);  // all refs now
  SymbolDictionary fresh({});
  EXPECT_THROW(ddec(second, fresh), DecodeError);
}

TEST(SymbolDict, AdmissionBeyondNegotiatedBoundsFaults) {
  auto root = make_element(QName("alpha"));
  root->add_child(make_leaf<std::int32_t>(QName("beta"), 1));
  const auto plain = encode(*root);
  SymbolDictionary generous({});
  const auto coded = denc(plain, generous);  // two tag-1 admissions
  SymbolDictionary strict({.max_entries = 1, .max_bytes = 16 * 1024});
  EXPECT_THROW(ddec(coded, strict), DecodeError);
}

TEST(SymbolDict, FullTableFallsBackToLiterals) {
  auto root = make_element(QName("alpha"));
  root->add_child(make_leaf<std::int32_t>(QName("beta"), 1));
  root->add_child(make_leaf<std::int32_t>(QName("gamma"), 2));
  const DictLimits tiny{.max_entries = 1, .max_bytes = 16 * 1024};
  expect_stream_identity(*root, 3, host_byte_order(), tiny);
  SymbolDictionary dict(tiny);
  const auto plain = encode(*root);
  ByteWriter w;
  const DictCounts c = dict_encode(plain, dict, w);
  EXPECT_EQ(c.added, 1u);
  EXPECT_EQ(c.misses, 2u);
  EXPECT_EQ(dict.size(), 1u);
}

TEST(SymbolDict, ByteBudgetRefusesOversizedSymbols) {
  auto root = make_element(QName(std::string(64, 'x')));
  const auto plain = encode(*root);
  SymbolDictionary dict({.max_entries = 256, .max_bytes = 8});
  ByteWriter w;
  const DictCounts c = dict_encode(plain, dict, w);
  EXPECT_EQ(c.added, 0u);
  EXPECT_EQ(c.misses, 1u);
  EXPECT_EQ(dict.bytes(), 0u);
}

TEST(SymbolDict, EncoderResetPolicySignalsEpochChange) {
  // A one-entry table and two alternating disjoint symbol sets: once the
  // table is full and a message sees more refused literals than hits, the
  // encoder must start a fresh epoch and flag it.
  auto a = make_element(QName("aaaa"));
  a->add_child(make_leaf<std::int32_t>(QName("aaab"), 1));
  auto b = make_element(QName("bbbb"));
  b->add_child(make_leaf<std::int32_t>(QName("bbbc"), 1));
  const auto plain_a = encode(*a);
  const auto plain_b = encode(*b);
  const DictLimits tiny{.max_entries = 1, .max_bytes = 16 * 1024};
  DictEncoder enc(tiny);
  DictDecoder dec(tiny);
  bool saw_reset = false;
  for (int i = 0; i < 6; ++i) {
    const auto& plain = (i % 2 == 0) ? plain_a : plain_b;
    ByteWriter coded;
    const bool reset = enc.encode(plain, coded);
    saw_reset = saw_reset || reset;
    ByteWriter back;
    dec.decode(coded.bytes(), reset, back);
    ASSERT_EQ(back.vec(), plain) << "message " << i;
  }
  EXPECT_TRUE(saw_reset);
}

TEST(SymbolDict, DictStatsCountersAccumulate) {
  obs::Registry reg;
  DictStats stats{&reg.counter("dict.entries"),
                  &reg.counter("dict.bytes_saved"), &reg.counter("dict.resets")};
  const NodePtr doc = rich_document();
  const auto plain = encode(*doc);
  DictEncoder enc({});
  DictDecoder dec({});
  for (int i = 0; i < 3; ++i) {
    ByteWriter coded;
    const bool reset = enc.encode(plain, coded, stats);
    ByteWriter back;
    dec.decode(coded.bytes(), reset, back);
  }
  EXPECT_GT(reg.counter("dict.entries").value(), 0u);
  EXPECT_GT(reg.counter("dict.bytes_saved").value(), 0u);
  EXPECT_EQ(reg.counter("dict.resets").value(), 0u);
}

TEST(SymbolDict, TruncatedCodedStreamThrowsTypedError) {
  const NodePtr doc = rich_document();
  const auto plain = encode(*doc);
  SymbolDictionary enc_dict({});
  const auto coded = denc(plain, enc_dict);
  for (std::size_t cut = 0; cut < coded.size(); ++cut) {
    SymbolDictionary dec_dict({});
    ByteWriter out;
    EXPECT_THROW(
        dict_decode(std::span(coded.data(), cut), dec_dict, out), Error)
        << "cut at " << cut;
  }
}

TEST(SymbolDict, TrailingBytesRejected) {
  auto root = make_element(QName("r"));
  auto plain = encode(*root);
  plain.push_back(0x00);
  SymbolDictionary dict({});
  ByteWriter out;
  EXPECT_THROW(dict_encode(plain, dict, out), DecodeError);
}

}  // namespace
}  // namespace bxsoap::bxsa
