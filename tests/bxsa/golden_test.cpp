// Golden-bytes tests: pin the BXSA wire format down to the byte so
// accidental format changes are caught (a serialization library's on-disk
// format is an API).
#include <gtest/gtest.h>

#include "bxsa/encoder.hpp"
#include "bxsa/decoder.hpp"
#include "common/hex.hpp"
#include "xdm/equal.hpp"
#include "xdm/node.hpp"

namespace bxsoap::bxsa {
namespace {

using namespace bxsoap::xdm;

TEST(BxsaGolden, LeafFrameBytes) {
  // leaf <v>=int8 1, little endian:
  //   prefix 0x03 (LE, leaf), size 0x07,
  //   N1=0, name{depth 0, len 1, 'v'}, N2=0, type 1 (int8), value 0x01
  LeafElement<std::int8_t> leaf{QName("v"), 1};
  EncodeOptions opt;
  opt.order = ByteOrder::kLittle;
  EXPECT_EQ(to_hex(encode(leaf, opt)), "0307000001760001" "01");
}

TEST(BxsaGolden, BigEndianPrefixBit) {
  LeafElement<std::int8_t> leaf{QName("v"), 1};
  EncodeOptions opt;
  opt.order = ByteOrder::kBig;
  const auto bytes = encode(leaf, opt);
  EXPECT_EQ(bytes[0], 0x43) << "BO bits 01 in the high bits of the prefix";
}

TEST(BxsaGolden, CharacterDataFrame) {
  // chardata "hi": prefix 0x05, size 3, count VLS 2, 'h' 'i'
  TextNode t{"hi"};
  EXPECT_EQ(to_hex(encode(t)), "0503026869");
}

TEST(BxsaGolden, CommentAndPiFrames) {
  CommentNode c{"x"};
  EXPECT_EQ(to_hex(encode(c)), "07020178");
  PINode pi{"t", "d"};
  EXPECT_EQ(to_hex(encode(pi)), "060401740164");
}

TEST(BxsaGolden, Int16LeafValueLittleEndian) {
  LeafElement<std::int16_t> leaf{QName("v"), 0x0102};
  EncodeOptions opt;
  opt.order = ByteOrder::kLittle;
  // ... type 3 (int16), value 02 01 (LE)
  EXPECT_EQ(to_hex(encode(leaf, opt)), "030800000176000" "30201");
}

TEST(BxsaGolden, ArrayFrameLayout) {
  // array <a> of 2 x int16 {1,2}, little endian, at document offset 0:
  //   prefix 0x04, size = 5-byte padded VLS,
  //   N1=0, name{0,1,'a'}, N2=0, itemtype 3, itemname{1,'d'}, count 2,
  //   padding to align offset to 2, payload 01 00 02 00
  ArrayElement<std::int16_t> arr{QName("a"), {1, 2}};
  EncodeOptions opt;
  opt.order = ByteOrder::kLittle;
  const auto bytes = encode(arr, opt);
  const std::string hex = to_hex(bytes);
  // Body = header 6 + itemtype 1 + itemname 2 + count 1 + pad 1 +
  // payload 4 = 14 bytes, in a 5-byte redundant VLS: 8e 80 80 80 00.
  EXPECT_TRUE(hex.starts_with("048e80808000")) << hex;
  // Payload is the last 4 bytes, little-endian 1 then 2, at even offset.
  EXPECT_TRUE(hex.ends_with("01000200")) << hex;
  EXPECT_EQ(bytes.size() % 2, 0u);
  EXPECT_EQ(bytes.size(), 20u);
}

TEST(BxsaGolden, GoldenBytesDecodeBack) {
  // The inverse direction: hand-written bytes decode to the expected tree.
  const std::vector<std::uint8_t> bytes = {0x03, 0x07, 0x00, 0x00, 0x01,
                                           'v',  0x00, 0x01, 0x01};
  const NodePtr node = decode(bytes);
  LeafElement<std::int8_t> expected{QName("v"), 1};
  EXPECT_TRUE(deep_equal(*node, expected));
}

}  // namespace
}  // namespace bxsoap::bxsa
