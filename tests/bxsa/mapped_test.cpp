#include "bxsa/mapped.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <unistd.h>

#include "bxsa/decoder.hpp"
#include "bxsa/encoder.hpp"
#include "xdm/node.hpp"

namespace bxsoap::bxsa {
namespace {

using namespace bxsoap::xdm;

class MappedFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("bxsoap_map_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name() +
             ".bxsa");
    values_.resize(4096);
    for (std::size_t i = 0; i < values_.size(); ++i) {
      values_[i] = 0.5 * static_cast<double>(i);
    }
    auto root = make_element(QName("data"));
    root->add_child(make_leaf<std::string>(QName("meta"),
                                           std::string("run 42")));
    root->add_child(make_array<double>(QName("values"), values_));
    doc_ = make_document(std::move(root));
    write_bxsa_file(path_, encode(*doc_));
  }
  void TearDown() override { std::filesystem::remove(path_); }

  std::filesystem::path path_;
  std::vector<double> values_;
  DocumentPtr doc_;
};

TEST_F(MappedFixture, ZeroCopyArrayAccess) {
  MappedDocument mapped(path_);
  const FrameScanner sc = mapped.scanner();
  const auto root = sc.first_child(sc.frame_at(0));
  const auto arr_frame = sc.child(*root, 1);
  ASSERT_TRUE(arr_frame);

  const std::span<const double> view =
      mapped.array_values<double>(*arr_frame);
  ASSERT_EQ(view.size(), values_.size());
  EXPECT_EQ(view[0], 0.0);
  EXPECT_EQ(view[4095], 0.5 * 4095);

  // The span points INTO the mapping — no copy happened.
  const auto* base = mapped.bytes().data();
  EXPECT_GE(reinterpret_cast<const std::uint8_t*>(view.data()), base);
  EXPECT_LT(reinterpret_cast<const std::uint8_t*>(view.data()),
            base + mapped.size());
  // And it is 8-byte aligned in memory, as mmap + frame alignment promise.
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(view.data()) % 8, 0u);
}

TEST_F(MappedFixture, WholeDocumentDecodesFromMapping) {
  MappedDocument mapped(path_);
  const NodePtr node = decode(mapped.bytes());
  EXPECT_EQ(node->kind(), NodeKind::kDocument);
}

TEST_F(MappedFixture, WrongTypeRequestThrows) {
  MappedDocument mapped(path_);
  const FrameScanner sc = mapped.scanner();
  const auto arr_frame =
      sc.child(*sc.first_child(sc.frame_at(0)), 1);
  EXPECT_THROW(mapped.array_values<std::int32_t>(*arr_frame), DecodeError);
}

TEST_F(MappedFixture, ForeignEndianRefusesInPlaceView) {
  EncodeOptions opt;
  opt.order = host_byte_order() == ByteOrder::kLittle ? ByteOrder::kBig
                                                      : ByteOrder::kLittle;
  write_bxsa_file(path_, encode(*doc_, opt));
  MappedDocument mapped(path_);
  const FrameScanner sc = mapped.scanner();
  const auto arr_frame = sc.child(*sc.first_child(sc.frame_at(0)), 1);
  EXPECT_THROW(mapped.array_values<double>(*arr_frame), DecodeError);
}

TEST_F(MappedFixture, MoveTransfersOwnership) {
  MappedDocument a(path_);
  const auto size = a.size();
  MappedDocument b(std::move(a));
  EXPECT_EQ(b.size(), size);
  EXPECT_EQ(a.size(), 0u);
}

TEST(MappedErrors, MissingFileThrows) {
  EXPECT_THROW(MappedDocument("/nonexistent/path.bxsa"), Error);
}

TEST(MappedErrors, EmptyFileThrows) {
  const auto p = std::filesystem::temp_directory_path() /
                 ("bxsoap_empty_" + std::to_string(::getpid()) + ".bxsa");
  write_bxsa_file(p, {});
  EXPECT_THROW(MappedDocument{p}, Error);
  std::filesystem::remove(p);
}

}  // namespace
}  // namespace bxsoap::bxsa
