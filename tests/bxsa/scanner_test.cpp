#include "bxsa/scanner.hpp"

#include <gtest/gtest.h>

#include "bxsa/encoder.hpp"
#include "xdm/node.hpp"

namespace bxsoap::bxsa {
namespace {

using namespace bxsoap::xdm;

class ScannerFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    auto root = make_element(QName("urn:x", "data", "x"));
    root->declare_namespace("x", "urn:x");
    root->add_attribute(QName("run"), std::int32_t{7});
    root->add_child(make_leaf<double>(QName("temp"), 287.5));
    root->add_child(make_array<std::int32_t>(QName("index"), {10, 20, 30}));
    root->add_text("note");
    root->add_child(make_array<double>(QName("values"), {1.5, 2.5}));
    doc_bytes_ = encode(*make_document(std::move(root)));
  }

  std::vector<std::uint8_t> doc_bytes_;
};

TEST_F(ScannerFixture, TopFrameIsDocument) {
  FrameScanner sc(doc_bytes_);
  const FrameInfo top = sc.frame_at(0);
  EXPECT_EQ(top.type, FrameType::kDocument);
  EXPECT_EQ(top.end(), doc_bytes_.size());
  EXPECT_EQ(sc.child_count(top), 1u);
}

TEST_F(ScannerFixture, WalkChildrenWithoutParsing) {
  FrameScanner sc(doc_bytes_);
  const FrameInfo top = sc.frame_at(0);
  const auto root = sc.first_child(top);
  ASSERT_TRUE(root.has_value());
  EXPECT_EQ(root->type, FrameType::kComponentElement);
  EXPECT_EQ(sc.element_local_name(*root), "data");
  EXPECT_EQ(sc.child_count(*root), 4u);

  auto c0 = sc.first_child(*root);
  ASSERT_TRUE(c0);
  EXPECT_EQ(c0->type, FrameType::kLeafElement);
  EXPECT_EQ(sc.element_local_name(*c0), "temp");

  auto c1 = sc.next(*c0, root->end());
  ASSERT_TRUE(c1);
  EXPECT_EQ(c1->type, FrameType::kArrayElement);
  EXPECT_EQ(sc.element_local_name(*c1), "index");

  auto c2 = sc.next(*c1, root->end());
  ASSERT_TRUE(c2);
  EXPECT_EQ(c2->type, FrameType::kCharacterData);

  auto c3 = sc.next(*c2, root->end());
  ASSERT_TRUE(c3);
  EXPECT_EQ(c3->type, FrameType::kArrayElement);
  EXPECT_EQ(sc.element_local_name(*c3), "values");

  EXPECT_FALSE(sc.next(*c3, root->end()));
}

TEST_F(ScannerFixture, NthChildSkipsSiblings) {
  FrameScanner sc(doc_bytes_);
  const FrameInfo top = sc.frame_at(0);
  const auto root = sc.first_child(top);
  const auto third = sc.child(*root, 3);
  ASSERT_TRUE(third);
  EXPECT_EQ(sc.element_local_name(*third), "values");
  EXPECT_FALSE(sc.child(*root, 4));
}

TEST_F(ScannerFixture, ZeroCopyArrayView) {
  FrameScanner sc(doc_bytes_);
  const auto root = sc.first_child(sc.frame_at(0));
  const auto idx = sc.child(*root, 1);
  ASSERT_TRUE(idx);
  const auto view = sc.array_view(*idx);
  EXPECT_EQ(view.type, AtomType::kInt32);
  ASSERT_EQ(view.count, 3u);
  // Payload points into the original buffer (zero copy) and is aligned.
  EXPECT_GE(view.payload.data(), doc_bytes_.data());
  const std::size_t payload_off =
      static_cast<std::size_t>(view.payload.data() - doc_bytes_.data());
  EXPECT_EQ(payload_off % 4, 0u);
  std::int32_t v1;
  std::memcpy(&v1, view.payload.data() + 4, 4);
  EXPECT_EQ(v1, 20);
}

TEST_F(ScannerFixture, ArrayViewOnNonArrayThrows) {
  FrameScanner sc(doc_bytes_);
  const auto root = sc.first_child(sc.frame_at(0));
  const auto leaf = sc.child(*root, 0);
  EXPECT_THROW(sc.array_view(*leaf), DecodeError);
}

TEST_F(ScannerFixture, ChildAccessOnLeafThrows) {
  FrameScanner sc(doc_bytes_);
  const auto root = sc.first_child(sc.frame_at(0));
  const auto leaf = sc.child(*root, 0);
  EXPECT_THROW(sc.first_child(*leaf), DecodeError);
  EXPECT_THROW(sc.child_count(*leaf), DecodeError);
}

TEST(Scanner, SkipsLargeArrayInConstantWork) {
  // A scanner hunting for the frame AFTER a huge array does not touch the
  // payload: frame_at + next is two prefix reads regardless of array size.
  auto root = make_element(QName("r"));
  std::vector<double> big(100000, 3.5);
  root->add_child(make_array<double>(QName("big"), std::move(big)));
  root->add_child(make_leaf<std::int32_t>(QName("after"), 99));
  const auto bytes = encode(*root);

  FrameScanner sc(bytes);
  const FrameInfo rootf = sc.frame_at(0);
  const auto bigf = sc.first_child(rootf);
  ASSERT_TRUE(bigf);
  const auto afterf = sc.next(*bigf, rootf.end());
  ASSERT_TRUE(afterf);
  EXPECT_EQ(sc.element_local_name(*afterf), "after");
}

TEST(Scanner, MalformedPrefixThrows) {
  const std::uint8_t bytes[] = {0xFF, 0x00};
  FrameScanner sc({bytes, 2});
  EXPECT_THROW(sc.frame_at(0), DecodeError);
}

}  // namespace
}  // namespace bxsoap::bxsa
