#include "bxsa/stream_reader.hpp"

#include <gtest/gtest.h>

#include "bxsa/encoder.hpp"
#include "common/prng.hpp"
#include "xdm/node.hpp"

namespace bxsoap::bxsa {
namespace {

using namespace bxsoap::xdm;

std::vector<EventKind> kinds_of(std::span<const std::uint8_t> bytes) {
  StreamReader reader(bytes);
  std::vector<EventKind> kinds;
  while (auto ev = reader.next()) {
    kinds.push_back(ev->kind);
  }
  return kinds;
}

TEST(StreamReader, EventSequenceForDocument) {
  auto root = make_element(QName("r"));
  root->add_child(make_leaf<double>(QName("t"), 1.5));
  root->add_text("hello");
  auto& mid = root->add_element(QName("m"));
  mid.add_child(std::make_unique<CommentNode>("c"));
  root->add_child(make_array<std::int32_t>(QName("a"), {1, 2}));
  auto doc = make_document(std::move(root));

  const auto bytes = encode(*doc);
  const auto kinds = kinds_of(bytes);
  const std::vector<EventKind> expected = {
      EventKind::kStartDocument, EventKind::kStartElement,
      EventKind::kLeaf,          EventKind::kText,
      EventKind::kStartElement,  EventKind::kComment,
      EventKind::kEndElement,    EventKind::kArray,
      EventKind::kEndElement,    EventKind::kEndDocument,
  };
  EXPECT_EQ(kinds, expected);
}

TEST(StreamReader, SingleLeafTopLevel) {
  LeafElement<std::int32_t> leaf{QName("n"), 7};
  const auto bytes = encode(leaf);
  StreamReader reader(bytes);
  auto ev = reader.next();
  ASSERT_TRUE(ev);
  EXPECT_EQ(ev->kind, EventKind::kLeaf);
  EXPECT_EQ(ev->name.local, "n");
  EXPECT_EQ(scalar_get<std::int32_t>(ev->value), 7);
  EXPECT_FALSE(reader.next());
}

TEST(StreamReader, LeafValuesAndAttributesTyped) {
  auto root = make_element(QName("urn:x", "r", "x"));
  root->declare_namespace("x", "urn:x");
  root->add_attribute(QName("k"), 2.5);
  root->add_child(make_leaf<std::string>(QName("s"), std::string("v")));
  const auto bytes = encode(*root);

  StreamReader reader(bytes);
  auto start = reader.next();
  ASSERT_TRUE(start);
  EXPECT_EQ(start->kind, EventKind::kStartElement);
  EXPECT_EQ(start->name.namespace_uri, "urn:x");
  EXPECT_EQ(start->name.prefix, "x");
  ASSERT_EQ(start->namespaces.size(), 1u);
  ASSERT_EQ(start->attributes.size(), 1u);
  EXPECT_EQ(scalar_get<double>(start->attributes[0].value), 2.5);

  auto leaf = reader.next();
  ASSERT_TRUE(leaf);
  EXPECT_EQ(leaf->atom, AtomType::kString);
  EXPECT_EQ(scalar_get<std::string>(leaf->value), "v");
}

TEST(StreamReader, ArrayViewIsZeroCopyAndMaterializes) {
  auto root = make_element(QName("r"));
  root->add_child(make_array<double>(QName("a"), {1.5, 2.5, 3.5}));
  const auto bytes = encode(*root);

  StreamReader reader(bytes);
  reader.next();  // StartElement
  auto arr = reader.next();
  ASSERT_TRUE(arr);
  ASSERT_EQ(arr->kind, EventKind::kArray);
  EXPECT_EQ(arr->array.count, 3u);
  EXPECT_EQ(arr->array.type, AtomType::kFloat64);
  // Payload points into the input buffer.
  EXPECT_GE(arr->array.payload.data(), bytes.data());
  EXPECT_LE(arr->array.payload.data() + arr->array.payload.size(),
            bytes.data() + bytes.size());
  EXPECT_EQ(arr->array.materialize<double>(),
            (std::vector<double>{1.5, 2.5, 3.5}));
  EXPECT_THROW(arr->array.materialize<float>(), DecodeError);
}

TEST(StreamReader, BigEndianArrayMaterializes) {
  auto root = make_element(QName("r"));
  root->add_child(make_array<std::int32_t>(QName("a"), {1, -2, 300000}));
  EncodeOptions opt;
  opt.order = ByteOrder::kBig;
  const auto bytes = encode(*root, opt);

  StreamReader reader(bytes);
  reader.next();
  auto arr = reader.next();
  ASSERT_TRUE(arr);
  EXPECT_EQ(arr->array.materialize<std::int32_t>(),
            (std::vector<std::int32_t>{1, -2, 300000}));
}

TEST(StreamReader, NamespaceScopesAcrossDepth) {
  auto root = make_element(QName("urn:a", "r", "a"));
  root->declare_namespace("a", "urn:a");
  auto& mid = root->add_element(QName("urn:a", "m", "a"));
  mid.add_child(make_leaf<std::int32_t>(QName("urn:a", "v", "a"), 9));
  const auto bytes = encode(*root);

  StreamReader reader(bytes);
  reader.next();
  auto mid_ev = reader.next();
  ASSERT_TRUE(mid_ev);
  EXPECT_EQ(mid_ev->name.namespace_uri, "urn:a")
      << "child resolves through the parent frame's symbol table";
  auto leaf_ev = reader.next();
  ASSERT_TRUE(leaf_ev);
  EXPECT_EQ(leaf_ev->name.namespace_uri, "urn:a");
}

TEST(StreamReader, SkipChildren) {
  auto root = make_element(QName("r"));
  auto& big = root->add_element(QName("big"));
  for (int i = 0; i < 100; ++i) {
    big.add_child(make_array<double>(QName("a"), std::vector<double>(100, i)));
  }
  root->add_child(make_leaf<std::int32_t>(QName("after"), 1));
  auto doc = make_document(std::move(root));
  const auto bytes = encode(*doc);

  StreamReader reader(bytes);
  EXPECT_EQ(reader.next()->kind, EventKind::kStartDocument);
  EXPECT_EQ(reader.next()->kind, EventKind::kStartElement);  // r
  auto big_ev = reader.next();
  ASSERT_EQ(big_ev->kind, EventKind::kStartElement);
  EXPECT_EQ(big_ev->name.local, "big");
  reader.skip_children();
  EXPECT_EQ(reader.next()->kind, EventKind::kEndElement);  // big
  auto after = reader.next();
  ASSERT_TRUE(after);
  EXPECT_EQ(after->kind, EventKind::kLeaf);
  EXPECT_EQ(after->name.local, "after");
}

TEST(StreamReader, DepthTracksScopes) {
  auto root = make_element(QName("r"));
  root->add_element(QName("c"));
  auto doc = make_document(std::move(root));
  const auto bytes = encode(*doc);
  StreamReader reader(bytes);
  EXPECT_EQ(reader.depth(), 0u);
  reader.next();  // StartDocument
  EXPECT_EQ(reader.depth(), 1u);
  reader.next();  // StartElement r
  EXPECT_EQ(reader.depth(), 2u);
  reader.next();  // StartElement c
  EXPECT_EQ(reader.depth(), 3u);
  reader.next();  // EndElement c
  EXPECT_EQ(reader.depth(), 2u);
}

TEST(StreamReader, AgreesWithTreeDecoderOnRandomDocs) {
  SplitMix64 rng(31);
  for (int trial = 0; trial < 30; ++trial) {
    auto root = make_element(QName("root"));
    const std::uint64_t n = rng.next_below(10);
    for (std::uint64_t i = 0; i < n; ++i) {
      switch (rng.next_below(3)) {
        case 0:
          root->add_child(make_leaf<double>(QName("d"), rng.next_double01()));
          break;
        case 1: {
          std::vector<std::int32_t> v(rng.next_below(50));
          for (auto& x : v) x = rng.next_i32();
          root->add_child(make_array<std::int32_t>(QName("a"), std::move(v)));
          break;
        }
        default:
          root->add_text("t" + std::to_string(i));
      }
    }
    const auto bytes = encode(*root);

    // Count leaves/arrays/text via streaming and via the tree.
    StreamReader reader(bytes);
    int stream_items = 0;
    while (auto ev = reader.next()) {
      if (ev->kind == EventKind::kLeaf || ev->kind == EventKind::kArray ||
          ev->kind == EventKind::kText) {
        ++stream_items;
      }
    }
    EXPECT_EQ(stream_items, static_cast<int>(n));
  }
}

TEST(StreamReaderErrors, TruncatedInputThrows) {
  auto root = make_element(QName("r"));
  root->add_child(make_array<double>(QName("a"), {1.0, 2.0}));
  auto bytes = encode(*root);
  bytes.resize(bytes.size() / 2);
  StreamReader reader(bytes);
  EXPECT_THROW(
      {
        while (reader.next()) {
        }
      },
      DecodeError);
}

TEST(StreamReaderErrors, TrailingGarbageThrows) {
  LeafElement<std::int32_t> leaf{QName("n"), 7};
  auto bytes = encode(leaf);
  bytes.push_back(0xAA);
  StreamReader reader(bytes);
  EXPECT_THROW(reader.next(), DecodeError);
}

}  // namespace
}  // namespace bxsoap::bxsa
