#include "bxsa/stream_writer.hpp"

#include <gtest/gtest.h>

#include "bxsa/decoder.hpp"
#include "bxsa/encoder.hpp"
#include "common/prng.hpp"
#include "xdm/equal.hpp"

namespace bxsoap::bxsa {
namespace {

using namespace bxsoap::xdm;

TEST(StreamWriter, ProducesDecodableDocument) {
  StreamWriter w;
  w.start_document();
  const NamespaceDecl ns[] = {{"x", "urn:x"}};
  const Attribute attrs[] = {{QName("run"), std::int32_t{7}}};
  w.start_element(QName("urn:x", "data", "x"), ns, attrs);
  w.leaf(QName("t"), 287.5);
  const std::vector<std::int32_t> idx = {1, 2, 3};
  w.array(QName("idx"), std::span<const std::int32_t>(idx));
  w.text("note");
  w.comment("c");
  w.pi("app", "hint");
  w.end_element();
  w.end_document();
  const auto bytes = w.take();

  const DocumentPtr doc = decode_document(bytes);
  const auto& root = static_cast<const Element&>(doc->root());
  EXPECT_EQ(root.name().namespace_uri, "urn:x");
  EXPECT_EQ(root.find_attribute("run")->text(), "7");
  EXPECT_EQ(root.child_count(), 5u);
  const auto* leaf = dynamic_cast<const LeafElement<double>*>(
      root.find_child("t"));
  ASSERT_NE(leaf, nullptr);
  EXPECT_EQ(leaf->get(), 287.5);
  const auto* arr = dynamic_cast<const ArrayElement<std::int32_t>*>(
      root.find_child("idx"));
  ASSERT_NE(arr, nullptr);
  EXPECT_EQ(arr->values(), idx);
}

TEST(StreamWriter, MatchesTreeEncoderSemantics) {
  // Same logical document via StreamWriter and via the tree encoder must
  // decode to deep-equal trees (bytes may differ: streaming pads fields).
  auto root = make_element(QName("urn:a", "r", "a"));
  root->declare_namespace("a", "urn:a");
  root->add_child(make_leaf<std::string>(QName("s"), std::string("v")));
  root->add_child(make_array<double>(QName("d"), {1.5, 2.5}));
  auto doc = make_document(std::move(root));
  const auto tree_bytes = encode(*doc);

  StreamWriter w;
  w.start_document();
  const NamespaceDecl ns[] = {{"a", "urn:a"}};
  w.start_element(QName("urn:a", "r", "a"), ns);
  w.leaf(QName("s"), std::string("v"));
  const std::vector<double> vals = {1.5, 2.5};
  w.array(QName("d"), std::span<const double>(vals));
  w.end_element();
  w.end_document();
  const auto stream_bytes = w.take();

  const NodePtr via_tree = decode(tree_bytes);
  const NodePtr via_stream = decode(stream_bytes);
  EXPECT_TRUE(deep_equal(*via_tree, *via_stream))
      << first_difference(*via_tree, *via_stream);
}

TEST(StreamWriter, ArrayAlignmentHolds) {
  StreamWriter w;
  w.start_document();
  w.start_element(QName("padme"));
  const std::vector<double> vals = {1.0, 2.0};
  w.array(QName("a"), std::span<const double>(vals));
  w.end_element();
  w.end_document();
  const auto bytes = w.take();

  double one = 1.0;
  std::uint8_t pattern[8];
  std::memcpy(pattern, &one, 8);
  for (std::size_t off = 0; off + 8 <= bytes.size(); ++off) {
    if (std::memcmp(bytes.data() + off, pattern, 8) == 0) {
      EXPECT_EQ(off % 8, 0u);
      return;
    }
  }
  FAIL() << "payload not found";
}

TEST(StreamWriter, BigEndianOutputDecodes) {
  StreamWriter w(ByteOrder::kBig);
  w.start_element(QName("r"));
  const std::vector<std::int16_t> vals = {-1, 256};
  w.array(QName("a"), std::span<const std::int16_t>(vals));
  w.leaf(QName("v"), 3.5f);
  w.end_element();
  const auto bytes = w.take();

  const NodePtr node = decode(bytes);
  const auto& root = static_cast<const Element&>(*node);
  EXPECT_EQ(dynamic_cast<const ArrayElement<std::int16_t>*>(
                root.find_child("a"))
                ->values(),
            vals);
  EXPECT_EQ(dynamic_cast<const LeafElement<float>*>(root.find_child("v"))
                ->get(),
            3.5f);
}

TEST(StreamWriter, TopLevelElementWithoutDocument) {
  StreamWriter w;
  w.start_element(QName("bare"));
  w.leaf(QName("v"), true);
  w.end_element();
  const auto bytes = w.take();
  const NodePtr node = decode(bytes);
  EXPECT_EQ(node->kind(), NodeKind::kElement);
}

TEST(StreamWriter, NamespaceInheritanceAcrossLevels) {
  StreamWriter w;
  const NamespaceDecl ns[] = {{"p", "urn:p"}};
  w.start_element(QName("urn:p", "outer", "p"), ns);
  w.start_element(QName("urn:p", "inner", "p"));  // resolves via parent
  w.end_element();
  w.end_element();
  const auto bytes = w.take();
  const NodePtr node = decode(bytes);
  const auto& outer = static_cast<const Element&>(*node);
  const ElementBase* inner = outer.find_child("inner");
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->name().namespace_uri, "urn:p");
  EXPECT_EQ(inner->name().prefix, "p");
}

TEST(StreamWriterErrors, MisnestingDetected) {
  {
    StreamWriter w;
    EXPECT_THROW(w.end_element(), EncodeError);
  }
  {
    StreamWriter w;
    w.start_document();
    EXPECT_THROW(w.end_element(), EncodeError) << "document open, not element";
  }
  {
    StreamWriter w;
    w.start_element(QName("r"));
    EXPECT_THROW(w.end_document(), EncodeError);
  }
  {
    StreamWriter w;
    w.start_element(QName("r"));
    w.start_element(QName("c"));
    EXPECT_THROW(w.take(), EncodeError) << "unclosed scopes";
  }
  {
    StreamWriter w;
    w.start_document();
    EXPECT_THROW(w.start_document(), EncodeError);
  }
}

TEST(StreamWriterErrors, UseAfterEndDocumentThrows) {
  StreamWriter w;
  w.start_document();
  w.end_document();
  EXPECT_THROW(w.text("late"), EncodeError);
}

TEST(StreamWriter, LargeStreamedDatasetRoundTrips) {
  SplitMix64 rng(17);
  StreamWriter w;
  w.start_document();
  w.start_element(QName("chunks"));
  std::vector<double> all;
  for (int chunk = 0; chunk < 50; ++chunk) {
    std::vector<double> v(1000);
    for (auto& x : v) x = rng.next_double01();
    all.insert(all.end(), v.begin(), v.end());
    w.array(QName("chunk" + std::to_string(chunk)),
            std::span<const double>(v));
  }
  w.end_element();
  w.end_document();
  const auto bytes = w.take();

  const DocumentPtr doc = decode_document(bytes);
  const auto& root = static_cast<const Element&>(doc->root());
  EXPECT_EQ(root.child_count(), 50u);
  std::vector<double> gathered;
  for (const ElementBase* c : root.child_elements()) {
    const auto& arr = static_cast<const ArrayElement<double>&>(*c);
    gathered.insert(gathered.end(), arr.values().begin(), arr.values().end());
  }
  EXPECT_EQ(gathered, all);
}

}  // namespace
}  // namespace bxsoap::bxsa
