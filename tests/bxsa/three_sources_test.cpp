// The paper's §5.1 claim, demonstrated end to end: "any XDM-based XML
// processing (e.g. XPath or XSLT) should be able to run with binary XML
// with minor modification". The SAME compiled path query runs over the
// same logical document arriving three ways — built in memory, parsed from
// textual XML, decoded from BXSA — and returns identical results.
#include <gtest/gtest.h>

#include "bxsa/decoder.hpp"
#include "bxsa/encoder.hpp"
#include "xdm/equal.hpp"
#include "xdm/path.hpp"
#include "xml/parser.hpp"
#include "xml/retype.hpp"
#include "xml/writer.hpp"

namespace bxsoap::bxsa {
namespace {

using namespace bxsoap::xdm;

DocumentPtr build_catalog() {
  auto root = make_element(QName("urn:obs", "observations", "o"));
  root->declare_namespace("o", "urn:obs");
  for (int station = 1; station <= 3; ++station) {
    auto& s = root->add_element(QName("urn:obs", "station", "o"));
    s.add_attribute(QName("id"), static_cast<std::int32_t>(station));
    s.add_child(make_leaf<double>(QName("urn:obs", "temp", "o"),
                                  280.0 + station));
    s.add_child(make_array<std::int32_t>(QName("urn:obs", "hours", "o"),
                                         {station, station * 2}));
  }
  return make_document(std::move(root));
}

class ThreeSources : public ::testing::Test {
 protected:
  void SetUp() override {
    in_memory_ = build_catalog();
    // Source 2: through textual XML.
    xml::WriteOptions opt;
    opt.emit_type_info = true;
    from_xml_ = xml::retype(*xml::parse_xml(xml::write_xml(*in_memory_, opt)));
    // Source 3: through BXSA.
    from_bxsa_holder_ = encode(*in_memory_);
    auto node = decode(from_bxsa_holder_);
    from_bxsa_ = DocumentPtr(static_cast<Document*>(node.release()));

    prefixes_["o"] = "urn:obs";
  }

  std::vector<const Node*> sources() const {
    return {in_memory_.get(), from_xml_.get(), from_bxsa_.get()};
  }

  DocumentPtr in_memory_, from_xml_, from_bxsa_;
  std::vector<std::uint8_t> from_bxsa_holder_;
  PrefixMap prefixes_;
};

TEST_F(ThreeSources, DocumentsAreDeepEqual) {
  EXPECT_TRUE(deep_equal(*in_memory_, *from_xml_))
      << first_difference(*in_memory_, *from_xml_);
  EXPECT_TRUE(deep_equal(*in_memory_, *from_bxsa_))
      << first_difference(*in_memory_, *from_bxsa_);
}

TEST_F(ThreeSources, SameQuerySameAnswers) {
  const Path q = Path::compile("//o:station[@id='2']/o:temp", prefixes_);
  for (const Node* src : sources()) {
    auto r = q.select(*src);
    ASSERT_EQ(r.size(), 1u);
    ASSERT_EQ(r[0]->kind(), NodeKind::kLeafElement);
    EXPECT_EQ(scalar_get<double>(
                  static_cast<const LeafElementBase*>(r[0])->scalar()),
              282.0);
  }
}

TEST_F(ThreeSources, PositionAndWildcardQueries) {
  for (const char* expr : {"/o:observations/o:station[3]",
                           "//o:station/*", "//o:hours"}) {
    const Path q = Path::compile(expr, prefixes_);
    const auto a = q.select(*in_memory_);
    const auto b = q.select(*from_xml_);
    const auto c = q.select(*from_bxsa_);
    EXPECT_EQ(a.size(), b.size()) << expr;
    EXPECT_EQ(a.size(), c.size()) << expr;
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i]->name(), b[i]->name()) << expr;
      EXPECT_EQ(a[i]->name(), c[i]->name()) << expr;
    }
  }
}

TEST_F(ThreeSources, ValuePredicateOverTypedLeaves) {
  const Path q = Path::compile("//o:station[temp='283']", prefixes_);
  for (const Node* src : sources()) {
    auto r = q.select(*src);
    ASSERT_EQ(r.size(), 1u) << "typed leaf renders 283 identically";
    EXPECT_EQ(r[0]->find_attribute("id")->text(), "3");
  }
}

}  // namespace
}  // namespace bxsoap::bxsa
