#include "bxsa/transcode.hpp"

#include <gtest/gtest.h>

#include "bxsa/decoder.hpp"
#include "bxsa/encoder.hpp"
#include "common/prng.hpp"
#include "xdm/equal.hpp"
#include "xml/parser.hpp"

namespace bxsoap::bxsa {
namespace {

using namespace bxsoap::xdm;

DocumentPtr lead_document(int n) {
  SplitMix64 rng(5);
  std::vector<std::int32_t> idx(n);
  std::vector<double> val(n);
  for (int i = 0; i < n; ++i) {
    idx[i] = i;
    val[i] = rng.next_double(200, 320);
  }
  auto root = make_element(QName("urn:lead", "data", "lead"));
  root->declare_namespace("lead", "urn:lead");
  root->add_child(make_array<std::int32_t>(QName("urn:lead", "index", "lead"),
                                           std::move(idx)));
  root->add_child(make_array<double>(QName("urn:lead", "values", "lead"),
                                     std::move(val)));
  return make_document(std::move(root));
}

TEST(Transcode, BxsaToXmlToBxsaPreservesModel) {
  auto doc = lead_document(100);
  const auto bxsa1 = encode(*doc);
  const std::string xml = bxsa_to_xml(bxsa1);
  const auto bxsa2 = xml_to_bxsa(xml);
  const NodePtr back = decode(bxsa2);
  EXPECT_TRUE(deep_equal(*doc, *back)) << first_difference(*doc, *back);
}

TEST(Transcode, BxsaToXmlToBxsaBytesAreStable) {
  // After one lap the binary form must be a fixed point: converting to XML
  // and back reproduces the identical byte sequence ("converted to textual
  // XML, and then back to binary XML without change").
  auto doc = lead_document(32);
  const auto bxsa1 = encode(*doc);
  const auto bxsa2 = xml_to_bxsa(bxsa_to_xml(bxsa1));
  const auto bxsa3 = xml_to_bxsa(bxsa_to_xml(bxsa2));
  EXPECT_EQ(bxsa2, bxsa3);
}

TEST(Transcode, XmlToBxsaToXmlIsStableAfterOneLap) {
  // Textual direction: the first lap may normalize float digits (full
  // precision rule); after that the text must be a fixed point.
  const std::string original =
      "<data><a xmlns:xsi=\"http://www.w3.org/2001/XMLSchema-instance\" "
      "xmlns:xsd=\"http://www.w3.org/2001/XMLSchema\" "
      "xsi:type=\"xsd:double\">0.10000000000000001</a>"
      "<plain attr=\"v\">text</plain></data>";
  const std::string once = bxsa_to_xml(xml_to_bxsa(original));
  const std::string twice = bxsa_to_xml(xml_to_bxsa(once));
  EXPECT_EQ(once, twice);
  // And the double survives as a VALUE even though its digits changed.
  EXPECT_NE(once.find("0.1<"), std::string::npos);
}

TEST(Transcode, UntypedXmlSurvives) {
  const std::string xml =
      "<r a=\"1\"><c>text &amp; more</c><!--note--><?pi data?></r>";
  auto direct = xml::parse_xml(xml);
  const auto bxsa = xml_to_bxsa(xml);
  const NodePtr back = decode(bxsa);
  EXPECT_TRUE(deep_equal(*direct, *back)) << first_difference(*direct, *back);
}

TEST(Transcode, MixedContentAndCommentsSurviveBothDirections) {
  auto root = make_element(QName("r"));
  root->add_text("a ");
  root->add_child(std::make_unique<CommentNode>(" c "));
  auto& e = root->add_element(QName("e"));
  e.add_text("inner");
  root->add_child(std::make_unique<PINode>("app", "x=1"));
  root->add_child(make_leaf<std::string>(QName("s"), std::string("<&>")));
  auto doc = make_document(std::move(root));

  const auto bxsa2 = xml_to_bxsa(bxsa_to_xml(encode(*doc)));
  const NodePtr back = decode(bxsa2);
  EXPECT_TRUE(deep_equal(*doc, *back)) << first_difference(*doc, *back);
}

TEST(Transcode, BigEndianBxsaTranscodesToo) {
  auto doc = lead_document(16);
  EncodeOptions opt;
  opt.order = ByteOrder::kBig;
  const auto bxsa_be = encode(*doc, opt);
  const std::string xml = bxsa_to_xml(bxsa_be);
  const auto bxsa_le = xml_to_bxsa(xml, ByteOrder::kLittle);
  const NodePtr back = decode(bxsa_le);
  EXPECT_TRUE(deep_equal(*doc, *back)) << first_difference(*doc, *back);
}

}  // namespace
}  // namespace bxsoap::bxsa
