#include "bxsa/validate.hpp"

#include <gtest/gtest.h>

#include "bxsa/encoder.hpp"
#include "xdm/node.hpp"

namespace bxsoap::bxsa {
namespace {

using namespace bxsoap::xdm;

TEST(Validate, CountsStructure) {
  auto root = make_element(QName("r"));
  root->add_child(make_leaf<double>(QName("t"), 1.5));
  root->add_child(make_array<std::int32_t>(QName("a"), {1, 2, 3}));
  auto& mid = root->add_element(QName("m"));
  mid.add_text("x");
  mid.add_child(make_array<double>(QName("b"), {1.0}));
  auto doc = make_document(std::move(root));

  const ValidationReport r = validate(encode(*doc));
  EXPECT_TRUE(r.valid);
  EXPECT_TRUE(r.error.empty());
  // frames: document, r, leaf, array a, m, text, array b = 7
  EXPECT_EQ(r.frames, 7u);
  EXPECT_EQ(r.elements, 5u);
  EXPECT_EQ(r.arrays, 2u);
  EXPECT_EQ(r.array_values, 4u);
  EXPECT_GE(r.max_depth, 3u);
}

TEST(Validate, RejectsGarbageWithoutThrowing) {
  const std::uint8_t junk[] = {0xFF, 0x13, 0x00};
  const ValidationReport r = validate({junk, 3});
  EXPECT_FALSE(r.valid);
  EXPECT_FALSE(r.error.empty());
}

TEST(Validate, RejectsTruncation) {
  Element e{QName("r")};
  auto bytes = encode(e);
  bytes.pop_back();
  EXPECT_FALSE(validate(bytes).valid);
}

TEST(Validate, EmptyInputInvalid) {
  EXPECT_FALSE(validate({}).valid);
}

}  // namespace
}  // namespace bxsoap::bxsa
