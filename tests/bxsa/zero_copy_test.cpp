// Differential coverage for the zero-copy decode path: decode_message must
// produce trees deep_equal to the copying decode for every packed type and
// both byte orders, arrays must actually be views (no copy) exactly when
// the wire order matches the host, encode_append must be byte-identical to
// encode() from any buffer origin, and view-backed nodes must keep the wire
// buffer alive however they are moved around.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <utility>
#include <vector>

#include "bxsa/decoder.hpp"
#include "bxsa/encoder.hpp"
#include "common/buffer_pool.hpp"
#include "xdm/equal.hpp"
#include "xdm/node.hpp"

namespace bxsoap::bxsa {
namespace {

using namespace bxsoap::xdm;

template <typename T>
std::vector<T> sample_values(std::size_t n) {
  std::vector<T> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<T>(static_cast<long long>(i * 37 % 120) - 40);
  }
  return v;
}

/// A document that surrounds the array with namespaces, attributes, leaves
/// and mixed content, so the differential check also covers the header
/// paths around the array payload.
template <typename T>
DocumentPtr sample_document(std::size_t n) {
  auto root = make_element(QName("urn:test", "data", "t"));
  root->declare_namespace("t", "urn:test");
  root->add_attribute(QName("rows"), std::int32_t{7});
  root->add_child(make_leaf<std::string>(QName("label"), "zero-copy"));
  auto arr = make_array<T>(QName("urn:test", "payload", "t"),
                           sample_values<T>(n));
  arr->set_item_name("d");
  arr->add_attribute(QName("units"), std::string("K"));
  root->add_child(std::move(arr));
  root->add_text("trailing mixed content");
  return make_document(std::move(root));
}

const ArrayElementBase* find_array(const Document& doc) {
  const auto& root = static_cast<const Element&>(doc.root());
  const ElementBase* child = root.find_child("payload");
  return dynamic_cast<const ArrayElementBase*>(child);
}

template <typename T>
void check_type(ByteOrder order, std::size_t n) {
  SCOPED_TRACE(std::string("order=") +
               (order == ByteOrder::kLittle ? "little" : "big") +
               " n=" + std::to_string(n));
  const DocumentPtr original = sample_document<T>(n);
  EncodeOptions opt;
  opt.order = order;
  const std::vector<std::uint8_t> bytes = encode(*original, opt);

  // Copying reference path.
  const DocumentPtr copied = decode_document(bytes);
  // Zero-copy path over a shared wire buffer.
  DecodedMessage msg = decode_message(SharedBuffer::adopt(bytes));

  EXPECT_TRUE(deep_equal(*original, *copied));
  ASSERT_TRUE(deep_equal(*copied, *msg.document));

  const auto* arr =
      dynamic_cast<const ArrayElement<T>*>(find_array(*msg.document));
  ASSERT_NE(arr, nullptr);
  if (order == host_byte_order() && n != 0) {
    EXPECT_TRUE(arr->is_view());
    // A real view: the items point INTO the wire buffer.
    const auto wire = msg.wire.bytes();
    const auto* p = reinterpret_cast<const std::uint8_t*>(arr->view().data());
    EXPECT_GE(p, wire.data());
    EXPECT_LE(p + arr->view().size() * sizeof(T), wire.data() + wire.size());
  } else {
    // Endian mismatch (or empty array): the decoder must copy.
    EXPECT_FALSE(arr->is_view());
  }
  EXPECT_EQ(arr->view().size(), n);
  const std::vector<T> expected = sample_values<T>(n);
  EXPECT_TRUE(std::equal(expected.begin(), expected.end(),
                         arr->view().begin(), arr->view().end()));
}

template <typename T>
void check_type_all_orders() {
  for (const ByteOrder order : {ByteOrder::kLittle, ByteOrder::kBig}) {
    check_type<T>(order, 257);  // odd count: exercises padding after it
    check_type<T>(order, 0);
  }
}

TEST(ZeroCopyDecode, Int8) { check_type_all_orders<std::int8_t>(); }
TEST(ZeroCopyDecode, UInt8) { check_type_all_orders<std::uint8_t>(); }
TEST(ZeroCopyDecode, Int16) { check_type_all_orders<std::int16_t>(); }
TEST(ZeroCopyDecode, UInt16) { check_type_all_orders<std::uint16_t>(); }
TEST(ZeroCopyDecode, Int32) { check_type_all_orders<std::int32_t>(); }
TEST(ZeroCopyDecode, UInt32) { check_type_all_orders<std::uint32_t>(); }
TEST(ZeroCopyDecode, Int64) { check_type_all_orders<std::int64_t>(); }
TEST(ZeroCopyDecode, UInt64) { check_type_all_orders<std::uint64_t>(); }
TEST(ZeroCopyDecode, Float32) { check_type_all_orders<float>(); }
TEST(ZeroCopyDecode, Float64) { check_type_all_orders<double>(); }

// encode_append from any buffer origin (aligned or odd) must emit payload
// bytes identical to a from-scratch encode: alignment is origin-relative.
TEST(ZeroCopyDecode, EncodeAppendIsOriginIndependent) {
  const DocumentPtr doc = sample_document<double>(33);
  const std::vector<std::uint8_t> reference = encode(*doc);
  for (std::size_t origin = 0; origin < 10; ++origin) {
    SCOPED_TRACE("origin=" + std::to_string(origin));
    ByteWriter w;
    for (std::size_t i = 0; i < origin; ++i) {
      w.write_u8(static_cast<std::uint8_t>(0xC0 + i));  // fake header bytes
    }
    encode_append(*doc, w);
    const std::vector<std::uint8_t> whole = w.take();
    ASSERT_EQ(whole.size(), origin + reference.size());
    EXPECT_EQ(0, std::memcmp(whole.data() + origin, reference.data(),
                             reference.size()));
    // And the suffix decodes on its own, views included.
    std::vector<std::uint8_t> payload(whole.begin() + origin, whole.end());
    DecodedMessage msg = decode_message(SharedBuffer::adopt(std::move(payload)));
    EXPECT_TRUE(deep_equal(*doc, *msg.document));
  }
}

// A view-backed node moved out of its document must keep the wire buffer
// (and therefore its items) alive on its own.
TEST(ZeroCopyDecode, MovedNodeKeepsWireAlive) {
  BufferPool pool;
  const DocumentPtr doc = sample_document<double>(512);
  std::vector<std::uint8_t> bytes = encode(*doc);

  NodePtr stolen;
  {
    DecodedMessage msg =
        decode_message(SharedBuffer::adopt(std::move(bytes), &pool));
    auto& root = static_cast<Element&>(msg.document->root());
    // "payload" is the second child of the root.
    stolen = root.remove_child(1);
    // msg (document + wire reference) dies here.
  }
  EXPECT_EQ(pool.pooled_buffers(), 0u);  // the view still pins the buffer
  auto* arr = dynamic_cast<ArrayElement<double>*>(stolen.get());
  ASSERT_NE(arr, nullptr);
  if (arr->is_view()) {
    const std::vector<double> expected = sample_values<double>(512);
    EXPECT_TRUE(std::equal(expected.begin(), expected.end(),
                           arr->view().begin(), arr->view().end()));
  }
  stolen.reset();
  EXPECT_EQ(pool.pooled_buffers(), 1u);  // last reference recycled it
}

TEST(ZeroCopyDecode, ValuesAccessorContract) {
  const DocumentPtr doc = sample_document<std::int32_t>(64);
  const std::vector<std::uint8_t> bytes = encode(*doc);
  DecodedMessage msg = decode_message(SharedBuffer::adopt(bytes));
  auto& root = static_cast<Element&>(msg.document->root());
  auto* arr = dynamic_cast<ArrayElement<std::int32_t>*>(
      const_cast<ElementBase*>(root.find_child("payload")));
  ASSERT_NE(arr, nullptr);
  ASSERT_TRUE(arr->is_view());

  // Const owned-storage access on a view is a contract violation.
  const auto* carr = arr;
  EXPECT_THROW((void)carr->values(), Error);

  // clone() always owns.
  NodePtr copy = arr->clone();
  auto* cloned = dynamic_cast<ArrayElement<std::int32_t>*>(copy.get());
  ASSERT_NE(cloned, nullptr);
  EXPECT_FALSE(cloned->is_view());
  EXPECT_TRUE(deep_equal(*arr, *cloned));

  // Mutable access materializes, detaching from the wire buffer.
  arr->values().push_back(999);
  EXPECT_FALSE(arr->is_view());
  EXPECT_EQ(arr->view().size(), 65u);
  EXPECT_EQ(arr->view()[64], 999);
}

// The copying and zero-copy paths must agree on hostile input too: both
// reject a truncated array payload.
TEST(ZeroCopyDecode, TruncatedArrayRejectedOnBothPaths) {
  const DocumentPtr doc = sample_document<double>(128);
  std::vector<std::uint8_t> bytes = encode(*doc);
  bytes.resize(bytes.size() - 64);
  EXPECT_THROW((void)decode_document(bytes), DecodeError);
  EXPECT_THROW((void)decode_message(SharedBuffer::adopt(bytes)), DecodeError);
}

}  // namespace
}  // namespace bxsoap::bxsa
