// Chaos against the negotiated-compression layer: corrupt transform ids,
// compressed frames on channels that never negotiated any transform,
// truncated compressed chunks, and decompressed-size bombs. The contract
// is the same strict validation as the rest of BXTP: every violation cuts
// exactly the offending connection, allocates nothing the declared sizes
// ask for, and the server keeps serving everyone else.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/lzss.hpp"
#include "services/verification.hpp"
#include "soap/engine.hpp"
#include "transport/bindings.hpp"
#include "transport/compress.hpp"
#include "transport/framing.hpp"
#include "transport/server.hpp"
#include "transport/stream.hpp"
#include "workload/lead.hpp"

namespace bxsoap::transport {
namespace {

using namespace bxsoap::soap;

void echo_stream(StreamRequest& req, ResponseWriter& resp) {
  while (auto c = req.next_chunk()) resp.write_chunk(std::move(*c));
  resp.finish();
}

class CompressChaos : public ::testing::TestWithParam<ConcurrencyModel> {
 protected:
  static std::unique_ptr<SoapServer> start() {
    ServerConfig cfg;
    cfg.encoding = AnyEncoding::from(BxsaEncoding{});
    cfg.handler = services::verification_handler;
    cfg.stream_handler = echo_stream;
    cfg.compress_transforms = transforms::kAll;
    if (GetParam() == ConcurrencyModel::kEventLoop) {
      cfg.reactor_threads = 2;
      cfg.worker_threads = 2;
    }
    return SoapServer::create(GetParam(), std::move(cfg));
  }

  /// Hello/Accept by hand, offering `offer`; returns the negotiated set.
  static std::uint8_t handshake(TcpStream& stream, std::uint8_t offer) {
    HelloFrame hello;
    hello.transforms = offer;
    write_hello(stream, hello);
    const AcceptFrame accept = read_accept(stream);
    EXPECT_EQ(accept.version, kFrameVersionNegotiated);
    return accept.transforms;
  }

  /// The connection was cut if the next read sees EOF/reset instead of
  /// bytes. The 2 s read timeout is a hang detector, not the contract.
  static bool cut(TcpStream& stream) {
    try {
      std::uint8_t byte;
      stream.set_read_timeout(2000);
      stream.read_exact(&byte, 1);
      return false;
    } catch (const TransportError&) {
      return true;
    }
  }

  /// The server still serves well-formed traffic after the abuse.
  static void expect_still_serving(SoapServer& server) {
    SoapEngine<BxsaEncoding, TcpClientBinding> client(
        BxsaEncoding{}, TcpClientBinding(server.port()));
    const SoapEnvelope resp = client.call(
        services::make_data_request(workload::make_lead_dataset(9)));
    const auto outcome = services::parse_verify_response(resp);
    EXPECT_TRUE(outcome.ok);
    EXPECT_EQ(outcome.count, 9u);
  }

  /// A v3 Message frame with the compressed flag and the given body.
  static std::vector<std::uint8_t> compressed_frame(
      std::vector<std::uint8_t> body) {
    ByteWriter w;
    const std::size_t len_pos = begin_frame_v3(w, v3flags::kCompressed,
                                               BxsaEncoding::content_type());
    w.write_bytes(body);
    end_frame(w, len_pos);
    return w.take();
  }

  /// A v2 chunked header plus one kCompressedData chunk with `body`.
  static std::vector<std::uint8_t> compressed_chunk(
      std::vector<std::uint8_t> body) {
    ByteWriter w;
    w.write_bytes(kFrameMagic, sizeof(kFrameMagic));
    w.write_u8(kFrameVersionChunked);
    const std::string_view ct = BxsaEncoding::content_type();
    vls_write(w, ct.size());
    w.write_string(ct);
    w.write_u8(static_cast<std::uint8_t>(ChunkKind::kCompressedData));
    w.write<std::uint64_t>(body.size(), ByteOrder::kBig);
    w.write_bytes(body);
    return w.take();
  }
};

}  // namespace

TEST_P(CompressChaos, CorruptTransformIdCutsTheConnection) {
  auto server = start();
  TcpStream stream = TcpStream::connect(server->port());
  ASSERT_EQ(handshake(stream, transforms::kAll), transforms::kAll);
  // Transform id 9 exists in no negotiation; the server must not guess.
  stream.write_all(compressed_frame({9, 1, 2, 3, 4}));
  EXPECT_TRUE(cut(stream));
  expect_still_serving(*server);
}

TEST_P(CompressChaos, NonNegotiatedTransformIdCutsTheConnection) {
  auto server = start();
  TcpStream stream = TcpStream::connect(server->port());
  // Offer (and so negotiate) lzss only; then send a shuffle+lzss frame.
  ASSERT_EQ(handshake(stream, transforms::kLzss), transforms::kLzss);
  std::vector<std::uint8_t> body = {
      static_cast<std::uint8_t>(Transform::kShuffleLzss), 8};
  const auto packed =
      lzss_compress(std::vector<std::uint8_t>(64, std::uint8_t{0}));
  body.insert(body.end(), packed.begin(), packed.end());
  stream.write_all(compressed_frame(std::move(body)));
  EXPECT_TRUE(cut(stream));
  expect_still_serving(*server);
}

TEST_P(CompressChaos, CompressedFrameWithoutNegotiationCutsTheConnection) {
  auto server = start();
  TcpStream stream = TcpStream::connect(server->port());
  // Hello with an EMPTY offer: the channel is plain-v3 and the compressed
  // flag is meaningless on it.
  ASSERT_EQ(handshake(stream, 0), 0);
  std::vector<std::uint8_t> body = {static_cast<std::uint8_t>(
      Transform::kLzss)};
  const auto packed =
      lzss_compress(std::vector<std::uint8_t>(64, std::uint8_t{0}));
  body.insert(body.end(), packed.begin(), packed.end());
  stream.write_all(compressed_frame(std::move(body)));
  EXPECT_TRUE(cut(stream));
  expect_still_serving(*server);
}

TEST_P(CompressChaos, TruncatedCompressedChunkCutsTheConnection) {
  auto server = start();
  TcpStream stream = TcpStream::connect(server->port());
  ASSERT_EQ(handshake(stream, transforms::kAll), transforms::kAll);
  // A valid lzss stream cut in half: the declared decompressed size can
  // never be reached, and the declared chunk length is honest — only the
  // compressed payload itself is torn.
  const auto whole =
      lzss_compress(std::vector<std::uint8_t>(4096, std::uint8_t{'x'}));
  std::vector<std::uint8_t> body = {
      static_cast<std::uint8_t>(Transform::kLzss)};
  body.insert(body.end(), whole.begin(), whole.begin() + whole.size() / 2);
  stream.write_all(compressed_chunk(std::move(body)));
  EXPECT_TRUE(cut(stream));
  expect_still_serving(*server);
}

TEST_P(CompressChaos, ChunkSizeBombIsRejectedWithoutAllocating) {
  auto server = start();
  TcpStream stream = TcpStream::connect(server->port());
  ASSERT_EQ(handshake(stream, transforms::kAll), transforms::kAll);
  // A forged lzss header declaring 1 GiB decompressed, in a chunk whose
  // wire size is a few dozen bytes. The per-chunk ceiling (max_chunk_bytes)
  // must reject the declaration before any allocation happens.
  ByteWriter forged;
  forged.write_u8(static_cast<std::uint8_t>(Transform::kLzss));
  forged.write_bytes(reinterpret_cast<const std::uint8_t*>("LZS1"), 4);
  forged.write<std::uint64_t>(std::uint64_t{1} << 30, ByteOrder::kLittle);
  for (int i = 0; i < 32; ++i) forged.write_u8(0);
  stream.write_all(compressed_chunk(forged.take()));
  EXPECT_TRUE(cut(stream));
  expect_still_serving(*server);
}

TEST_P(CompressChaos, MessageSizeBombIsRejectedWithoutAllocating) {
  auto server = start();
  TcpStream stream = TcpStream::connect(server->port());
  ASSERT_EQ(handshake(stream, transforms::kAll), transforms::kAll);
  // Same forgery on the v1-shaped message path: 16 GiB declared, capped
  // by max_message_bytes (and the absolute 8 GiB sanity bound).
  ByteWriter forged;
  forged.write_u8(static_cast<std::uint8_t>(Transform::kLzss));
  forged.write_bytes(reinterpret_cast<const std::uint8_t*>("LZS1"), 4);
  forged.write<std::uint64_t>(std::uint64_t{1} << 34, ByteOrder::kLittle);
  for (int i = 0; i < 32; ++i) forged.write_u8(0);
  stream.write_all(compressed_frame(forged.take()));
  EXPECT_TRUE(cut(stream));
  expect_still_serving(*server);
}

INSTANTIATE_TEST_SUITE_P(Models, CompressChaos,
                         ::testing::Values(
                             ConcurrencyModel::kThreadPerConnection,
                             ConcurrencyModel::kEventLoop),
                         [](const auto& info) {
                           return info.param ==
                                          ConcurrencyModel::kThreadPerConnection
                                      ? "pool"
                                      : "event";
                         });

}  // namespace bxsoap::transport
