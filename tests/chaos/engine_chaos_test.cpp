// Full-engine chaos: injected transport faults against live engines and
// the hardened server pool. Every scenario is seeded and replayable; the
// invariant everywhere is the resilience contract — an exchange either
// succeeds (possibly after retry) or surfaces a typed error / fault
// envelope. Never a crash, a hang, or a wedged server.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "services/verification.hpp"
#include "soap/engine.hpp"
#include "soap/reliable.hpp"
#include "transport/bindings.hpp"
#include "transport/fault.hpp"
#include "transport/framing.hpp"
#include "transport/server.hpp"
#include "workload/lead.hpp"

namespace bxsoap::transport {
namespace {

using namespace bxsoap::soap;

SoapEnvelope data_request(std::size_t n) {
  return services::make_data_request(workload::make_lead_dataset(n));
}

// Byte-level chaos against the hardened pool: each seed derives one fault
// spec, applies it to a raw framed exchange, and the outcome must be a
// clean response, a fault envelope, or a typed Error. After the storm the
// pool must still serve.
TEST(EngineChaos, RawStreamFaultMatrixNeverWedgesThePool) {
  ServerConfig cfg;
  cfg.encoding = AnyEncoding::from(BxsaEncoding{});
  cfg.handler = services::verification_handler;
  cfg.read_timeout_ms = 250;  // a stalled or short-counted frame times out
  cfg.frame_limits.max_message_bytes = 1u << 20;
  auto pool = SoapServer::create(ConcurrencyModel::kThreadPerConnection,
                                 std::move(cfg));

  BxsaEncoding enc;
  const SoapEnvelope req = data_request(20);
  const std::vector<std::uint8_t> payload = enc.serialize(req.document());

  int clean = 0;
  int faulted = 0;
  constexpr std::uint64_t kSeeds = 120;
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    FaultPlanConfig pc;
    pc.max_offset = payload.size() + 32;  // faults land across the frame
    pc.max_delay_ms = 3;
    const FaultSpec spec = FaultPlan(seed, pc).for_connection(seed);
    try {
      FaultyStream<TcpStream> fs(TcpStream::connect(pool->port()), spec);
      fs.inner().set_read_timeout(2000);  // hang detector, not the contract
      soap::WireMessage m;
      m.content_type = std::string(BxsaEncoding::content_type());
      m.payload = payload;
      write_frame(fs, m);
      const soap::WireMessage resp = read_frame(fs);
      const SoapEnvelope env(enc.deserialize(resp.payload));
      env.is_fault() ? ++faulted : ++clean;
    } catch (const Error&) {
      ++faulted;  // typed failure: the contract holds
    }
  }
  // The seeded mix must have produced both outcomes, or the matrix tested
  // nothing.
  EXPECT_GT(clean, 0);
  EXPECT_GT(faulted, 0);

  // The pool survived all of it.
  SoapEngine<BxsaEncoding, TcpClientBinding> client(
      {}, TcpClientBinding(pool->port()));
  EXPECT_TRUE(services::parse_verify_response(client.call(req)).ok);
}

// Message-level chaos behind the retry layer: every exchange must resolve
// to a response, a fault envelope, or a typed give-up.
TEST(EngineChaos, RetryingClientResolvesEveryExchange) {
  ServerConfig cfg;
  cfg.encoding = AnyEncoding::from(BxsaEncoding{});
  cfg.handler = services::verification_handler;
  auto pool = SoapServer::create(ConcurrencyModel::kThreadPerConnection,
                                 std::move(cfg));

  const SoapEnvelope req = data_request(10);
  int ok = 0;
  int faulted = 0;
  int gave_up = 0;
  constexpr std::uint64_t kSeeds = 100;
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    FaultPlanConfig pc;
    pc.max_delay_ms = 2;
    SoapEngine<BxsaEncoding, FaultyBinding<TcpClientBinding>> client(
        {}, FaultyBinding<TcpClientBinding>(TcpClientBinding(pool->port()),
                                            FaultPlan(seed, pc)));
    RetryPolicy policy;
    policy.max_attempts = 8;
    policy.initial_backoff = std::chrono::milliseconds(0);
    policy.jitter_seed = seed;
    ReliableCaller caller(client, policy);
    try {
      const SoapEnvelope resp = caller.call(req);
      resp.is_fault() ? ++faulted : ++ok;
    } catch (const TransportError&) {
      ++gave_up;  // bounded retries exhausted: a typed outcome
    }
  }
  EXPECT_EQ(ok + faulted + gave_up, static_cast<int>(kSeeds));
  EXPECT_GT(ok, 0);        // clean traffic flows
  EXPECT_GT(faulted, 0);   // corrupted payloads answered in-band

  // Pool still healthy.
  SoapEngine<BxsaEncoding, TcpClientBinding> client(
      {}, TcpClientBinding(pool->port()));
  EXPECT_TRUE(services::parse_verify_response(client.call(req)).ok);
}

// The satellite scenario: one client opens a frame and stalls forever; the
// pool's read timeout must keep it from pinning a worker while other
// clients are served untouched.
TEST(EngineChaos, MisbehavingClientCannotStallOthers) {
  ServerConfig cfg;
  cfg.encoding = AnyEncoding::from(BxsaEncoding{});
  cfg.handler = services::verification_handler;
  cfg.read_timeout_ms = 150;
  auto pool = SoapServer::create(ConcurrencyModel::kThreadPerConnection,
                                 std::move(cfg));

  // The slowloris: valid magic, then silence.
  TcpStream slow = TcpStream::connect(pool->port());
  slow.write_all(std::string_view("BXT"));

  // Meanwhile, honest clients hammer the pool.
  constexpr int kClients = 4;
  constexpr int kCallsEach = 3;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      try {
        SoapEngine<BxsaEncoding, TcpClientBinding> client(
            {}, TcpClientBinding(pool->port()));
        for (int i = 0; i < kCallsEach; ++i) {
          const SoapEnvelope resp =
              client.call(data_request(5 + static_cast<std::size_t>(c)));
          if (!services::parse_verify_response(resp).ok) ++failures;
        }
      } catch (const std::exception&) {
        ++failures;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(pool->exchanges(),
            static_cast<std::size_t>(kClients * kCallsEach));

  // The stalled connection gets cut by the read timeout: our next read
  // sees the server's FIN instead of blocking forever.
  slow.set_read_timeout(2000);
  std::uint8_t b;
  EXPECT_THROW(slow.read_exact(&b, 1), TransportError);
}

// Fault coverage across all four Encoding x Binding stacks: a truncated
// and a bit-flipped message must surface as fault envelopes / typed
// errors through the full engine, and the stack must keep working after.
template <typename Encoding, typename ServerBinding, typename ClientBinding>
void stack_fault_roundtrip() {
  SoapEngine<Encoding, ServerBinding> server;
  const std::uint16_t port = server.binding().port();
  std::thread srv([&server] {
    for (int i = 0; i < 3; ++i) {
      server.serve_once(services::verification_handler);
    }
  });

  const FaultPlan plan = FaultPlan::script({
      {FaultKind::kTruncate, 3, 0, 0},   // message 0: 3-byte payload
      {FaultKind::kCorrupt, 17, 2, 0},   // message 1: one flipped bit
      {FaultKind::kNone, 0, 0, 0},       // message 2: clean
  });
  SoapEngine<Encoding, FaultyBinding<ClientBinding>> client(
      {}, FaultyBinding<ClientBinding>(ClientBinding(port), plan));
  const SoapEnvelope req = data_request(8);

  // Truncated payload: undecodable on any stack -> fault envelope.
  const SoapEnvelope r0 = client.call(req);
  EXPECT_TRUE(r0.is_fault());
  // Bit flip: either rejected (fault) or survives as a decodable request;
  // the contract is a well-formed response either way.
  const SoapEnvelope r1 = client.call(req);
  (void)r1;
  // Clean message: the stack must have fully recovered.
  const SoapEnvelope r2 = client.call(req);
  EXPECT_FALSE(r2.is_fault());
  EXPECT_TRUE(services::parse_verify_response(r2).ok);
  srv.join();
}

TEST(EngineChaos, AllFourStacksSurfaceTypedFailures) {
  stack_fault_roundtrip<BxsaEncoding, TcpServerBinding, TcpClientBinding>();
  stack_fault_roundtrip<XmlEncoding, TcpServerBinding, TcpClientBinding>();
  stack_fault_roundtrip<BxsaEncoding, HttpServerBinding, HttpClientBinding>();
  stack_fault_roundtrip<XmlEncoding, HttpServerBinding, HttpClientBinding>();
}

}  // namespace
}  // namespace bxsoap::transport
