// Chaos against the epoll event server: truncations, resets and delays
// mid-frame, pipelined bursts abandoned by the client, and slowloris
// peers. The invariant is the same resilience contract as the pool —
// every exchange ends in a clean response, an in-band soap:Client fault,
// or a clean disconnect. Never a hang, a wedged reactor, or a leaked
// connection.
//
// The whole matrix runs at reactor_threads = 1, 2 and one-per-core: the
// sharded topology (PR 6) must uphold the contract whether a connection
// lives on the accepting reactor or crossed a handoff to another shard.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "services/verification.hpp"
#include "soap/engine.hpp"
#include "transport/bindings.hpp"
#include "transport/server.hpp"
#include "transport/fault.hpp"
#include "transport/framing.hpp"
#include "workload/lead.hpp"

namespace bxsoap::transport {
namespace {

using namespace bxsoap::soap;

/// The reactor-shard matrix: 1 (the pre-shard topology), 2 (cross-reactor
/// handoff guaranteed), one-per-core (the default deployment). Deduped so
/// single- and dual-core hosts don't run identical legs twice.
std::vector<std::size_t> shard_matrix() {
  const std::size_t cores =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  std::vector<std::size_t> m = {1, 2};
  if (cores != 1 && cores != 2) m.push_back(cores);
  return m;
}

class EventChaos : public ::testing::TestWithParam<std::size_t> {
 protected:
  /// Finish a chaos config with this leg's shard count and build the
  /// server through the one public construction path.
  static std::unique_ptr<SoapServer> start(ServerConfig cfg) {
    cfg.reactor_threads = GetParam();
    return SoapServer::create(ConcurrencyModel::kEventLoop, std::move(cfg));
  }
};

INSTANTIATE_TEST_SUITE_P(Reactors, EventChaos,
                         ::testing::ValuesIn(shard_matrix()),
                         [](const auto& info) {
                           return "shards" + std::to_string(info.param);
                         });

SoapEnvelope data_request(std::size_t n) {
  return services::make_data_request(workload::make_lead_dataset(n));
}

std::vector<std::uint8_t> framed_request(std::size_t n) {
  BxsaEncoding enc;
  const SoapEnvelope req = data_request(n);
  ByteWriter w;
  const std::size_t len_pos = begin_frame(w, BxsaEncoding::content_type());
  enc.serialize_into(req.document(), w);
  end_frame(w, len_pos);
  return w.take();
}

/// Wait until the server has no registered connections (the reactor reaps
/// asynchronously after a peer vanishes). Fails the test on timeout.
void expect_drains_to_zero(SoapServer& server) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (server.active_connections() != 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(server.active_connections(), 0u);
}

// Byte-level chaos matrix, ported from the pool suite: each seed derives
// one fault spec applied to a raw framed exchange.
TEST_P(EventChaos, RawStreamFaultMatrixNeverWedgesTheServer) {
  ServerConfig cfg;
  cfg.encoding = AnyEncoding::from(BxsaEncoding{});
  cfg.handler = services::verification_handler;
  cfg.read_timeout_ms = 250;  // a stalled or short-counted frame times out
  cfg.frame_limits.max_message_bytes = 1u << 20;
  auto server = start(std::move(cfg));

  BxsaEncoding enc;
  const SoapEnvelope req = data_request(20);
  const std::vector<std::uint8_t> payload = enc.serialize(req.document());

  int clean = 0;
  int faulted = 0;
  constexpr std::uint64_t kSeeds = 120;
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    FaultPlanConfig pc;
    pc.max_offset = payload.size() + 32;  // faults land across the frame
    pc.max_delay_ms = 3;
    const FaultSpec spec = FaultPlan(seed, pc).for_connection(seed);
    try {
      FaultyStream<TcpStream> fs(TcpStream::connect(server->port()), spec);
      fs.inner().set_read_timeout(2000);  // hang detector, not the contract
      soap::WireMessage m;
      m.content_type = std::string(BxsaEncoding::content_type());
      m.payload = payload;
      write_frame(fs, m);
      const soap::WireMessage resp = read_frame(fs);
      const SoapEnvelope env(enc.deserialize(resp.payload));
      env.is_fault() ? ++faulted : ++clean;
    } catch (const Error&) {
      ++faulted;  // typed failure: the contract holds
    }
  }
  EXPECT_GT(clean, 0);
  EXPECT_GT(faulted, 0);

  // The server survived all of it and leaked nothing.
  SoapEngine<BxsaEncoding, TcpClientBinding> client(
      {}, TcpClientBinding(server->port()));
  EXPECT_TRUE(services::parse_verify_response(client.call(req)).ok);
  client.binding().close();
  expect_drains_to_zero(*server);
}

// Truncation sweep: a client that sends the first k bytes of a valid frame
// and disconnects must produce a clean server-side drop at EVERY cut
// point — inside the magic, the VLS length, the content type, the declared
// length, or the payload body.
TEST_P(EventChaos, MidFrameTruncationAtEveryOffsetDisconnectsCleanly) {
  ServerConfig cfg;
  cfg.encoding = AnyEncoding::from(BxsaEncoding{});
  cfg.handler = services::verification_handler;
  auto server = start(std::move(cfg));

  const std::vector<std::uint8_t> frame = framed_request(8);
  // Every header offset, then strides through the payload.
  std::vector<std::size_t> cuts;
  for (std::size_t k = 1; k < 32 && k < frame.size(); ++k) cuts.push_back(k);
  for (std::size_t k = 32; k < frame.size(); k += 97) cuts.push_back(k);

  for (const std::size_t cut : cuts) {
    SCOPED_TRACE("cut at " + std::to_string(cut));
    TcpStream conn = TcpStream::connect(server->port());
    conn.write_all(std::span(frame.data(), cut));
    conn.close();
  }
  expect_drains_to_zero(*server);

  // No exchange ever completed from a truncated frame, and the server
  // still serves full ones.
  EXPECT_EQ(server->exchanges(), 0u);
  SoapEngine<BxsaEncoding, TcpClientBinding> client(
      {}, TcpClientBinding(server->port()));
  EXPECT_TRUE(
      services::parse_verify_response(client.call(data_request(3))).ok);
}

// A pipelined burst abandoned mid-read: the client writes several requests
// and vanishes without reading a single response. Workers complete into a
// dead connection; the reactor must discard those responses (returning
// their buffers) without wedging or leaking the connection.
TEST_P(EventChaos, AbandonedPipelineBurstIsDiscarded) {
  ServerConfig cfg;
  cfg.encoding = AnyEncoding::from(BxsaEncoding{});
  cfg.handler = [](SoapEnvelope req) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    return services::verification_handler(std::move(req));
  };
  auto server = start(std::move(cfg));

  for (int round = 0; round < 8; ++round) {
    TcpStream conn = TcpStream::connect(server->port());
    for (int i = 0; i < 4; ++i) {
      const auto frame = framed_request(5 + static_cast<std::size_t>(i));
      conn.write_all(std::span(frame.data(), frame.size()));
    }
    conn.close();  // gone before any response lands
  }
  expect_drains_to_zero(*server);

  SoapEngine<BxsaEncoding, TcpClientBinding> client(
      {}, TcpClientBinding(server->port()));
  EXPECT_TRUE(
      services::parse_verify_response(client.call(data_request(2))).ok);
}

// Slowloris: a peer that opens a frame and stalls is disconnected by the
// reactor's idle sweep instead of holding its connection slot forever.
TEST_P(EventChaos, SlowlorisPeerIsSweptOut) {
  ServerConfig cfg;
  cfg.encoding = AnyEncoding::from(BxsaEncoding{});
  cfg.handler = services::verification_handler;
  cfg.read_timeout_ms = 100;
  auto server = start(std::move(cfg));

  TcpStream sly = TcpStream::connect(server->port());
  const std::vector<std::uint8_t> frame = framed_request(8);
  sly.write_all(std::span(frame.data(), 7));  // magic + version + a dribble
  // The server must cut us loose: the next read sees EOF/reset, bounded by
  // the client-side timeout below (the hang detector).
  sly.set_read_timeout(3000);
  std::uint8_t b;
  EXPECT_THROW(sly.read_exact(&b, 1), TransportError);
  expect_drains_to_zero(*server);

  SoapEngine<BxsaEncoding, TcpClientBinding> client(
      {}, TcpClientBinding(server->port()));
  EXPECT_TRUE(
      services::parse_verify_response(client.call(data_request(3))).ok);
}

// Delay chaos on a pipelined connection: requests dribble in with pauses
// shorter than the idle timeout; every one must still be answered in
// order (the sweep must not cut an active-but-slow pipeliner).
TEST_P(EventChaos, SlowButLivePipelinerIsServedNotSwept) {
  ServerConfig cfg;
  cfg.encoding = AnyEncoding::from(BxsaEncoding{});
  cfg.handler = services::verification_handler;
  cfg.read_timeout_ms = 500;
  auto server = start(std::move(cfg));

  TcpStream conn = TcpStream::connect(server->port());
  BxsaEncoding enc;
  constexpr std::size_t kRequests = 5;
  for (std::size_t i = 0; i < kRequests; ++i) {
    const auto frame = framed_request(30 + i);
    // Split each frame into two writes with a sub-timeout pause between.
    const std::size_t half = frame.size() / 2;
    conn.write_all(std::span(frame.data(), half));
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    conn.write_all(std::span(frame.data() + half, frame.size() - half));
  }
  for (std::size_t i = 0; i < kRequests; ++i) {
    const soap::WireMessage resp = read_frame(conn);
    const SoapEnvelope env(enc.deserialize(resp.payload));
    EXPECT_EQ(services::parse_verify_response(env).count, 30 + i);
  }
  EXPECT_EQ(server->exchanges(), kRequests);
}

}  // namespace
}  // namespace bxsoap::transport
