// Structure-aware mutation harness for the BXSA decoders.
//
// Valid frame buffers are mutated under a seeded PRNG (bit flips,
// truncations, splices, range fills) and pushed through every consumer of
// untrusted bytes — the tree decoder, the pull StreamReader and the
// FrameScanner. The contract under test: hostile input costs a DecodeError
// (or TransportError at the framing layer), NEVER a crash, a hang or an
// unbounded allocation. Run under the asan-ubsan preset (scripts/check.sh)
// this is the repo's deterministic fuzz gate; every failure reproduces from
// its seed.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "bxsa/decoder.hpp"
#include "bxsa/encoder.hpp"
#include "bxsa/frame.hpp"
#include "bxsa/scanner.hpp"
#include "bxsa/stream_reader.hpp"
#include "common/lzss.hpp"
#include "common/prng.hpp"
#include "xbs/xbs.hpp"
#include "xdm/node.hpp"

namespace bxsoap::bxsa {
namespace {

using namespace bxsoap::xdm;

// ---- corpus ----------------------------------------------------------------

/// A document exercising every frame type: namespaces, attributes, typed
/// leaves, packed arrays, text, comments and PIs.
DocumentPtr rich_document() {
  auto root = make_element(QName("urn:chaos", "root", "c"));
  root->declare_namespace("c", "urn:chaos");
  root->add_attribute(QName("version"), std::string("1"));
  root->add_attribute(QName("count"), std::int32_t{42});

  auto inner = make_element(QName("urn:chaos", "inner", "c"));
  inner->add_child(make_leaf<std::string>(QName("name"), "mutation corpus"));
  inner->add_child(make_leaf<double>(QName("temp"), 291.5));
  inner->add_child(make_leaf<bool>(QName("ok"), true));
  inner->add_child(
      make_array<std::int32_t>(QName("ids"), {1, 2, 3, 5, 8, 13, 21}));
  inner->add_child(make_array<double>(QName("samples"),
                                      {0.5, -1.25, 3.75, 1e300, -2e-300}));
  inner->add_child(std::make_unique<TextNode>("between the frames"));
  root->add_child(std::move(inner));
  root->add_child(std::make_unique<CommentNode>("corpus comment"));
  root->add_child(std::make_unique<PINode>("target", "pi payload"));

  auto doc = std::make_unique<Document>();
  doc->add_child(std::move(root));
  return doc;
}

std::vector<std::vector<std::uint8_t>> build_corpus() {
  std::vector<std::vector<std::uint8_t>> corpus;
  corpus.push_back(encode(*rich_document()));
  EncodeOptions big;
  big.order = ByteOrder::kBig;
  corpus.push_back(encode(*rich_document(), big));
  // A wide, shallow document (many siblings) and a deep, narrow one.
  {
    auto root = make_element(QName("wide"));
    for (int i = 0; i < 40; ++i) {
      root->add_child(make_leaf<std::int32_t>(QName("n"), i));
    }
    corpus.push_back(encode(*make_document(std::move(root))));
  }
  {
    auto leaf = make_element(QName("d"));
    NodePtr node = std::move(leaf);
    for (int i = 0; i < 24; ++i) {
      auto parent = make_element(QName("d"));
      parent->add_child(std::move(node));
      node = std::move(parent);
    }
    corpus.push_back(encode(*make_document(std::move(node))));
  }
  return corpus;
}

// ---- mutation --------------------------------------------------------------

std::vector<std::uint8_t> mutate(std::vector<std::uint8_t> bytes,
                                 SplitMix64& rng) {
  const std::size_t rounds = 1 + rng.next_below(4);
  for (std::size_t round = 0; round < rounds && !bytes.empty(); ++round) {
    switch (rng.next_below(6)) {
      case 0: {  // flip one bit
        const std::size_t i = rng.next_below(bytes.size());
        bytes[i] ^= static_cast<std::uint8_t>(1u << rng.next_below(8));
        break;
      }
      case 1: {  // overwrite one byte
        bytes[rng.next_below(bytes.size())] =
            static_cast<std::uint8_t>(rng.next());
        break;
      }
      case 2:  // truncate
        bytes.resize(rng.next_below(bytes.size() + 1));
        break;
      case 3: {  // erase a range
        const std::size_t from = rng.next_below(bytes.size());
        const std::size_t len =
            1 + rng.next_below(std::min<std::size_t>(16, bytes.size() - from));
        bytes.erase(bytes.begin() + static_cast<std::ptrdiff_t>(from),
                    bytes.begin() + static_cast<std::ptrdiff_t>(from + len));
        break;
      }
      case 4: {  // fill a range (0x00 or 0xFF — hostile VLS continuations)
        const std::size_t from = rng.next_below(bytes.size());
        const std::size_t len =
            1 + rng.next_below(std::min<std::size_t>(8, bytes.size() - from));
        const std::uint8_t v = rng.next_bool() ? 0xFF : 0x00;
        std::fill_n(bytes.begin() + static_cast<std::ptrdiff_t>(from), len, v);
        break;
      }
      default: {  // splice: duplicate a slice somewhere else
        const std::size_t from = rng.next_below(bytes.size());
        const std::size_t len =
            1 + rng.next_below(std::min<std::size_t>(12, bytes.size() - from));
        const std::vector<std::uint8_t> slice(
            bytes.begin() + static_cast<std::ptrdiff_t>(from),
            bytes.begin() + static_cast<std::ptrdiff_t>(from + len));
        const std::size_t at = rng.next_below(bytes.size() + 1);
        bytes.insert(bytes.begin() + static_cast<std::ptrdiff_t>(at),
                     slice.begin(), slice.end());
        break;
      }
    }
  }
  return bytes;
}

// ---- consumers under test --------------------------------------------------

/// Pull every event; a mutation must not turn the reader into an infinite
/// loop, so the cap failure is a std::runtime_error (NOT a bxsoap::Error)
/// and fails the test instead of being swallowed.
void drain_stream_reader(std::span<const std::uint8_t> bytes) {
  StreamReader reader(bytes);
  std::size_t events = 0;
  while (reader.next()) {
    if (++events > 1'000'000) {
      throw std::runtime_error("stream reader event cap exceeded");
    }
  }
}

/// Depth-first scanner walk with an explicit stack and a visit cap.
void walk_scanner(std::span<const std::uint8_t> bytes) {
  if (bytes.empty()) return;
  const FrameScanner scanner(bytes);
  std::vector<std::pair<FrameInfo, std::size_t>> stack;  // frame, limit
  stack.push_back({scanner.frame_at(0), bytes.size()});
  std::size_t visits = 0;
  while (!stack.empty()) {
    if (++visits > 100'000) {
      throw std::runtime_error("scanner visit cap exceeded");
    }
    auto [frame, limit] = stack.back();
    stack.pop_back();
    if (auto sibling = scanner.next(frame, limit)) {
      stack.push_back({*sibling, limit});
    }
    switch (frame.type) {
      case FrameType::kDocument:
      case FrameType::kComponentElement:
        if (frame.type == FrameType::kComponentElement) {
          scanner.element_local_name(frame);
        }
        if (auto child = scanner.first_child(frame)) {
          stack.push_back({*child, frame.end()});
        }
        break;
      case FrameType::kLeafElement:
        scanner.element_local_name(frame);
        break;
      case FrameType::kArrayElement:
        scanner.array_view(frame);
        break;
      default:
        break;
    }
  }
}

// ---- the harness -----------------------------------------------------------

TEST(Mutation, EveryMutantYieldsTypedErrorOrDecodes) {
  const auto corpus = build_corpus();
  std::size_t decoded = 0;
  std::size_t rejected = 0;
  for (std::uint64_t seed = 0; seed < 300; ++seed) {
    SplitMix64 rng(seed);
    const auto& original = corpus[static_cast<std::size_t>(
        rng.next_below(corpus.size()))];
    const auto mutant = mutate(original, rng);
    SCOPED_TRACE("seed " + std::to_string(seed));

    try {
      decode(mutant);
      ++decoded;
    } catch (const Error&) {
      ++rejected;  // DecodeError (or kin): the contract
    }
    try {
      drain_stream_reader(mutant);
    } catch (const Error&) {
    }
    try {
      walk_scanner(mutant);
    } catch (const Error&) {
    }
  }
  // The mix must exercise both sides of the contract: most mutants are
  // rejected, some survive mutation (e.g. a bit flip inside array data).
  EXPECT_GT(rejected, 0u);
  EXPECT_GT(decoded + rejected, 0u);
}

TEST(Mutation, CompressedLayerRejectsMutantsTyped) {
  const auto bytes = encode(*rich_document());
  const auto compressed = lzss_compress(bytes);
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    SplitMix64 rng(seed ^ 0xC0FFEE);
    const auto mutant = mutate(compressed, rng);
    SCOPED_TRACE("seed " + std::to_string(seed));
    try {
      const auto plain = lzss_decompress(mutant);
      // If decompression survived, the decoders must still hold the line.
      try {
        decode(plain);
      } catch (const Error&) {
      }
    } catch (const Error&) {
    }
  }
}

// ---- targeted resource-limit probes ----------------------------------------

TEST(DecoderLimits, NestingBombRejectedByBothDecoders) {
  // 1500 nested elements: over the 1024-frame depth cap of both the tree
  // decoder and the stream reader.
  NodePtr node = make_element(QName("leaf"));
  for (int i = 0; i < 1500; ++i) {
    auto parent = make_element(QName("n"));
    parent->add_child(std::move(node));
    node = std::move(parent);
  }
  const auto bytes = encode(*make_document(std::move(node)));
  EXPECT_THROW(decode_document(bytes), DecodeError);
  EXPECT_THROW(drain_stream_reader(bytes), DecodeError);
}

TEST(DecoderLimits, HostileNamespaceCountRejectedBeforeAllocation) {
  // A leaf frame whose header declares ~2^32 namespace declarations backed
  // by five bytes of input. Must throw, not reserve gigabytes (under ASan
  // an over-reservation aborts the process, so this also guards the
  // allocator path).
  xbs::Writer body;
  body.put_vls((1ull << 32) - 1);  // n1
  const auto body_bytes = body.take();
  xbs::Writer frame;
  frame.put_u8(make_prefix_byte(FrameType::kLeafElement, ByteOrder::kLittle));
  frame.put_vls(body_bytes.size());
  frame.put_raw(body_bytes.data(), body_bytes.size());
  const auto bytes = frame.take();
  EXPECT_THROW(decode(bytes), DecodeError);
  EXPECT_THROW(drain_stream_reader(bytes), DecodeError);
}

TEST(DecoderLimits, HostileArrayCountRejectedBeforeAllocation) {
  // A well-formed array header declaring 2^61 doubles: count * item
  // overflows size_t if multiplied naively.
  xbs::Writer body;
  body.put_vls(0);           // n1: no namespace declarations
  body.put_vls(0);           // QNameRef depth 0 -> literal name
  body.put_string("a");      //   local name
  body.put_vls(0);           // n2: no attributes
  body.put_u8(static_cast<std::uint8_t>(AtomType::kFloat64));
  body.put_string("item");   // item name
  body.put_vls(1ull << 61);  // count
  const auto body_bytes = body.take();
  xbs::Writer frame;
  frame.put_u8(make_prefix_byte(FrameType::kArrayElement, ByteOrder::kLittle));
  frame.put_vls(body_bytes.size());
  frame.put_raw(body_bytes.data(), body_bytes.size());
  const auto bytes = frame.take();
  EXPECT_THROW(decode(bytes), DecodeError);
  EXPECT_THROW(drain_stream_reader(bytes), DecodeError);
  EXPECT_THROW(walk_scanner(bytes), DecodeError);
}

TEST(DecoderLimits, LzssForgedSizeHeaderRejected) {
  // "LZS1" + declared size of 4 GiB over a 4-byte token body: the
  // amplification bound must refuse before reserving anything.
  std::vector<std::uint8_t> bomb = {'L', 'Z', 'S', '1'};
  bomb.resize(12, 0);
  bomb[8] = 0x01;  // size u64 LE = 1 << 32
  bomb.push_back(0x00);
  bomb.push_back(0x41);
  bomb.push_back(0x41);
  bomb.push_back(0x41);
  EXPECT_THROW(lzss_decompress(bomb), DecodeError);
}

}  // namespace
}  // namespace bxsoap::bxsa
