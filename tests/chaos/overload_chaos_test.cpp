// Chaos for the overload-control path (DESIGN.md §12): retry storms from
// many clients sharing one containment budget, transport faults mixed
// with shed faults under a saturated server, and abandoned pipelines
// whose connections die while parked for queue backpressure. The
// invariant extends the resilience contract: under overload every call
// still ends in a response, an in-band fault, or a typed error; the
// worker queue never exceeds its bound; and clients' retry volume stays
// inside the shared budget instead of amplifying the collapse.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "services/verification.hpp"
#include "soap/engine.hpp"
#include "soap/overload.hpp"
#include "soap/reliable.hpp"
#include "transport/bindings.hpp"
#include "transport/fault.hpp"
#include "transport/framing.hpp"
#include "transport/server.hpp"
#include "workload/lead.hpp"

namespace bxsoap::transport {
namespace {

using namespace bxsoap::soap;
using std::chrono::milliseconds;

std::vector<std::size_t> shard_matrix() {
  const std::size_t cores =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  std::vector<std::size_t> m = {1, 2};
  if (cores != 1 && cores != 2) m.push_back(cores);
  return m;
}

class OverloadChaos : public ::testing::TestWithParam<std::size_t> {
 protected:
  static std::unique_ptr<SoapServer> start(ServerConfig cfg) {
    cfg.reactor_threads = GetParam();
    return SoapServer::create(ConcurrencyModel::kEventLoop, std::move(cfg));
  }
};

INSTANTIATE_TEST_SUITE_P(Reactors, OverloadChaos,
                         ::testing::ValuesIn(shard_matrix()),
                         [](const auto& info) {
                           return "shards" + std::to_string(info.param);
                         });

SoapEnvelope data_request(std::size_t n) {
  return services::make_data_request(workload::make_lead_dataset(n));
}

std::vector<std::uint8_t> framed_request(std::size_t n) {
  BxsaEncoding enc;
  const SoapEnvelope req = data_request(n);
  ByteWriter w;
  const std::size_t len_pos = begin_frame(w, BxsaEncoding::content_type());
  enc.serialize_into(req.document(), w);
  end_frame(w, len_pos);
  return w.take();
}

void expect_drains_to_zero(SoapServer& server) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (server.active_connections() != 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(milliseconds(2));
  }
  EXPECT_EQ(server.active_connections(), 0u);
}

/// A deliberately saturated server: one worker with a real (1 ms) cost
/// per request and a tiny queue, so most concurrent arrivals shed.
ServerConfig saturated_config(obs::Registry* registry) {
  ServerConfig cfg;
  cfg.encoding = AnyEncoding::from(BxsaEncoding{});
  cfg.handler = [](SoapEnvelope env) {
    std::this_thread::sleep_for(milliseconds(1));
    return services::verification_handler(std::move(env));
  };
  cfg.registry = registry;
  cfg.worker_threads = 1;
  cfg.max_queue_depth = 2;
  cfg.shed_retry_after = milliseconds(1);
  return cfg;
}

// Many clients hammer a saturated server through ReliableCallers that
// share ONE OverloadControl. The storm must be contained: total retries
// stay inside the shared token budget (plus credit earned by successes),
// the server's queue bound holds, and the system serves normally again
// once the storm passes.
TEST_P(OverloadChaos, RetryStormIsContainedByTheSharedBudget) {
  obs::Registry server_reg;
  auto server = start(saturated_config(&server_reg));

  constexpr double kTokens = 8.0;
  constexpr double kCredit = 0.05;
  OverloadControl control(kTokens, kCredit);

  obs::Registry client_reg;
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.initial_backoff = milliseconds(1);
  policy.deadline = milliseconds(5000);  // generous: exercises re-stamping
  using Engine = SoapEngine<BxsaEncoding, TcpClientBinding>;
  constexpr int kThreads = 4;
  constexpr int kCallsEach = 8;

  std::vector<std::unique_ptr<Engine>> engines;
  std::vector<std::unique_ptr<ReliableCaller<Engine>>> callers;
  for (int t = 0; t < kThreads; ++t) {
    engines.push_back(std::make_unique<Engine>(
        Engine({}, TcpClientBinding(server->port()))));
    callers.push_back(std::make_unique<ReliableCaller<Engine>>(
        *engines.back(), policy, &client_reg));
    callers.back()->attach_overload_control(&control);
  }

  std::atomic<int> ok{0};
  std::atomic<int> shed{0};
  std::atomic<int> errored{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kCallsEach; ++i) {
        try {
          const SoapEnvelope resp =
              callers[static_cast<std::size_t>(t)]->call(data_request(12));
          resp.is_fault() ? ++shed : ++ok;
        } catch (const TransportError&) {
          ++errored;  // breaker fail-fast or exhausted budget: contained
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  // Every call ended in a typed outcome — nothing hung, nothing leaked.
  EXPECT_EQ(ok + shed + errored, kThreads * kCallsEach);
  EXPECT_GT(ok.load(), 0);  // the server was saturated, not dead

  // Containment: retries never exceed the shared budget plus the credit
  // actually earned. Without the budget this storm would retry up to
  // (attempts-1) * calls = 96 times.
  const auto retries = client_reg.counter("client.retry.retries").value();
  const auto successes = client_reg.counter("client.retry.successes").value();
  EXPECT_LE(static_cast<double>(retries),
            kTokens + kCredit * static_cast<double>(successes) + 1e-9);

  // The server held its bound the whole time.
  EXPECT_LE(server_reg.waterline("event.queue.waterline").peak(), 2u);
  EXPECT_EQ(server_reg.counter("event.expired.dropped").value(), 0u);

  // Recovery: with the storm over, a fresh uncontrolled client succeeds.
  callers.clear();
  engines.clear();
  expect_drains_to_zero(*server);
  Engine fresh({}, TcpClientBinding(server->port()));
  EXPECT_TRUE(
      services::parse_verify_response(fresh.call(data_request(7))).ok);
}

// Transport faults layered on top of overload: seeded resets, truncations
// and delays on the client's stream while the server sheds. Every seed
// must converge to success, an in-band fault, or a typed give-up — the
// two failure domains (lossy transport, saturated server) never combine
// into a hang or an unbounded retry loop.
TEST_P(OverloadChaos, TransportFaultsUnderSaturationStillConverge) {
  obs::Registry server_reg;
  auto server = start(saturated_config(&server_reg));

  int ok = 0;
  int faulted = 0;
  int gave_up = 0;
  constexpr std::uint64_t kSeeds = 40;
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    FaultPlanConfig pc;
    pc.max_offset = 2048;
    pc.max_delay_ms = 2;
    SoapEngine<BxsaEncoding, FaultyBinding<TcpClientBinding>> client(
        {}, FaultyBinding<TcpClientBinding>(TcpClientBinding(server->port()),
                                            FaultPlan(seed, pc)));
    RetryPolicy policy;
    policy.max_attempts = 6;
    policy.initial_backoff = milliseconds(0);
    policy.jitter_seed = seed;
    OverloadControl control(4.0, 0.1);
    ReliableCaller caller(client, policy, nullptr);
    caller.attach_overload_control(&control);
    try {
      const SoapEnvelope resp = caller.call(data_request(16));
      resp.is_fault() ? ++faulted : ++ok;
    } catch (const TransportError&) {
      ++gave_up;
    }
  }
  EXPECT_EQ(ok + faulted + gave_up, static_cast<int>(kSeeds));
  EXPECT_GT(ok, 0);  // clean seeds exist in the plan space

  expect_drains_to_zero(*server);
  EXPECT_LE(server_reg.waterline("event.queue.waterline").peak(), 2u);
}

// Pipelined bursts that overfill the queue get their producers parked;
// some of those producers then vanish without ever reading a byte. The
// reactors must reap the dead parked connections, un-park the survivors,
// answer every one of their slots in order, and keep serving.
TEST_P(OverloadChaos, AbandonedParkedPipelinesAreReapedCleanly) {
  obs::Registry server_reg;
  auto server = start(saturated_config(&server_reg));

  constexpr std::size_t kConns = 4;
  constexpr std::size_t kBurst = 6;
  std::vector<TcpStream> conns;
  for (std::size_t c = 0; c < kConns; ++c) {
    conns.push_back(TcpStream::connect(server->port()));
    conns.back().set_read_timeout(5000);  // hang detector, not the contract
    const std::vector<std::uint8_t> frame = framed_request(10 + c);
    for (std::size_t i = 0; i < kBurst; ++i) {
      conns[c].write_all(frame);
    }
  }

  // Two producers abandon their bursts mid-flight — likely while parked.
  conns.erase(conns.begin(), conns.begin() + 2);

  // The survivors still get a response for every pipeline slot, in order:
  // a verified result or an Overloaded shed fault, never a hole.
  BxsaEncoding enc;
  for (std::size_t c = 0; c < conns.size(); ++c) {
    const std::size_t expect_count = 10 + 2 + c;
    for (std::size_t i = 0; i < kBurst; ++i) {
      SCOPED_TRACE("conn " + std::to_string(c) + " slot " + std::to_string(i));
      const soap::WireMessage resp = read_frame(conns[c]);
      const SoapEnvelope env(enc.deserialize(resp.payload));
      if (env.is_fault()) {
        EXPECT_TRUE(is_overloaded(env.fault()));
      } else {
        EXPECT_EQ(services::parse_verify_response(env).count, expect_count);
      }
    }
  }
  conns.clear();
  expect_drains_to_zero(*server);
  EXPECT_LE(server_reg.waterline("event.queue.waterline").peak(), 2u);

  // The server is still healthy after the carnage.
  SoapEngine<BxsaEncoding, TcpClientBinding> fresh(
      {}, TcpClientBinding(server->port()));
  EXPECT_TRUE(
      services::parse_verify_response(fresh.call(data_request(9))).ok);
}

}  // namespace
}  // namespace bxsoap::transport
