// Chaos against streaming authentication (FORMAT.md §"Auth trailer"):
// single-byte corruption of the tag, the first data chunk, and the last
// data chunk; truncation exactly at the Auth boundary; a stream that ends
// WITHOUT its trailer (the strip-the-tag attack); and the signed ×
// compressed × corrupted matrix. The invariant everywhere: the server
// detects the damage BEFORE its handler observes End — no corrupted
// stream ever completes as an exchange — and the connection dies alone.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "soap/security.hpp"
#include "transport/bindings.hpp"
#include "transport/compress.hpp"
#include "transport/fault.hpp"
#include "transport/framing.hpp"
#include "transport/server.hpp"
#include "transport/stream.hpp"

namespace bxsoap::transport {
namespace {

using namespace bxsoap::soap;

constexpr const char* kKey = "chaos-shared-key";

/// A valid SIGNED chunked transfer recorded off the wire, with the byte
/// ranges an attacker would aim at.
struct SignedWire {
  std::vector<std::uint8_t> bytes;
  std::size_t first_body = 0;  // offset into the first data chunk's body
  std::size_t last_body = 0;   // offset into the last data chunk's body
  std::size_t auth_start = 0;  // offset of the Auth trailer chunk frame
  std::size_t tag_byte = 0;    // offset of a byte inside the MAC tag
};

SignedWire record_signed_wire(std::uint8_t transforms) {
  MemoryStream out;
  BufferPool pool;
  SignedWire wire;
  StreamAuth auth = make_hmac_stream_auth(kKey);
  std::unique_ptr<StreamAuthenticator> tx =
      auth.make(authalgs::kHmacSha256);
  ChunkedFrameWriter<MemoryStream> writer(out, "application/x-chaos");
  if (transforms != 0) {
    writer.set_compression({transforms, CompressPolicy{}, &pool, {}});
  }
  writer.set_auth(tx.get(), authalgs::kHmacSha256);
  for (int i = 0; i < 4; ++i) {
    const std::size_t before = out.pending();
    // Low-entropy bodies so the compressed variant actually compresses.
    writer.write_data(std::vector<std::uint8_t>(
        512, static_cast<std::uint8_t>(0x20 + i)));
    if (i == 0) wire.first_body = before + 9 + 3;
    wire.last_body = before + 9 + 3;
  }
  wire.auth_start = out.pending();
  wire.tag_byte = wire.auth_start + 9 + 1 + 5;  // hdr, algo byte, tag[5]
  writer.finish();
  wire.bytes = out.read_exact(out.pending());
  return wire;
}

/// An UNSIGNED but otherwise identical transfer: what a tag-stripping
/// attacker would forward on an authenticated connection.
std::vector<std::uint8_t> record_unsigned_wire() {
  MemoryStream out;
  ChunkedFrameWriter<MemoryStream> writer(out, "application/x-chaos");
  for (int i = 0; i < 4; ++i) {
    writer.write_data(std::vector<std::uint8_t>(
        512, static_cast<std::uint8_t>(0x20 + i)));
  }
  writer.finish();
  return out.read_exact(out.pending());
}

struct ChaosServer {
  std::unique_ptr<obs::Registry> registry = std::make_unique<obs::Registry>();
  /// True only if a handler ever saw a stream END cleanly.
  std::shared_ptr<std::atomic<bool>> end_seen =
      std::make_shared<std::atomic<bool>>(false);
  std::unique_ptr<SoapServer> server;

  ChaosServer(ConcurrencyModel model, std::uint8_t transforms) {
    ServerConfig cfg;
    cfg.encoding = AnyEncoding::from(BxsaEncoding{});
    cfg.handler = [](SoapEnvelope env) { return env; };
    auto seen = end_seen;
    cfg.stream_handler = [seen](StreamRequest& req, ResponseWriter& resp) {
      while (auto c = req.next_chunk()) resp.write_chunk(std::move(*c));
      // next_chunk() returned nullopt: the framing layer surfaced End,
      // which on a signed stream means the trailer already verified.
      seen->store(true, std::memory_order_release);
      resp.finish();
    };
    cfg.stream_chunk_bytes = 1024;
    cfg.read_timeout_ms = 400;
    cfg.registry = registry.get();
    cfg.metrics_prefix = "chaos";
    cfg.stream_auth = make_hmac_stream_auth(kKey);
    cfg.compress_transforms = transforms;
    server = SoapServer::create(model, std::move(cfg));
  }

  std::uint64_t tag_failures() const {
    return registry->counter("chaos.sec.tag_failures").value();
  }

  void expect_drained() {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (server->active_connections() != 0 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    EXPECT_EQ(server->active_connections(), 0u);
  }
};

/// Negotiate v3 + auth (and optionally compression) by hand, then deliver
/// raw attacker-controlled bytes.
void deliver(std::uint16_t port, std::span<const std::uint8_t> bytes,
             std::uint8_t transforms) {
  TcpStream conn = TcpStream::connect(port);
  HelloFrame hello;
  hello.max_version = kFrameVersionNegotiated;
  hello.transforms = transforms;
  hello.auth = authalgs::kHmacSha256;
  write_hello(conn, hello);
  const AcceptFrame accept = read_accept(conn);
  ASSERT_EQ(accept.auth, authalgs::kHmacSha256);
  if (transforms != 0) {
    ASSERT_NE(accept.transforms, 0);
  }
  conn.write_all(bytes);
  // Drain the echoed response until the server cuts (corrupted wires) or
  // goes quiet after finishing (valid ones). Closing with unread response
  // bytes in our receive buffer would RST the connection, and an RST can
  // destroy request bytes the server has not consumed yet — racing the
  // very detection the tests observe.
  conn.set_read_timeout(300);
  std::uint8_t sink[4096];
  try {
    while (conn.read_some(sink, sizeof(sink)) != 0) {
    }
  } catch (const TransportError&) {
    // Timeout or reset: either way the server is done with our bytes.
  }
  conn.close();
}

class SignedStreamChaos : public ::testing::TestWithParam<ConcurrencyModel> {
};

INSTANTIATE_TEST_SUITE_P(
    BothModels, SignedStreamChaos,
    ::testing::Values(ConcurrencyModel::kThreadPerConnection,
                      ConcurrencyModel::kEventLoop),
    [](const auto& info) {
      return info.param == ConcurrencyModel::kThreadPerConnection
                 ? "Pool"
                 : "EventLoop";
    });

TEST_P(SignedStreamChaos, ValidSignedWireIsAcceptedBaseline) {
  // Control experiment: the hand-rolled handshake + recorded wire is
  // valid, so every corruption below fails because of the corruption.
  ChaosServer srv(GetParam(), 0);
  const SignedWire wire = record_signed_wire(0);
  deliver(srv.server->port(), wire.bytes, 0);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!srv.end_seen->load(std::memory_order_acquire) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(srv.end_seen->load(std::memory_order_acquire));
  EXPECT_EQ(srv.tag_failures(), 0u);
  srv.expect_drained();
}

TEST_P(SignedStreamChaos, SingleByteFlipsAreDetectedBeforeEnd) {
  ChaosServer srv(GetParam(), 0);
  const SignedWire wire = record_signed_wire(0);
  // One flipped byte in each attack surface: the MAC tag itself, the
  // first data chunk, the last data chunk.
  for (const std::size_t target :
       {wire.tag_byte, wire.first_body, wire.last_body}) {
    SCOPED_TRACE("flip at offset " + std::to_string(target));
    std::vector<std::uint8_t> corrupted = wire.bytes;
    corrupted[target] ^= 0x01;
    deliver(srv.server->port(), corrupted, 0);
  }
  // Every flip must land as a tag failure, with End never surfaced.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (srv.tag_failures() < 3 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(srv.tag_failures(), 3u);
  EXPECT_FALSE(srv.end_seen->load(std::memory_order_acquire));
  EXPECT_EQ(srv.server->exchanges(), 0u);
  srv.expect_drained();

  // The server survives: a fresh honest client round-trips.
  TcpClientBinding client(srv.server->port());
  client.enable_stream_auth(make_hmac_stream_auth(kKey));
  std::size_t got = 0;
  client.stream_exchange(
      "application/x-chaos", 1024,
      [&](ResponseWriter& tx) {
        tx.write_data(std::vector<std::uint8_t>(2048, 0x5A));
        tx.finish();
      },
      [&](StreamRequest& rx) {
        while (auto d = rx.next_data()) got += d->size();
      });
  EXPECT_EQ(got, 2048u);
}

TEST_P(SignedStreamChaos, TruncationAtAuthBoundaryNeverSurfacesEnd) {
  ChaosServer srv(GetParam(), 0);
  const SignedWire wire = record_signed_wire(0);
  // Everything up to — but not including — the Auth trailer, then silence.
  deliver(srv.server->port(),
          std::span(wire.bytes.data(), wire.auth_start), 0);
  srv.expect_drained();  // read timeout reaps the half-stream
  EXPECT_FALSE(srv.end_seen->load(std::memory_order_acquire));
  EXPECT_EQ(srv.server->exchanges(), 0u);
}

TEST_P(SignedStreamChaos, StrippedTrailerIsRejectedAtEnd) {
  // An attacker who strips the Auth trailer and forwards the End chunk
  // must be caught by the receiver's armed-but-unverified check.
  ChaosServer srv(GetParam(), 0);
  const std::vector<std::uint8_t> wire = record_unsigned_wire();
  deliver(srv.server->port(), wire, 0);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (srv.tag_failures() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(srv.tag_failures(), 1u);
  EXPECT_FALSE(srv.end_seen->load(std::memory_order_acquire));
  EXPECT_EQ(srv.server->exchanges(), 0u);
  srv.expect_drained();
}

TEST_P(SignedStreamChaos, CompressedSignedFlipMatrixIsDetected) {
  // The full matrix: signed × compressed × corrupted. The MAC covers the
  // PLAINTEXT chunk order, so whether a flip breaks the decompressor or
  // slips through as plausible-but-wrong plaintext, the stream must die
  // before End — never complete with corrupt data.
  ChaosServer srv(GetParam(), transforms::kAll);
  const SignedWire wire = record_signed_wire(transforms::kAll);

  // Baseline first: the compressed signed wire verifies as recorded.
  deliver(srv.server->port(), wire.bytes, transforms::kAll);
  const auto ok_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!srv.end_seen->load(std::memory_order_acquire) &&
         std::chrono::steady_clock::now() < ok_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(srv.end_seen->load(std::memory_order_acquire));
  srv.end_seen->store(false, std::memory_order_release);
  const std::size_t baseline_exchanges = srv.server->exchanges();

  for (const std::size_t target :
       {wire.tag_byte, wire.first_body, wire.last_body}) {
    SCOPED_TRACE("flip at offset " + std::to_string(target));
    std::vector<std::uint8_t> corrupted = wire.bytes;
    corrupted[target] ^= 0x01;
    deliver(srv.server->port(), corrupted, transforms::kAll);
  }
  srv.expect_drained();
  EXPECT_FALSE(srv.end_seen->load(std::memory_order_acquire));
  EXPECT_EQ(srv.server->exchanges(), baseline_exchanges);
}

}  // namespace
}  // namespace bxsoap::transport
