// Chaos against the BXTP v2 streaming path: chunked transfers truncated
// at every chunk boundary (and mid-chunk), against both server models.
// The invariant: a torn stream costs its own connection and nothing else —
// the server drops it cleanly, leaks no stream thread or pooled buffer,
// and keeps serving fresh exchanges.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "bxsa/stream_writer.hpp"
#include "transport/bindings.hpp"
#include "transport/fault.hpp"
#include "transport/framing.hpp"
#include "transport/server.hpp"
#include "transport/stream.hpp"

namespace bxsoap::transport {
namespace {

using namespace bxsoap::soap;

/// A valid whole chunked transfer on the wire, with the offset after the
/// v2 header and after every chunk frame recorded as a cut point.
struct RecordedWire {
  std::vector<std::uint8_t> bytes;
  std::vector<std::size_t> cuts;
};

RecordedWire record_stream_wire(std::size_t chunk_bytes,
                                std::size_t values) {
  MemoryStream out;
  RecordedWire wire;
  BufferPool pool;
  ChunkedFrameWriter<MemoryStream> writer(out, "application/x-chaos");
  wire.cuts.push_back(out.pending());  // right after the v2 header
  std::vector<bxsa::PatchRecord> patches;
  {
    bxsa::StreamWriter w(ByteOrder::kLittle, chunk_bytes, pool,
                         [&](std::vector<std::uint8_t> chunk) {
                           writer.write_data(chunk);
                           wire.cuts.push_back(out.pending());
                           pool.release(std::move(chunk));
                         });
    w.start_document();
    w.start_element(xdm::QName("urn:c", "blob", "c"),
                    std::array<xdm::NamespaceDecl, 1>{{{"c", "urn:c"}}});
    std::vector<double> xs(values, 2.25);
    w.array(xdm::QName("xs"), std::span<const double>(xs));
    w.end_element();
    w.end_document();
    patches = w.finish();
  }
  writer.write_patches(patches);
  wire.cuts.push_back(out.pending());
  writer.finish();
  wire.bytes = out.read_exact(out.pending());
  return wire;
}

/// The exchange counter is committed by the reactor a beat after the last
/// response byte reaches the client; poll instead of racing it.
void expect_exchanges(SoapServer& server, std::size_t want) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (server.exchanges() != want &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(server.exchanges(), want);
}

void expect_drains_to_zero(SoapServer& server) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (server.active_connections() != 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(server.active_connections(), 0u);
}

void echo_handler(StreamRequest& req, ResponseWriter& resp) {
  while (auto c = req.next_chunk()) resp.write_chunk(std::move(*c));
  resp.finish();
}

class StreamChaos : public ::testing::TestWithParam<ConcurrencyModel> {};

INSTANTIATE_TEST_SUITE_P(BothModels, StreamChaos,
                         ::testing::Values(ConcurrencyModel::kThreadPerConnection,
                                           ConcurrencyModel::kEventLoop),
                         [](const auto& info) {
                           return info.param ==
                                          ConcurrencyModel::kThreadPerConnection
                                      ? "Pool"
                                      : "EventLoop";
                         });

TEST_P(StreamChaos, TruncationAtEveryChunkBoundaryDropsCleanly) {
  ServerConfig cfg;
  cfg.encoding = AnyEncoding::from(BxsaEncoding{});
  cfg.handler = [](SoapEnvelope env) { return env; };
  cfg.stream_handler = echo_handler;
  cfg.stream_chunk_bytes = 512;
  cfg.read_timeout_ms = 500;  // a cut stream must not linger past this
  auto server = SoapServer::create(GetParam(), std::move(cfg));

  const RecordedWire wire = record_stream_wire(512, 600);
  ASSERT_GT(wire.cuts.size(), 6u);  // several data chunks plus patches

  for (const std::size_t cut : wire.cuts) {
    SCOPED_TRACE("cut at " + std::to_string(cut));
    TcpStream conn = TcpStream::connect(server->port());
    conn.write_all(std::span(wire.bytes.data(), cut));
    conn.close();
  }
  // Mid-chunk cuts too: inside the first chunk's body and inside the
  // 9-byte chunk header of the second.
  for (const std::size_t cut : {wire.cuts[0] + (wire.cuts[1] - wire.cuts[0]) / 2,
                                wire.cuts[1] + 4}) {
    SCOPED_TRACE("mid cut at " + std::to_string(cut));
    TcpStream conn = TcpStream::connect(server->port());
    conn.write_all(std::span(wire.bytes.data(), cut));
    conn.close();
  }
  expect_drains_to_zero(*server);
  // No truncated transfer ever completed as an exchange.
  EXPECT_EQ(server->exchanges(), 0u);

  // And the server still serves a full streamed echo afterwards.
  TcpClientBinding client(server->port());
  std::vector<std::uint8_t> got;
  client.stream_exchange(
      "application/x-chaos", 512,
      [&](ResponseWriter& tx) {
        tx.write_data(std::vector<std::uint8_t>(2048, 0x5A));
        tx.finish();
      },
      [&](StreamRequest& rx) {
        while (auto d = rx.next_data()) {
          got.insert(got.end(), d->begin(), d->end());
        }
      });
  EXPECT_EQ(got.size(), 2048u);
  expect_exchanges(*server, 1);
  client.close();
  expect_drains_to_zero(*server);
}

TEST_P(StreamChaos, AbandonedMidStreamClientsDoNotStarveOthers) {
  // Several clients start streams and vanish mid-transfer while a healthy
  // client keeps echoing; the healthy one must never fail.
  ServerConfig cfg;
  cfg.encoding = AnyEncoding::from(BxsaEncoding{});
  cfg.handler = [](SoapEnvelope env) { return env; };
  cfg.stream_handler = echo_handler;
  cfg.stream_chunk_bytes = 1024;
  cfg.read_timeout_ms = 300;
  auto server = SoapServer::create(GetParam(), std::move(cfg));

  const RecordedWire wire = record_stream_wire(1024, 2000);
  std::thread saboteur([&] {
    for (int i = 0; i < 8; ++i) {
      const std::size_t cut = wire.cuts[1 + (static_cast<std::size_t>(i) %
                                             (wire.cuts.size() - 1))];
      try {
        TcpStream conn = TcpStream::connect(server->port());
        conn.write_all(std::span(wire.bytes.data(), cut));
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        conn.close();
      } catch (const Error&) {
        // Connection refused/reset under churn is the saboteur's problem.
      }
    }
  });

  TcpClientBinding client(server->port());
  for (int round = 0; round < 6; ++round) {
    std::size_t got = 0;
    client.stream_exchange(
        "application/x-chaos", 1024,
        [&](ResponseWriter& tx) {
          for (int i = 0; i < 4; ++i) {
            tx.write_data(std::vector<std::uint8_t>(1024, 0x11));
          }
          tx.finish();
        },
        [&](StreamRequest& rx) {
          while (auto d = rx.next_data()) got += d->size();
        });
    EXPECT_EQ(got, 4u * 1024u) << "round " << round;
  }
  saboteur.join();
  client.close();
  expect_drains_to_zero(*server);
}

}  // namespace
}  // namespace bxsoap::transport
