// Chaos against the BXTP v3 negotiation and dictionary layer: truncated
// and corrupt Hellos, unknown message flags, dictionary references into a
// table the server never admitted, and handshake replays. The contract is
// strict validation (FORMAT.md §"BXTP v3"): every violation cuts exactly
// the offending connection, synchronously, and the server keeps serving
// everyone else.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "bxsa/dict.hpp"
#include "services/verification.hpp"
#include "soap/engine.hpp"
#include "transport/bindings.hpp"
#include "transport/framing.hpp"
#include "transport/server.hpp"
#include "workload/lead.hpp"

namespace bxsoap::transport {
namespace {

using namespace bxsoap::soap;

class V3Chaos : public ::testing::TestWithParam<ConcurrencyModel> {
 protected:
  static std::unique_ptr<SoapServer> start() {
    ServerConfig cfg;
    cfg.encoding = AnyEncoding::from(BxsaEncoding{});
    cfg.handler = services::verification_handler;
    if (GetParam() == ConcurrencyModel::kEventLoop) {
      cfg.reactor_threads = 2;
      cfg.worker_threads = 2;
    }
    return SoapServer::create(GetParam(), std::move(cfg));
  }

  /// The connection was cut if the next read sees EOF/reset instead of
  /// bytes. The 2 s read timeout is a hang detector, not the contract.
  static bool cut(TcpStream& stream) {
    try {
      std::uint8_t byte;
      stream.set_read_timeout(2000);
      stream.read_exact(&byte, 1);
      return false;
    } catch (const TransportError&) {
      return true;
    }
  }

  /// The server still serves well-formed traffic after the abuse.
  static void expect_still_serving(SoapServer& server) {
    SoapEngine<BxsaEncoding, TcpClientBinding> client(
        BxsaEncoding{}, TcpClientBinding(server.port()));
    const SoapEnvelope resp = client.call(
        services::make_data_request(workload::make_lead_dataset(9)));
    const auto outcome = services::parse_verify_response(resp);
    EXPECT_TRUE(outcome.ok);
    EXPECT_EQ(outcome.count, 9u);
  }

  static std::vector<std::uint8_t> request_payload(std::size_t n) {
    const SoapEnvelope env =
        services::make_data_request(workload::make_lead_dataset(n));
    return BxsaEncoding{}.serialize(env.document());
  }
};

TEST_P(V3Chaos, TruncatedHelloNeverWedgesTheServer) {
  auto server = start();
  {
    // A full Hello is 18 bytes (12-byte body since the auth flag); abandon
    // it mid-body.
    TcpStream stream = TcpStream::connect(server->port());
    ByteWriter hello;
    encode_hello(hello, HelloFrame{});
    ASSERT_EQ(hello.size(), 18u);
    stream.write_all(std::span(hello.bytes()).first(9));
  }  // close with the handshake half-sent
  expect_still_serving(*server);
}

TEST_P(V3Chaos, CorruptHelloKindCutsTheConnection) {
  auto server = start();
  TcpStream stream = TcpStream::connect(server->port());
  ByteWriter w;
  w.write_bytes(kFrameMagic, sizeof(kFrameMagic));
  w.write_u8(kFrameVersionNegotiated);
  w.write_u8(9);  // no such frame kind
  stream.write_all(w.bytes());
  EXPECT_TRUE(cut(stream));
  expect_still_serving(*server);
}

TEST_P(V3Chaos, UnknownMessageFlagsCutTheConnection) {
  auto server = start();
  TcpStream stream = TcpStream::connect(server->port());
  write_hello(stream, HelloFrame{});
  ASSERT_EQ(read_accept(stream).version, kFrameVersionNegotiated);
  ByteWriter w;
  const std::size_t len_pos =
      begin_frame_v3(w, 0x80, BxsaEncoding::content_type());
  const auto payload = request_payload(4);
  w.write_bytes(payload);
  end_frame(w, len_pos);
  stream.write_all(w.bytes());
  EXPECT_TRUE(cut(stream));
  expect_still_serving(*server);
}

TEST_P(V3Chaos, DictReferenceBeyondTheMirrorCutsTheConnection) {
  auto server = start();
  TcpStream stream = TcpStream::connect(server->port());
  HelloFrame hello;
  hello.dict_max_entries = bxsa::DictLimits{}.max_entries;
  hello.dict_max_bytes = bxsa::DictLimits{}.max_bytes;
  write_hello(stream, hello);
  const AcceptFrame accept = read_accept(stream);
  ASSERT_EQ(accept.version, kFrameVersionNegotiated);
  ASSERT_GT(accept.dict_max_entries, 0u);

  // Encode the same request twice through a LOCAL dictionary, then send
  // only the second output: it references table entries the server's
  // mirror never saw admitted. Strict validation must cut, not guess.
  bxsa::DictEncoder enc({accept.dict_max_entries, accept.dict_max_bytes});
  const auto payload = request_payload(11);
  ByteWriter warmup;
  ASSERT_FALSE(enc.encode(payload, warmup));
  ByteWriter frame;
  const std::size_t len_pos = begin_frame_v3(frame, v3flags::kDictEncoded,
                                             BxsaEncoding::content_type());
  ASSERT_FALSE(enc.encode(payload, frame));
  end_frame(frame, len_pos);
  stream.write_all(frame.bytes());
  EXPECT_TRUE(cut(stream));
  expect_still_serving(*server);
}

TEST_P(V3Chaos, DictCodedMessageWithoutANegotiatedTableCutsTheConnection) {
  auto server = start();
  TcpStream stream = TcpStream::connect(server->port());
  // No Hello at all: kDictEncoded is meaningless and must not be guessed
  // around.
  ByteWriter frame;
  const std::size_t len_pos = begin_frame_v3(frame, v3flags::kDictEncoded,
                                             BxsaEncoding::content_type());
  bxsa::DictEncoder enc(bxsa::DictLimits{});
  enc.encode(request_payload(5), frame);
  end_frame(frame, len_pos);
  stream.write_all(frame.bytes());
  EXPECT_TRUE(cut(stream));
  expect_still_serving(*server);
}

TEST_P(V3Chaos, SecondHelloCutsTheConnection) {
  auto server = start();
  TcpStream stream = TcpStream::connect(server->port());
  write_hello(stream, HelloFrame{});
  ASSERT_EQ(read_accept(stream).version, kFrameVersionNegotiated);
  write_hello(stream, HelloFrame{});  // renegotiation is not a thing
  EXPECT_TRUE(cut(stream));
  expect_still_serving(*server);
}

INSTANTIATE_TEST_SUITE_P(Models, V3Chaos,
                         ::testing::Values(
                             ConcurrencyModel::kThreadPerConnection,
                             ConcurrencyModel::kEventLoop),
                         [](const auto& info) {
                           return info.param ==
                                          ConcurrencyModel::kThreadPerConnection
                                      ? "pool"
                                      : "event";
                         });

}  // namespace
}  // namespace bxsoap::transport
