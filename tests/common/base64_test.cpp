#include "common/base64.hpp"

#include <gtest/gtest.h>

#include "common/prng.hpp"

namespace bxsoap {
namespace {

std::vector<std::uint8_t> bytes_of(std::string_view s) {
  return {s.begin(), s.end()};
}

TEST(Base64, Rfc4648Vectors) {
  EXPECT_EQ(base64_encode(bytes_of("")), "");
  EXPECT_EQ(base64_encode(bytes_of("f")), "Zg==");
  EXPECT_EQ(base64_encode(bytes_of("fo")), "Zm8=");
  EXPECT_EQ(base64_encode(bytes_of("foo")), "Zm9v");
  EXPECT_EQ(base64_encode(bytes_of("foob")), "Zm9vYg==");
  EXPECT_EQ(base64_encode(bytes_of("fooba")), "Zm9vYmE=");
  EXPECT_EQ(base64_encode(bytes_of("foobar")), "Zm9vYmFy");
}

TEST(Base64, DecodeVectors) {
  EXPECT_EQ(base64_decode("Zm9vYmFy"), bytes_of("foobar"));
  EXPECT_EQ(base64_decode("Zg=="), bytes_of("f"));
  EXPECT_EQ(base64_decode(""), bytes_of(""));
}

TEST(Base64, EncodedSizeFormula) {
  for (std::size_t n : {0ul, 1ul, 2ul, 3ul, 4ul, 57ul, 1000ul}) {
    std::vector<std::uint8_t> data(n, 0xAB);
    EXPECT_EQ(base64_encode(data).size(), base64_encoded_size(n)) << n;
  }
}

TEST(Base64, RandomRoundTrip) {
  SplitMix64 rng(21);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint8_t> data(rng.next_below(300));
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.next());
    EXPECT_EQ(base64_decode(base64_encode(data)), data);
  }
}

TEST(Base64, OverheadIsOneThird) {
  std::vector<std::uint8_t> data(12000, 0x5A);
  const auto encoded = base64_encode(data);
  EXPECT_EQ(encoded.size(), 16000u) << "the attachment-era 33% tax";
}

TEST(Base64, RejectsBadLength) {
  EXPECT_THROW(base64_decode("Zg="), DecodeError);
  EXPECT_THROW(base64_decode("Z"), DecodeError);
}

TEST(Base64, RejectsBadCharacters) {
  EXPECT_THROW(base64_decode("Zm9v!A=="), DecodeError);
  EXPECT_THROW(base64_decode("Zm 9"), DecodeError) << "whitespace is not ours";
}

TEST(Base64, RejectsBadPadding) {
  EXPECT_THROW(base64_decode("=Zm9"), DecodeError);
  EXPECT_THROW(base64_decode("Zm==Zm9v"), DecodeError)
      << "padding only in the final quantum";
  EXPECT_THROW(base64_decode("Z==="), DecodeError);
}

}  // namespace
}  // namespace bxsoap
