// BufferPool: size-class policy, counters, SharedBuffer recycling, and a
// multi-threaded stress run.
#include "common/buffer_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <numeric>
#include <thread>
#include <vector>

namespace bxsoap {
namespace {

TEST(BufferPool, FirstAcquireIsAMissWithRoundedCapacity) {
  BufferPool pool;
  auto buf = pool.acquire(1000);
  EXPECT_TRUE(buf.empty());
  EXPECT_GE(buf.capacity(), 1024u);  // rounded up to the next power of two
  const auto s = pool.stats();
  EXPECT_EQ(s.hit, 0u);
  EXPECT_EQ(s.miss, 1u);
}

TEST(BufferPool, ReleaseThenAcquireHits) {
  BufferPool pool;
  auto buf = pool.acquire(4096);
  buf.resize(100, 0xAB);  // dirty; the pool must hand it back cleared
  const std::size_t cap = buf.capacity();
  pool.release(std::move(buf));
  EXPECT_EQ(pool.stats().recycled_bytes, cap);
  EXPECT_EQ(pool.pooled_buffers(), 1u);

  auto again = pool.acquire(4096);
  EXPECT_TRUE(again.empty());
  EXPECT_GE(again.capacity(), 4096u);
  const auto s = pool.stats();
  EXPECT_EQ(s.hit, 1u);
  EXPECT_EQ(s.miss, 1u);
  EXPECT_EQ(pool.pooled_buffers(), 0u);
}

TEST(BufferPool, LargerClassSatisfiesSmallerRequest) {
  BufferPool pool;
  auto big = pool.acquire(1 << 20);
  pool.release(std::move(big));
  // A smaller request may be served by the pooled 1 MiB buffer.
  auto small = pool.acquire(512);
  EXPECT_EQ(pool.stats().hit, 1u);
  EXPECT_GE(small.capacity(), 512u);
}

TEST(BufferPool, AcquireNeverRegrowsFromItsClass) {
  BufferPool pool;
  // A buffer whose capacity is mid-class files under the class it fully
  // covers, so acquire(its class size) never triggers an immediate regrow.
  std::vector<std::uint8_t> odd;
  odd.reserve(3000);  // covers the 2048 class, not 4096
  pool.release(std::move(odd));
  auto got = pool.acquire(2048);
  EXPECT_EQ(pool.stats().hit, 1u);
  EXPECT_GE(got.capacity(), 2048u);
  // And a 4096 request must NOT be served by the 3000-capacity buffer.
  BufferPool pool2;
  std::vector<std::uint8_t> odd2;
  odd2.reserve(3000);
  pool2.release(std::move(odd2));
  auto bigger = pool2.acquire(4096);
  EXPECT_EQ(pool2.stats().miss, 1u);
  EXPECT_GE(bigger.capacity(), 4096u);
}

TEST(BufferPool, OversizedAndTinyBuffersAreNotPooled) {
  BufferPool::Config cfg;
  cfg.max_class_bytes = 1 << 16;
  BufferPool pool(cfg);
  std::vector<std::uint8_t> huge;
  huge.reserve((1 << 16) + 1);
  pool.release(std::move(huge));
  std::vector<std::uint8_t> tiny;  // capacity 0
  pool.release(std::move(tiny));
  EXPECT_EQ(pool.pooled_buffers(), 0u);
}

TEST(BufferPool, PerClassCapBoundsPooledBuffers) {
  BufferPool::Config cfg;
  cfg.max_buffers_per_class = 2;
  cfg.thread_cache_buffers_per_class = 0;  // shared tier only
  BufferPool pool(cfg);
  for (int i = 0; i < 5; ++i) {
    std::vector<std::uint8_t> b;
    b.reserve(1024);
    pool.release(std::move(b));
  }
  EXPECT_EQ(pool.pooled_buffers(), 2u);
}

TEST(BufferPool, ThreadCacheFillsFirstThenSpillsToSharedTier) {
  BufferPool::Config cfg;
  cfg.thread_cache_buffers_per_class = 2;
  cfg.max_buffers_per_class = 1;
  BufferPool pool(cfg);
  // 4 releases into one class: 2 land in this thread's cache, 1 spills to
  // the shared tier, the 4th frees (both tiers full).
  for (int i = 0; i < 4; ++i) {
    std::vector<std::uint8_t> b;
    b.reserve(1024);
    pool.release(std::move(b));
  }
  EXPECT_EQ(pool.pooled_buffers(), 3u);
  // All three are reachable from this thread: cache first, then shared.
  for (int i = 0; i < 3; ++i) (void)pool.acquire(1024);
  EXPECT_EQ(pool.stats().hit, 3u);
  EXPECT_EQ(pool.pooled_buffers(), 0u);
}

TEST(BufferPool, AnotherThreadsCacheIsInvisibleButSpillIsShared) {
  BufferPool::Config cfg;
  cfg.thread_cache_buffers_per_class = 4;
  cfg.max_buffers_per_class = 16;
  BufferPool pool(cfg);
  std::thread releaser([&pool] {
    for (int i = 0; i < 5; ++i) {
      std::vector<std::uint8_t> b;
      b.reserve(2048);
      pool.release(std::move(b));
    }
  });
  releaser.join();
  // 4 buffers sit in the (now idle) releaser thread's cache, 1 spilled to
  // the shared tier. This thread can only reach the spilled one.
  EXPECT_EQ(pool.pooled_buffers(), 5u);
  (void)pool.acquire(2048);
  EXPECT_EQ(pool.stats().hit, 1u);
  (void)pool.acquire(2048);
  EXPECT_EQ(pool.stats().miss, 1u);
}

TEST(BufferPool, DestroyedPoolDrainsItsThreadCaches) {
  auto pool = std::make_unique<BufferPool>();
  auto buf = pool->acquire(4096);
  pool->release(std::move(buf));  // sits in this thread's cache
  EXPECT_EQ(pool->pooled_buffers(), 1u);
  pool.reset();  // must drop the cached buffer, not leak or dangle
  // A fresh pool on this thread starts cold: pool ids are never reused, so
  // it cannot inherit the dead pool's cache slot.
  BufferPool fresh;
  (void)fresh.acquire(4096);
  EXPECT_EQ(fresh.stats().miss, 1u);
  EXPECT_EQ(fresh.stats().hit, 0u);
}

TEST(SharedBuffer, RecyclesIntoPoolOnLastRelease) {
  BufferPool pool;
  {
    auto buf = pool.acquire(2048);
    buf.resize(16, 7);
    SharedBuffer wire = SharedBuffer::adopt(std::move(buf), &pool);
    ASSERT_TRUE(wire.valid());
    EXPECT_EQ(wire.bytes().size(), 16u);
    std::shared_ptr<const void> extra = wire.handle();
    // Both references alive: nothing recycled yet.
    EXPECT_EQ(pool.pooled_buffers(), 0u);
  }
  // SharedBuffer and handle both dropped: the storage is back in the pool.
  EXPECT_EQ(pool.pooled_buffers(), 1u);
  auto again = pool.acquire(2048);
  EXPECT_EQ(pool.stats().hit, 1u);
}

TEST(SharedBuffer, HandleOutlivesTheSharedBuffer) {
  BufferPool pool;
  std::shared_ptr<const void> keepalive;
  const std::uint8_t* data = nullptr;
  {
    std::vector<std::uint8_t> bytes(1024);
    std::iota(bytes.begin(), bytes.end(), std::uint8_t{0});
    SharedBuffer wire = SharedBuffer::adopt(std::move(bytes), &pool);
    data = wire.bytes().data();
    keepalive = wire.handle();
  }
  // The handle alone pins the bytes (this is what a view-backed
  // ArrayElement holds after the decode scope ends).
  EXPECT_EQ(pool.pooled_buffers(), 0u);
  EXPECT_EQ(data[63], 63);
  keepalive.reset();
  EXPECT_EQ(pool.pooled_buffers(), 1u);
}

TEST(BufferPool, MultiThreadedStress) {
  BufferPool pool;
  constexpr int kThreads = 8;
  constexpr int kIterations = 2000;
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool, &failed, t] {
      for (int i = 0; i < kIterations; ++i) {
        const std::size_t want = 64u << (i % 8);
        auto buf = pool.acquire(want);
        if (!buf.empty() || buf.capacity() < want) {
          failed.store(true);
          return;
        }
        // Write a thread-unique pattern; a data race on shared storage
        // would trip TSan and likely corrupt the size check above.
        buf.resize(want, static_cast<std::uint8_t>(t));
        if (i % 3 == 0) {
          SharedBuffer wire = SharedBuffer::adopt(std::move(buf), &pool);
          auto h = wire.handle();
          if (wire.bytes().size() != want) {
            failed.store(true);
            return;
          }
        } else {
          pool.release(std::move(buf));
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(failed.load());
  const auto s = pool.stats();
  EXPECT_EQ(s.hit + s.miss, kThreads * kIterations);
  EXPECT_GT(s.hit, 0u);
  EXPECT_GT(s.recycled_bytes, 0u);
}

// TSan target for the per-thread caches: 8 threads churn acquire/release
// while buffers also migrate across threads (acquired on one, dropped on
// another via SharedBuffer) and the main thread polls pooled_buffers(),
// exercising every cache's mutex from a foreign thread concurrently with its
// owner's fast path.
TEST(BufferPool, ThreadCacheChurnAcrossThreads) {
  BufferPool pool;
  constexpr int kThreads = 8;
  constexpr int kIterations = 1000;
  std::mutex handoff_mu;
  std::vector<SharedBuffer> handoff;
  std::atomic<bool> failed{false};
  std::atomic<int> running{kThreads};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIterations; ++i) {
        const std::size_t want = 256u << (i % 6);
        auto buf = pool.acquire(want);
        if (buf.capacity() < want) {
          failed.store(true);
          break;
        }
        buf.resize(want, static_cast<std::uint8_t>(t));
        if (i % 2 == 0) {
          pool.release(std::move(buf));  // same-thread recycle
        } else {
          // Park the buffer for some other thread to drop: the release then
          // lands in a different thread's cache than the acquire came from.
          SharedBuffer wire = SharedBuffer::adopt(std::move(buf), &pool);
          std::lock_guard<std::mutex> lock(handoff_mu);
          handoff.push_back(std::move(wire));
          if (handoff.size() > 16) handoff.erase(handoff.begin());
        }
      }
      running.fetch_sub(1);
    });
  }
  while (running.load() > 0) {
    (void)pool.pooled_buffers();  // foreign-thread walk of every cache
    std::this_thread::yield();
  }
  for (auto& th : threads) th.join();
  {
    std::lock_guard<std::mutex> lock(handoff_mu);
    handoff.clear();
  }
  EXPECT_FALSE(failed.load());
  const auto s = pool.stats();
  EXPECT_EQ(s.hit + s.miss, kThreads * kIterations);
  EXPECT_GT(s.hit, 0u);
}

}  // namespace
}  // namespace bxsoap
