#include "common/buffer.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace bxsoap {
namespace {

TEST(ByteWriter, StartsEmpty) {
  ByteWriter w;
  EXPECT_EQ(w.size(), 0u);
  EXPECT_TRUE(w.bytes().empty());
}

TEST(ByteWriter, WriteU8AppendsInOrder) {
  ByteWriter w;
  w.write_u8(0x01);
  w.write_u8(0xFF);
  ASSERT_EQ(w.size(), 2u);
  EXPECT_EQ(w.bytes()[0], 0x01);
  EXPECT_EQ(w.bytes()[1], 0xFF);
}

TEST(ByteWriter, WriteLittleEndianU32) {
  ByteWriter w;
  w.write<std::uint32_t>(0x11223344, ByteOrder::kLittle);
  ASSERT_EQ(w.size(), 4u);
  EXPECT_EQ(w.bytes()[0], 0x44);
  EXPECT_EQ(w.bytes()[1], 0x33);
  EXPECT_EQ(w.bytes()[2], 0x22);
  EXPECT_EQ(w.bytes()[3], 0x11);
}

TEST(ByteWriter, WriteBigEndianU32) {
  ByteWriter w;
  w.write<std::uint32_t>(0x11223344, ByteOrder::kBig);
  ASSERT_EQ(w.size(), 4u);
  EXPECT_EQ(w.bytes()[0], 0x11);
  EXPECT_EQ(w.bytes()[3], 0x44);
}

TEST(ByteWriter, WriteStringAndBytes) {
  ByteWriter w;
  w.write_string("ab");
  const std::uint8_t extra[] = {0x10, 0x20};
  w.write_bytes(extra, 2);
  ASSERT_EQ(w.size(), 4u);
  EXPECT_EQ(w.bytes()[0], 'a');
  EXPECT_EQ(w.bytes()[3], 0x20);
}

TEST(ByteWriter, PaddingWritesZeros) {
  ByteWriter w;
  w.write_u8(0xAA);
  w.write_padding(3);
  ASSERT_EQ(w.size(), 4u);
  EXPECT_EQ(w.bytes()[1], 0x00);
  EXPECT_EQ(w.bytes()[3], 0x00);
}

TEST(ByteWriter, PatchBytesOverwritesInPlace) {
  ByteWriter w;
  w.write_u8(0);
  w.write_u8(0);
  w.write_u8(0);
  const std::uint8_t patch[] = {0xDE, 0xAD};
  w.patch_bytes(1, patch, 2);
  EXPECT_EQ(w.bytes()[0], 0x00);
  EXPECT_EQ(w.bytes()[1], 0xDE);
  EXPECT_EQ(w.bytes()[2], 0xAD);
}

TEST(ByteWriter, PatchOutOfRangeThrows) {
  ByteWriter w;
  w.write_u8(0);
  const std::uint8_t patch[] = {1, 2};
  EXPECT_THROW(w.patch_bytes(0, patch, 2), EncodeError);
}

TEST(ByteWriter, WriteArrayHostOrderRoundTrip) {
  ByteWriter w;
  const std::vector<double> vals = {1.5, -2.25, 1e300};
  w.write_array<double>(vals, host_byte_order());
  ByteReader r(w.bytes());
  auto back = r.read_array<double>(3, host_byte_order());
  EXPECT_EQ(back, vals);
}

TEST(ByteWriter, WriteArraySwappedOrderRoundTrip) {
  const ByteOrder other = host_byte_order() == ByteOrder::kLittle
                              ? ByteOrder::kBig
                              : ByteOrder::kLittle;
  ByteWriter w;
  const std::vector<std::int32_t> vals = {1, -1, 0x12345678};
  w.write_array<std::int32_t>(vals, other);
  ByteReader r(w.bytes());
  auto back = r.read_array<std::int32_t>(3, other);
  EXPECT_EQ(back, vals);
}

TEST(ByteReader, ReadPastEndThrows) {
  const std::uint8_t data[] = {1, 2};
  ByteReader r(data, 2);
  r.skip(2);
  EXPECT_TRUE(r.at_end());
  EXPECT_THROW(r.read_u8(), DecodeError);
}

TEST(ByteReader, SkipPastEndThrows) {
  const std::uint8_t data[] = {1};
  ByteReader r(data, 1);
  EXPECT_THROW(r.skip(2), DecodeError);
}

TEST(ByteReader, SeekAndPosition) {
  const std::uint8_t data[] = {10, 20, 30};
  ByteReader r(data, 3);
  r.seek(2);
  EXPECT_EQ(r.position(), 2u);
  EXPECT_EQ(r.read_u8(), 30);
  EXPECT_THROW(r.seek(4), DecodeError);
}

TEST(ByteReader, PeekDoesNotAdvance) {
  const std::uint8_t data[] = {42};
  ByteReader r(data, 1);
  EXPECT_EQ(r.peek_u8(), 42);
  EXPECT_EQ(r.position(), 0u);
  EXPECT_EQ(r.read_u8(), 42);
}

TEST(ByteReader, ReadArrayCountOverflowThrows) {
  const std::uint8_t data[] = {1, 2, 3, 4};
  ByteReader r(data, 4);
  // Huge count must not overflow the size computation.
  EXPECT_THROW(r.read_array<std::uint64_t>(
                   std::numeric_limits<std::size_t>::max() / 2,
                   ByteOrder::kLittle),
               DecodeError);
}

TEST(ByteReader, ReadStringExact) {
  const std::uint8_t data[] = {'h', 'i', '!'};
  ByteReader r(data, 3);
  EXPECT_EQ(r.read_string(3), "hi!");
  EXPECT_TRUE(r.at_end());
}

}  // namespace
}  // namespace bxsoap
