#include "common/endian.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace bxsoap {
namespace {

TEST(Endian, HostOrderIsConsistentWithStdEndian) {
  if constexpr (std::endian::native == std::endian::little) {
    EXPECT_EQ(host_byte_order(), ByteOrder::kLittle);
  } else {
    EXPECT_EQ(host_byte_order(), ByteOrder::kBig);
  }
}

TEST(Endian, StoreLoadU16BothOrders) {
  std::uint8_t buf[2];
  store<std::uint16_t>(0xABCD, ByteOrder::kBig, buf);
  EXPECT_EQ(buf[0], 0xAB);
  EXPECT_EQ(buf[1], 0xCD);
  EXPECT_EQ(load<std::uint16_t>(buf, ByteOrder::kBig), 0xABCD);

  store<std::uint16_t>(0xABCD, ByteOrder::kLittle, buf);
  EXPECT_EQ(buf[0], 0xCD);
  EXPECT_EQ(buf[1], 0xAB);
  EXPECT_EQ(load<std::uint16_t>(buf, ByteOrder::kLittle), 0xABCD);
}

TEST(Endian, StoreLoadU64BigEndianLayout) {
  std::uint8_t buf[8];
  store<std::uint64_t>(0x0102030405060708ULL, ByteOrder::kBig, buf);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(buf[i], i + 1);
  }
}

TEST(Endian, SignedRoundTrip) {
  std::uint8_t buf[4];
  store<std::int32_t>(-123456789, ByteOrder::kBig, buf);
  EXPECT_EQ(load<std::int32_t>(buf, ByteOrder::kBig), -123456789);
  store<std::int32_t>(-1, ByteOrder::kLittle, buf);
  EXPECT_EQ(load<std::int32_t>(buf, ByteOrder::kLittle), -1);
}

TEST(Endian, DoubleRoundTripBothOrders) {
  std::uint8_t buf[8];
  const double vals[] = {0.0, -0.0, 1.5, -2.75e-300, 6.02214076e23,
                         std::numeric_limits<double>::infinity()};
  for (double v : vals) {
    for (ByteOrder o : {ByteOrder::kLittle, ByteOrder::kBig}) {
      store(v, o, buf);
      EXPECT_EQ(load<double>(buf, o), v);
    }
  }
}

TEST(Endian, NaNPayloadPreservedBitwise) {
  std::uint8_t buf[8];
  const std::uint64_t nan_bits = 0x7FF8DEADBEEF0001ULL;
  double v;
  std::memcpy(&v, &nan_bits, 8);
  store(v, ByteOrder::kBig, buf);
  const double back = load<double>(buf, ByteOrder::kBig);
  std::uint64_t back_bits;
  std::memcpy(&back_bits, &back, 8);
  EXPECT_EQ(back_bits, nan_bits);
}

TEST(Endian, FloatCrossOrderBytesAreReversed) {
  std::uint8_t le[4], be[4];
  store(3.14f, ByteOrder::kLittle, le);
  store(3.14f, ByteOrder::kBig, be);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(le[i], be[3 - i]);
  }
}

TEST(Endian, ByteswapArrayInPlace) {
  std::uint32_t vals[] = {0x11223344, 0xAABBCCDD};
  byteswap_array(vals, 2);
  EXPECT_EQ(vals[0], 0x44332211u);
  EXPECT_EQ(vals[1], 0xDDCCBBAAu);
  byteswap_array(vals, 2);
  EXPECT_EQ(vals[0], 0x11223344u);
}

TEST(Endian, SingleByteUnaffectedByOrder) {
  std::uint8_t buf[1];
  store<std::uint8_t>(0x7F, ByteOrder::kBig, buf);
  EXPECT_EQ(buf[0], 0x7F);
  store<std::uint8_t>(0x7F, ByteOrder::kLittle, buf);
  EXPECT_EQ(buf[0], 0x7F);
}

}  // namespace
}  // namespace bxsoap
