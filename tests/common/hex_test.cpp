#include "common/hex.hpp"

#include <gtest/gtest.h>

namespace bxsoap {
namespace {

TEST(Hex, ToHexBasic) {
  const std::uint8_t data[] = {0x00, 0x0A, 0xFF, 0x42};
  EXPECT_EQ(to_hex({data, 4}), "000aff42");
}

TEST(Hex, ToHexEmpty) {
  EXPECT_EQ(to_hex({}), "");
}

TEST(Hex, DumpShowsAsciiGutter) {
  const std::uint8_t data[] = {'H', 'i', 0x00, 0x7F};
  const std::string d = hex_dump({data, 4});
  EXPECT_NE(d.find("48 69 00 7f"), std::string::npos);
  EXPECT_NE(d.find("|Hi..|"), std::string::npos);
}

TEST(Hex, DumpMultiLine) {
  std::vector<std::uint8_t> data(20, 0xAB);
  const std::string d = hex_dump(data);
  // 20 bytes -> two lines, second line offset 0x10.
  EXPECT_NE(d.find("00000010"), std::string::npos);
  EXPECT_EQ(std::count(d.begin(), d.end(), '\n'), 2);
}

}  // namespace
}  // namespace bxsoap
