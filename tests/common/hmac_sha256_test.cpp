// HMAC-SHA-256 (common/hmac_sha256.hpp) pinned against published vectors:
// FIPS 180-4 / NIST examples for the bare hash, RFC 4231 test cases 1-4, 6
// and 7 for the keyed MAC (case 5 truncates the tag, which this
// implementation deliberately does not support). The streaming security
// layer rests on these being byte-exact.
#include "common/hmac_sha256.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/hex.hpp"

namespace bxsoap {
namespace {

std::string sha256_hex(std::string_view msg) {
  std::uint8_t out[Sha256::kDigestSize];
  Sha256 h;
  h.update(msg);
  h.finalize(out);
  return to_hex({out, sizeof(out)});
}

TEST(Sha256, NistShortVectors) {
  // FIPS 180-4 examples (also NIST CAVP SHA256ShortMsg).
  EXPECT_EQ(sha256_hex(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(sha256_hex("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(
      sha256_hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAsCrossesManyBlocks) {
  Sha256 h;
  const std::string chunk(997, 'a');  // deliberately not block-aligned
  std::size_t fed = 0;
  while (fed < 1'000'000) {
    const std::size_t n = std::min<std::size_t>(chunk.size(), 1'000'000 - fed);
    h.update(std::string_view(chunk).substr(0, n));
    fed += n;
  }
  std::uint8_t out[Sha256::kDigestSize];
  h.finalize(out);
  EXPECT_EQ(to_hex({out, sizeof(out)}),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalEqualsOneShot) {
  const std::string msg = "The quick brown fox jumps over the lazy dog";
  Sha256 whole;
  whole.update(msg);
  std::uint8_t a[Sha256::kDigestSize];
  whole.finalize(a);

  Sha256 pieces;
  for (char c : msg) pieces.update(std::string_view(&c, 1));
  std::uint8_t b[Sha256::kDigestSize];
  pieces.finalize(b);
  EXPECT_TRUE(constant_time_equal(a, b));
}

std::string hmac_hex(std::span<const std::uint8_t> key, std::string_view msg) {
  std::uint8_t tag[HmacSha256::kTagSize];
  HmacSha256 mac(key);
  mac.update(msg);
  mac.finalize(tag);
  return to_hex({tag, sizeof(tag)});
}

TEST(HmacSha256, Rfc4231Case1) {
  const std::vector<std::uint8_t> key(20, 0x0b);
  EXPECT_EQ(hmac_hex(key, "Hi There"),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacSha256, Rfc4231Case2) {
  const std::string key = "Jefe";
  std::uint8_t tag[HmacSha256::kTagSize];
  HmacSha256 mac{std::string_view(key)};
  mac.update(std::string_view("what do ya want for nothing?"));
  mac.finalize(tag);
  EXPECT_EQ(to_hex({tag, sizeof(tag)}),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacSha256, Rfc4231Case3) {
  const std::vector<std::uint8_t> key(20, 0xaa);
  const std::string msg(50, '\xdd');
  EXPECT_EQ(hmac_hex(key, msg),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(HmacSha256, Rfc4231Case4) {
  std::vector<std::uint8_t> key(25);
  for (std::size_t i = 0; i < key.size(); ++i) {
    key[i] = static_cast<std::uint8_t>(i + 1);
  }
  const std::string msg(50, '\xcd');
  EXPECT_EQ(hmac_hex(key, msg),
            "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b");
}

TEST(HmacSha256, Rfc4231Case6KeyLongerThanBlock) {
  const std::vector<std::uint8_t> key(131, 0xaa);
  EXPECT_EQ(hmac_hex(key, "Test Using Larger Than Block-Size Key - Hash"
                          " Key First"),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacSha256, Rfc4231Case7LongKeyLongData) {
  const std::vector<std::uint8_t> key(131, 0xaa);
  EXPECT_EQ(hmac_hex(key,
                     "This is a test using a larger than block-size key and a"
                     " larger than block-size data. The key needs to be hashed"
                     " before being used by the HMAC algorithm."),
            "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2");
}

TEST(HmacSha256, ResetRewindsToFreshKeyedState) {
  const std::vector<std::uint8_t> key(20, 0x0b);
  HmacSha256 mac(key);
  mac.update(std::string_view("poisoned earlier message"));
  std::uint8_t scratch[HmacSha256::kTagSize];
  mac.finalize(scratch);

  mac.reset();
  mac.update(std::string_view("Hi There"));
  std::uint8_t tag[HmacSha256::kTagSize];
  mac.finalize(tag);
  EXPECT_EQ(to_hex({tag, sizeof(tag)}),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(ConstantTimeEqual, DisagreesOnAnyDifference) {
  const std::uint8_t a[4] = {1, 2, 3, 4};
  const std::uint8_t b[4] = {1, 2, 3, 4};
  const std::uint8_t c[4] = {1, 2, 3, 5};
  const std::uint8_t d[3] = {1, 2, 3};
  EXPECT_TRUE(constant_time_equal(a, b));
  EXPECT_FALSE(constant_time_equal(a, c));
  EXPECT_FALSE(constant_time_equal(a, d));  // length mismatch
}

}  // namespace
}  // namespace bxsoap
