#include "common/lzss.hpp"

#include <gtest/gtest.h>

#include "common/prng.hpp"

namespace bxsoap {
namespace {

std::vector<std::uint8_t> bytes_of(std::string_view s) {
  return {s.begin(), s.end()};
}

void expect_round_trip(const std::vector<std::uint8_t>& data) {
  const auto compressed = lzss_compress(data);
  const auto back = lzss_decompress(compressed);
  EXPECT_EQ(back, data);
}

TEST(Lzss, Empty) { expect_round_trip({}); }

TEST(Lzss, ShortLiteralOnly) { expect_round_trip(bytes_of("abc")); }

TEST(Lzss, RepetitionCompresses) {
  std::vector<std::uint8_t> data(10000, 'x');
  const auto compressed = lzss_compress(data);
  EXPECT_LT(compressed.size(), data.size() / 20);
  EXPECT_EQ(lzss_decompress(compressed), data);
}

TEST(Lzss, OverlappingMatch) {
  // "abcabcabc..." forces matches with distance < length.
  std::vector<std::uint8_t> data;
  for (int i = 0; i < 1000; ++i) data.push_back("abc"[i % 3]);
  expect_round_trip(data);
}

TEST(Lzss, XmlLikeTextCompressesWell) {
  std::string xml;
  for (int i = 0; i < 500; ++i) {
    xml += "<d>" + std::to_string(200 + i % 120) + "." +
           std::to_string(i % 100) + "</d>";
  }
  const auto data = bytes_of(xml);
  const auto compressed = lzss_compress(data);
  EXPECT_LT(compressed.size(), data.size() / 2)
      << "tag redundancy must compress away";
  EXPECT_EQ(lzss_decompress(compressed), data);
}

TEST(Lzss, RandomBytesBarelyGrow) {
  SplitMix64 rng(5);
  std::vector<std::uint8_t> data(50000);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next());
  const auto compressed = lzss_compress(data);
  // Incompressible input: 1 flag bit per literal = 12.5% + header.
  EXPECT_LT(compressed.size(), data.size() * 9 / 8 + 64);
  EXPECT_EQ(lzss_decompress(compressed), data);
}

TEST(Lzss, RandomStructuredRoundTrips) {
  SplitMix64 rng(6);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<std::uint8_t> data;
    const std::size_t chunks = rng.next_below(30);
    for (std::size_t c = 0; c < chunks; ++c) {
      if (rng.next_bool() && !data.empty()) {
        // repeat an earlier slice
        const std::size_t start = rng.next_below(data.size());
        const std::size_t len =
            std::min<std::size_t>(rng.next_below(400), data.size() - start);
        for (std::size_t i = 0; i < len; ++i) {
          data.push_back(data[start + i]);
        }
      } else {
        for (std::size_t i = 0, n = rng.next_below(100); i < n; ++i) {
          data.push_back(static_cast<std::uint8_t>(rng.next()));
        }
      }
    }
    expect_round_trip(data);
  }
}

TEST(Lzss, LongMatchesClampToMaxLength) {
  std::vector<std::uint8_t> data(100000, 'q');
  expect_round_trip(data);
}

TEST(Lzss, MatchesBeyondWindowNotUsed) {
  // A repeat separated by more than 64 KiB cannot be referenced; output
  // must still round-trip.
  std::vector<std::uint8_t> data = bytes_of("UNIQUE-PREFIX-0123456789");
  data.resize(70000, 0);  // zero filler (compresses internally)
  const auto tail = bytes_of("UNIQUE-PREFIX-0123456789");
  data.insert(data.end(), tail.begin(), tail.end());
  expect_round_trip(data);
}

TEST(LzssErrors, BadMagic) {
  std::vector<std::uint8_t> junk = {'N', 'O', 'P', 'E', 0, 0, 0, 0,
                                    0,   0,   0,   0};
  EXPECT_THROW(lzss_decompress(junk), DecodeError);
}

TEST(LzssErrors, Truncated) {
  const auto compressed = lzss_compress(bytes_of("hello hello hello hello"));
  for (std::size_t cut = 0; cut < compressed.size(); ++cut) {
    EXPECT_THROW(lzss_decompress({compressed.data(), cut}), DecodeError)
        << cut;
  }
}

TEST(LzssErrors, DistanceBeforeStart) {
  // Hand-craft: declared size 4, one match token with distance 5.
  std::vector<std::uint8_t> bad = {'L', 'Z', 'S', '1', 4, 0, 0, 0,
                                   0,   0,   0,   0,
                                   0x01,        // flags: first token = match
                                   4, 0, 0};    // distance-1=4 -> 5, len 4
  EXPECT_THROW(lzss_decompress(bad), DecodeError);
}

}  // namespace
}  // namespace bxsoap
