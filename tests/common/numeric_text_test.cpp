#include "common/numeric_text.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/prng.hpp"

namespace bxsoap {
namespace {

TEST(NumericText, FormatInt64Basics) {
  EXPECT_EQ(format_int64(0), "0");
  EXPECT_EQ(format_int64(-1), "-1");
  EXPECT_EQ(format_int64(std::numeric_limits<std::int64_t>::max()),
            "9223372036854775807");
  EXPECT_EQ(format_int64(std::numeric_limits<std::int64_t>::min()),
            "-9223372036854775808");
}

TEST(NumericText, FormatDoubleShortestRoundTrip) {
  // to_chars default gives the shortest representation that round-trips.
  EXPECT_EQ(format_double(0.5), "0.5");
  EXPECT_EQ(format_double(1.0), "1");
  EXPECT_EQ(*parse_double(format_double(0.1)), 0.1);
}

TEST(NumericText, ParseInt64Basics) {
  EXPECT_EQ(*parse_int64("42"), 42);
  EXPECT_EQ(*parse_int64("-42"), -42);
  EXPECT_EQ(*parse_int64("+42"), 42) << "XML Schema allows a leading plus";
  EXPECT_FALSE(parse_int64(""));
  EXPECT_FALSE(parse_int64("4 2"));
  EXPECT_FALSE(parse_int64("42x"));
  EXPECT_FALSE(parse_int64("x42"));
}

TEST(NumericText, ParseUint64RejectsNegative) {
  EXPECT_EQ(*parse_uint64("18446744073709551615"),
            std::numeric_limits<std::uint64_t>::max());
  EXPECT_FALSE(parse_uint64("-1"));
}

TEST(NumericText, ParseInt64Overflow) {
  EXPECT_FALSE(parse_int64("9223372036854775808"));
  EXPECT_EQ(*parse_int64("9223372036854775807"),
            std::numeric_limits<std::int64_t>::max());
}

TEST(NumericText, ParseDoubleForms) {
  EXPECT_DOUBLE_EQ(*parse_double("3.25"), 3.25);
  EXPECT_DOUBLE_EQ(*parse_double("-1e10"), -1e10);
  EXPECT_DOUBLE_EQ(*parse_double("+0.5"), 0.5);
  EXPECT_FALSE(parse_double("1.0.0"));
  EXPECT_FALSE(parse_double(""));
}

TEST(NumericText, DoubleRoundTripRandom) {
  SplitMix64 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.next_double(-1e6, 1e6);
    auto p = parse_double(format_double(v));
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(*p, v) << "shortest formatting must round-trip exactly";
  }
}

TEST(NumericText, DoubleRoundTripExtremes) {
  for (double v : {std::numeric_limits<double>::max(),
                   std::numeric_limits<double>::min(),
                   std::numeric_limits<double>::denorm_min(), -0.0}) {
    auto p = parse_double(format_double(v));
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(*p, v);
    EXPECT_EQ(std::signbit(*p), std::signbit(v));
  }
}

TEST(NumericText, FloatRoundTripRandom) {
  SplitMix64 rng(8);
  for (int i = 0; i < 10000; ++i) {
    const float v = static_cast<float>(rng.next_double(-1e6, 1e6));
    auto p = parse_float(format_float(v));
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(*p, v);
  }
}

TEST(NumericText, AppendAvoidsIntermediate) {
  std::string out = "x=";
  append_double(out, 2.5);
  EXPECT_EQ(out, "x=2.5");
  append_int64(out, -3);
  EXPECT_EQ(out, "x=2.5-3");
}

TEST(NumericText, TrimXmlWs) {
  EXPECT_EQ(trim_xml_ws("  a b \t\r\n"), "a b");
  EXPECT_EQ(trim_xml_ws(""), "");
  EXPECT_EQ(trim_xml_ws(" \n\t "), "");
  EXPECT_EQ(trim_xml_ws("x"), "x");
}

}  // namespace
}  // namespace bxsoap
