// Differential round-trip of the shuffle+delta preconditioner: for every
// packed atom width, both wire byte orders, and every admitted lane, the
// inverse must reproduce the input byte-for-byte — the transform sits on
// the wire path, so "almost" is corruption.
#include "common/shuffle.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

#include "common/endian.hpp"
#include "common/error.hpp"

namespace bxsoap {
namespace {

std::vector<std::uint8_t> round_trip(std::span<const std::uint8_t> data,
                                     std::size_t lane) {
  std::vector<std::uint8_t> shuffled;
  shuffle_delta(data, lane, shuffled);
  EXPECT_EQ(shuffled.size(), data.size());  // size-preserving by contract
  std::vector<std::uint8_t> back;
  unshuffle_delta(shuffled, lane, back);
  return back;
}

/// Serialize `count` values of T (a smooth ramp plus noise, so every byte
/// position gets exercised) in the given byte order.
template <typename T>
std::vector<std::uint8_t> packed_bytes(std::size_t count, ByteOrder order,
                                       std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::vector<std::uint8_t> out(count * sizeof(T));
  for (std::size_t i = 0; i < count; ++i) {
    T v;
    if constexpr (std::is_floating_point_v<T>) {
      v = static_cast<T>(std::sin(0.01 * static_cast<double>(i)) * 1e6 +
                         static_cast<double>(rng() % 1000));
    } else {
      v = static_cast<T>(rng());
    }
    store<T>(v, order, out.data() + i * sizeof(T));
  }
  return out;
}

template <typename T>
class ShuffleTyped : public ::testing::Test {};

using PackedTypes =
    ::testing::Types<std::int8_t, std::uint8_t, std::int16_t, std::uint16_t,
                     std::int32_t, std::uint32_t, std::int64_t, std::uint64_t,
                     float, double>;
TYPED_TEST_SUITE(ShuffleTyped, PackedTypes);

TYPED_TEST(ShuffleTyped, RoundTripsBothByteOrdersEveryLane) {
  for (const ByteOrder order : {ByteOrder::kLittle, ByteOrder::kBig}) {
    // Counts chosen so the byte length hits aligned and ragged tails for
    // every lane width.
    for (const std::size_t count : {0u, 1u, 7u, 64u, 257u}) {
      const auto data = packed_bytes<TypeParam>(
          count, order, static_cast<std::uint32_t>(count + sizeof(TypeParam)));
      for (const std::size_t lane : {2u, 4u, 8u}) {
        EXPECT_EQ(round_trip(data, lane), data)
            << "lane=" << lane << " count=" << count
            << " order=" << static_cast<int>(order);
      }
    }
  }
}

TEST(Shuffle, RandomBytesRoundTripAtEveryLane) {
  std::mt19937 rng(1234);
  for (const std::size_t n : {0u, 1u, 2u, 3u, 9u, 100u, 4096u, 4099u}) {
    std::vector<std::uint8_t> data(n);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng());
    for (const std::size_t lane : {2u, 4u, 8u}) {
      EXPECT_EQ(round_trip(data, lane), data) << "n=" << n << " lane=" << lane;
    }
  }
}

TEST(Shuffle, AppendsAfterExistingOutput) {
  const std::vector<std::uint8_t> data = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<std::uint8_t> out = {0xAA, 0xBB};
  shuffle_delta(data, 4, out);
  ASSERT_EQ(out.size(), 2 + data.size());
  EXPECT_EQ(out[0], 0xAA);
  EXPECT_EQ(out[1], 0xBB);
  std::vector<std::uint8_t> back;
  unshuffle_delta(std::span(out).subspan(2), 4, back);
  EXPECT_EQ(back, data);
}

TEST(Shuffle, SmoothDoublesGetDenserAfterTheTransform) {
  // The reason the transform exists: a smooth float64 ramp turns into
  // long zero runs once exponent bytes are grouped and delta'd.
  std::vector<std::uint8_t> data(1000 * sizeof(double));
  for (std::size_t i = 0; i < 1000; ++i) {
    store<double>(1000.0 + 0.125 * static_cast<double>(i), ByteOrder::kLittle,
                  data.data() + i * sizeof(double));
  }
  std::vector<std::uint8_t> shuffled;
  shuffle_delta(data, sizeof(double), shuffled);
  std::size_t zeros = 0;
  for (const std::uint8_t b : shuffled) zeros += (b == 0);
  EXPECT_GT(zeros, shuffled.size() / 2);
}

TEST(Shuffle, InvalidLaneThrows) {
  const std::vector<std::uint8_t> data = {1, 2, 3, 4};
  std::vector<std::uint8_t> out;
  for (const std::size_t lane : {0u, 1u, 3u, 5u, 16u}) {
    EXPECT_FALSE(shuffle_lane_valid(lane));
    EXPECT_THROW(shuffle_delta(data, lane, out), EncodeError);
    EXPECT_THROW(unshuffle_delta(data, lane, out), DecodeError);
  }
}

}  // namespace
}  // namespace bxsoap
