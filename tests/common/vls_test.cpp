#include "common/vls.hpp"

#include <gtest/gtest.h>

#include "common/prng.hpp"

namespace bxsoap {
namespace {

std::uint64_t round_trip(std::uint64_t v) {
  ByteWriter w;
  vls_write(w, v);
  ByteReader r(w.bytes());
  const std::uint64_t back = vls_read(r);
  EXPECT_TRUE(r.at_end()) << "decoder must consume the whole encoding";
  return back;
}

TEST(Vls, SmallValuesAreOneByte) {
  for (std::uint64_t v = 0; v < 0x80; ++v) {
    ByteWriter w;
    vls_write(w, v);
    EXPECT_EQ(w.size(), 1u) << v;
    EXPECT_EQ(round_trip(v), v);
  }
}

TEST(Vls, BoundaryLengths) {
  struct Case {
    std::uint64_t value;
    std::size_t bytes;
  };
  const Case cases[] = {
      {0x7F, 1},         {0x80, 2},
      {0x3FFF, 2},       {0x4000, 3},
      {0x1FFFFF, 3},     {0x200000, 4},
      {0xFFFFFFF, 4},    {0x10000000, 5},
      {0xFFFFFFFFull, 5},
      {0xFFFFFFFFFFFFFFFFull, 10},
  };
  for (const auto& c : cases) {
    EXPECT_EQ(vls_size(c.value), c.bytes) << c.value;
    ByteWriter w;
    vls_write(w, c.value);
    EXPECT_EQ(w.size(), c.bytes) << c.value;
    EXPECT_EQ(round_trip(c.value), c.value);
  }
}

TEST(Vls, EncodeIntoBufferMatchesWrite) {
  std::uint8_t buf[kMaxVlsBytes];
  for (std::uint64_t v : {0ull, 1ull, 127ull, 128ull, 300ull, 1ull << 40}) {
    const std::size_t n = vls_encode(v, buf);
    ByteWriter w;
    vls_write(w, v);
    ASSERT_EQ(w.size(), n);
    EXPECT_EQ(std::memcmp(w.bytes().data(), buf, n), 0);
  }
}

TEST(Vls, RandomRoundTrip) {
  SplitMix64 rng(0xBEEF);
  for (int i = 0; i < 10000; ++i) {
    // Vary magnitude so all encoded lengths are exercised.
    const int shift = static_cast<int>(rng.next_below(64));
    const std::uint64_t v = rng.next() >> shift;
    EXPECT_EQ(round_trip(v), v);
  }
}

TEST(Vls, TruncatedInputThrows) {
  ByteWriter w;
  vls_write(w, 0x4000);  // 3-byte encoding
  auto bytes = w.take();
  bytes.pop_back();
  ByteReader r(bytes.data(), bytes.size());
  EXPECT_THROW(vls_read(r), DecodeError);
}

TEST(Vls, OverlongInputThrows) {
  // 11 continuation bytes can never be valid.
  std::vector<std::uint8_t> bytes(11, 0x80);
  ByteReader r(bytes.data(), bytes.size());
  EXPECT_THROW(vls_read(r), DecodeError);
}

TEST(Vls, TenthByteOverflowThrows) {
  // 9 continuation bytes then a final byte with more than 1 significant bit
  // would encode a 65-bit value.
  std::vector<std::uint8_t> bytes(9, 0x80);
  bytes.push_back(0x02);
  ByteReader r(bytes.data(), bytes.size());
  EXPECT_THROW(vls_read(r), DecodeError);
}

TEST(Vls, MaxValueRoundTrips) {
  EXPECT_EQ(round_trip(std::numeric_limits<std::uint64_t>::max()),
            std::numeric_limits<std::uint64_t>::max());
}

TEST(VlsReadSize, AtLimitPassesAboveLimitThrows) {
  ByteWriter w;
  vls_write(w, 4096);
  {
    ByteReader r(w.bytes());
    EXPECT_EQ(vls_read_size(r, 4096), 4096u);
  }
  {
    ByteReader r(w.bytes());
    EXPECT_THROW(vls_read_size(r, 4095), DecodeError);
  }
}

TEST(VlsReadSize, SixtyFourBitValueRejectedBeforeAllocation) {
  // A hostile peer declares 2^64 - 1 bytes. The size gate must throw on
  // the DECLARED value — before any caller sizes an allocation from it.
  ByteWriter w;
  vls_write(w, std::numeric_limits<std::uint64_t>::max());
  ByteReader r(w.bytes());
  EXPECT_THROW(vls_read_size(r, 1u << 20), DecodeError);
}

TEST(VlsReadSize, ValuesJustOverSizeTtlBoundaryRejected) {
  // Every power of two from 2^32 up: each must be rejected under a small
  // limit (on 32-bit hosts these also cannot be represented in size_t;
  // the single limit comparison covers both).
  for (int shift = 32; shift < 64; ++shift) {
    ByteWriter w;
    vls_write(w, std::uint64_t{1} << shift);
    ByteReader r(w.bytes());
    EXPECT_THROW(vls_read_size(r, 256u << 20), DecodeError) << shift;
  }
}

TEST(VlsReadSize, TruncatedEncodingThrows) {
  const std::uint8_t bytes[] = {0xFF, 0xFF};  // continuation, then nothing
  ByteReader r(bytes, 2);
  EXPECT_THROW(vls_read_size(r, 1024), DecodeError);
}

TEST(Vls, NonCanonicalEncodingStillDecodes) {
  // 0 encoded with a redundant continuation byte: accepted (decoders are
  // liberal), value must still be 0.
  const std::uint8_t bytes[] = {0x80, 0x00};
  ByteReader r(bytes, 2);
  EXPECT_EQ(vls_read(r), 0u);
}

}  // namespace
}  // namespace bxsoap
