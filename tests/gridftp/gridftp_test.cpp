#include "gridftp/gridftp.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <unistd.h>

#include "common/prng.hpp"

namespace bxsoap::gridftp {
namespace {

class GridFtpFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("bxsoap_ftp_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);

    // A payload big enough to stripe across several blocks.
    payload_.resize(3 * kBlockSize + 12345);
    SplitMix64 rng(77);
    for (auto& b : payload_) b = static_cast<std::uint8_t>(rng.next());
    std::ofstream out(dir_ / "data.nc", std::ios::binary);
    out.write(reinterpret_cast<const char*>(payload_.data()),
              static_cast<std::streamsize>(payload_.size()));
    out.close();

    server_ = std::make_unique<GridFtpServer>(dir_);
  }

  void TearDown() override {
    server_.reset();
    std::filesystem::remove_all(dir_);
  }

  std::filesystem::path dir_;
  std::vector<std::uint8_t> payload_;
  std::unique_ptr<GridFtpServer> server_;
};

TEST_F(GridFtpFixture, SingleStreamFetch) {
  ClientOptions opt;
  opt.streams = 1;
  const auto got = gridftp_fetch(server_->control_port(), "data.nc", opt);
  EXPECT_EQ(got, payload_);
}

TEST_F(GridFtpFixture, ParallelStreamsReassembleCorrectly) {
  for (const int streams : {2, 4, 16}) {
    ClientOptions opt;
    opt.streams = streams;
    const auto got = gridftp_fetch(server_->control_port(), "data.nc", opt);
    EXPECT_EQ(got, payload_) << streams << " streams";
  }
}

TEST_F(GridFtpFixture, SizeQuery) {
  EXPECT_EQ(gridftp_size(server_->control_port(), "data.nc"),
            payload_.size());
}

TEST_F(GridFtpFixture, MissingFileIsError) {
  EXPECT_THROW(gridftp_fetch(server_->control_port(), "nope.nc"),
               transport::TransportError);
  EXPECT_THROW(gridftp_size(server_->control_port(), "nope.nc"),
               transport::TransportError);
}

TEST_F(GridFtpFixture, PathTraversalRejected) {
  EXPECT_THROW(gridftp_fetch(server_->control_port(), "../escape"),
               transport::TransportError);
}

TEST_F(GridFtpFixture, AuthHandshakeRoundsConfigurable) {
  ClientOptions opt;
  opt.auth_rounds = 0;
  EXPECT_EQ(gridftp_fetch(server_->control_port(), "data.nc", opt),
            payload_);
  opt.auth_rounds = 16;
  EXPECT_EQ(gridftp_fetch(server_->control_port(), "data.nc", opt),
            payload_);
}

TEST_F(GridFtpFixture, UnauthenticatedTransferRejected) {
  // Speak the protocol manually, skipping AUTH.
  transport::TcpStream control =
      transport::TcpStream::connect(server_->control_port());
  control.write_all(std::string_view("SIZE data.nc\n"));
  const std::string reply = control.read_until("\n", 256);
  EXPECT_EQ(reply.substr(0, 3), "ERR");
}

TEST_F(GridFtpFixture, SequentialSessions) {
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(gridftp_size(server_->control_port(), "data.nc"),
              payload_.size());
  }
}

TEST_F(GridFtpFixture, EmptyFileTransfers) {
  std::ofstream(dir_ / "empty.nc", std::ios::binary).flush();
  const auto got = gridftp_fetch(server_->control_port(), "empty.nc");
  EXPECT_TRUE(got.empty());
}

TEST_F(GridFtpFixture, TooManyStreamsRejected) {
  ClientOptions opt;
  opt.streams = 100;
  EXPECT_THROW(gridftp_fetch(server_->control_port(), "data.nc", opt),
               transport::TransportError);
}

}  // namespace
}  // namespace bxsoap::gridftp
