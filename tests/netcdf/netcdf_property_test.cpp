// Property tests: random netCDF structures round-trip bit-exactly, and
// random byte mutations of valid files never crash the reader.
#include <gtest/gtest.h>

#include "common/prng.hpp"
#include "netcdf/netcdf.hpp"

namespace bxsoap::netcdf {
namespace {

NcFile random_file(SplitMix64& rng) {
  NcFile f;
  const std::uint64_t ndims = 1 + rng.next_below(4);
  std::vector<std::uint32_t> dim_ids;
  for (std::uint64_t i = 0; i < ndims; ++i) {
    dim_ids.push_back(f.add_dimension(
        "dim" + std::to_string(i),
        1 + static_cast<std::uint32_t>(rng.next_below(40))));
  }
  if (rng.next_bool()) {
    f.global_attributes().push_back(
        {"title", std::string("run-") + std::to_string(rng.next_below(100))});
  }
  if (rng.next_bool()) {
    f.global_attributes().push_back(
        {"levels", std::vector<std::int32_t>{1, 2, 3}});
  }

  const std::uint64_t nvars = rng.next_below(5);
  for (std::uint64_t v = 0; v < nvars; ++v) {
    // Pick 0-2 dimensions (0 dims = scalar variable).
    std::vector<std::uint32_t> ids;
    for (std::uint64_t d = 0, n = rng.next_below(3); d < n; ++d) {
      ids.push_back(dim_ids[rng.next_below(dim_ids.size())]);
    }
    std::size_t count = 1;
    for (const auto id : ids) count *= f.dimensions()[id].length;

    const std::uint64_t type_pick = rng.next_below(5);
    const std::string name = "var" + std::to_string(v);
    switch (type_pick) {
      case 0: {
        std::vector<std::int8_t> data(count);
        for (auto& x : data) x = static_cast<std::int8_t>(rng.next());
        f.add_variable(name, NcType::kByte, ids).set_values(data);
        break;
      }
      case 1: {
        std::vector<std::int16_t> data(count);
        for (auto& x : data) x = static_cast<std::int16_t>(rng.next());
        f.add_variable(name, NcType::kShort, ids).set_values(data);
        break;
      }
      case 2: {
        std::vector<std::int32_t> data(count);
        for (auto& x : data) x = rng.next_i32();
        f.add_variable(name, NcType::kInt, ids).set_values(data);
        break;
      }
      case 3: {
        std::vector<float> data(count);
        for (auto& x : data) x = static_cast<float>(rng.next_double01());
        f.add_variable(name, NcType::kFloat, ids).set_values(data);
        break;
      }
      default: {
        std::vector<double> data(count);
        for (auto& x : data) x = rng.next_double(-1e6, 1e6);
        f.add_variable(name, NcType::kDouble, ids).set_values(data);
        break;
      }
    }
    if (rng.next_bool()) {
      f.variables().back().attributes().push_back(
          {"units", std::string("u")});
    }
  }
  return f;
}

class NetcdfProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NetcdfProperty, RandomStructureRoundTrips) {
  SplitMix64 rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    const NcFile original = random_file(rng);
    const auto bytes = original.to_bytes();
    const NcFile back = NcFile::from_bytes(bytes);

    ASSERT_EQ(back.dimensions().size(), original.dimensions().size());
    ASSERT_EQ(back.variables().size(), original.variables().size());
    ASSERT_EQ(back.global_attributes().size(),
              original.global_attributes().size());
    for (std::size_t i = 0; i < original.variables().size(); ++i) {
      const Variable& a = original.variables()[i];
      const Variable& b = back.variables()[i];
      EXPECT_EQ(a.name(), b.name());
      EXPECT_EQ(a.type(), b.type());
      EXPECT_EQ(a.dim_ids(), b.dim_ids());
      EXPECT_EQ(a.raw(), b.raw()) << "payload must be bit-exact";
      EXPECT_EQ(a.attributes().size(), b.attributes().size());
    }
    // Serialization is canonical: re-encoding reproduces the bytes.
    EXPECT_EQ(back.to_bytes(), bytes);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetcdfProperty,
                         ::testing::Range<std::uint64_t>(1, 11));

TEST(NetcdfFuzz, MutatedFilesNeverCrash) {
  SplitMix64 rng(31337);
  NcFile sample = random_file(rng);
  const auto bytes = sample.to_bytes();
  for (int trial = 0; trial < 500; ++trial) {
    auto mutated = bytes;
    const std::uint64_t flips = 1 + rng.next_below(6);
    for (std::uint64_t i = 0; i < flips; ++i) {
      mutated[rng.next_below(mutated.size())] =
          static_cast<std::uint8_t>(rng.next());
    }
    try {
      NcFile::from_bytes(mutated);
    } catch (const DecodeError&) {
      // expected for most mutations
    }
  }
}

}  // namespace
}  // namespace bxsoap::netcdf
