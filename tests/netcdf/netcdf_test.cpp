#include "netcdf/netcdf.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <unistd.h>

namespace bxsoap::netcdf {
namespace {

NcFile sample_file() {
  NcFile f;
  const auto model = f.add_dimension("model", 4);
  const auto level = f.add_dimension("level", 2);
  f.global_attributes().push_back({"title", std::string("unit test")});
  f.global_attributes().push_back(
      {"version", std::vector<std::int32_t>{3}});

  Variable& idx = f.add_variable("index", NcType::kInt, {model});
  idx.set_values(std::vector<std::int32_t>{0, 1, 2, 3});

  Variable& vals = f.add_variable("values", NcType::kDouble, {model});
  vals.attributes().push_back({"units", std::string("kelvin")});
  vals.set_values(std::vector<double>{273.15, 274.0, 275.5, -1.25});

  Variable& grid = f.add_variable("grid", NcType::kFloat, {level, model});
  grid.set_values(
      std::vector<float>{1, 2, 3, 4, 5, 6, 7, 8});
  return f;
}

TEST(NetcdfFormat, MagicAndVersion) {
  const auto bytes = sample_file().to_bytes();
  ASSERT_GE(bytes.size(), 4u);
  EXPECT_EQ(bytes[0], 'C');
  EXPECT_EQ(bytes[1], 'D');
  EXPECT_EQ(bytes[2], 'F');
  EXPECT_EQ(bytes[3], 0x01);
}

TEST(NetcdfFormat, HeaderIsBigEndian) {
  // numrecs (0) then the NC_DIMENSION tag (0x0000000A big-endian).
  const auto bytes = sample_file().to_bytes();
  EXPECT_EQ(bytes[4], 0);  // numrecs
  EXPECT_EQ(bytes[8], 0x00);
  EXPECT_EQ(bytes[11], 0x0A);
}

TEST(NetcdfRoundTrip, FullStructure) {
  const NcFile original = sample_file();
  const NcFile back = NcFile::from_bytes(original.to_bytes());

  ASSERT_EQ(back.dimensions().size(), 2u);
  EXPECT_EQ(back.dimensions()[0].name, "model");
  EXPECT_EQ(back.dimensions()[0].length, 4u);
  EXPECT_EQ(back.dimensions()[1].name, "level");

  ASSERT_EQ(back.global_attributes().size(), 2u);
  EXPECT_EQ(std::get<std::string>(back.global_attributes()[0].value),
            "unit test");
  EXPECT_EQ(std::get<std::vector<std::int32_t>>(
                back.global_attributes()[1].value),
            (std::vector<std::int32_t>{3}));

  ASSERT_EQ(back.variables().size(), 3u);
  const Variable* idx = back.find_variable("index");
  ASSERT_NE(idx, nullptr);
  EXPECT_EQ(idx->values<std::int32_t>(),
            (std::vector<std::int32_t>{0, 1, 2, 3}));

  const Variable* vals = back.find_variable("values");
  ASSERT_NE(vals, nullptr);
  EXPECT_EQ(vals->values<double>(),
            (std::vector<double>{273.15, 274.0, 275.5, -1.25}));
  ASSERT_EQ(vals->attributes().size(), 1u);
  EXPECT_EQ(vals->attributes()[0].name, "units");

  const Variable* grid = back.find_variable("grid");
  ASSERT_NE(grid, nullptr);
  EXPECT_EQ(grid->dim_ids().size(), 2u);
  EXPECT_EQ(grid->values<float>().size(), 8u);
  EXPECT_EQ(grid->values<float>()[7], 8.0f);
}

TEST(NetcdfRoundTrip, EmptyFile) {
  NcFile f;
  const NcFile back = NcFile::from_bytes(f.to_bytes());
  EXPECT_TRUE(back.dimensions().empty());
  EXPECT_TRUE(back.variables().empty());
}

TEST(NetcdfRoundTrip, ShortAndByteTypes) {
  NcFile f;
  const auto d = f.add_dimension("n", 3);
  f.add_variable("s", NcType::kShort, {d})
      .set_values(std::vector<std::int16_t>{-1, 0, 32767});
  f.add_variable("b", NcType::kByte, {d})
      .set_values(std::vector<std::int8_t>{-128, 0, 127});
  const NcFile back = NcFile::from_bytes(f.to_bytes());
  EXPECT_EQ(back.find_variable("s")->values<std::int16_t>(),
            (std::vector<std::int16_t>{-1, 0, 32767}));
  EXPECT_EQ(back.find_variable("b")->values<std::int8_t>(),
            (std::vector<std::int8_t>{-128, 0, 127}));
}

TEST(NetcdfRoundTrip, OddLengthPaddingHandled) {
  // 3 int16 values = 6 bytes, padded to 8 on disk; names with non-multiple
  // of 4 lengths likewise.
  NcFile f;
  const auto d = f.add_dimension("xyzzy", 3);
  f.add_variable("ab", NcType::kShort, {d})
      .set_values(std::vector<std::int16_t>{1, 2, 3});
  f.add_variable("second", NcType::kInt, {d})
      .set_values(std::vector<std::int32_t>{7, 8, 9});
  const NcFile back = NcFile::from_bytes(f.to_bytes());
  EXPECT_EQ(back.find_variable("second")->values<std::int32_t>(),
            (std::vector<std::int32_t>{7, 8, 9}));
}

TEST(NetcdfFile, WriteReadDisk) {
  const auto path = std::filesystem::temp_directory_path() /
                    ("bxsoap_nc_test_" + std::to_string(::getpid()) + ".nc");
  sample_file().write_file(path);
  const NcFile back = NcFile::read_file(path);
  EXPECT_EQ(back.find_variable("values")->values<double>()[0], 273.15);
  std::filesystem::remove(path);
}

TEST(NetcdfErrors, SizeOverheadIsSmall) {
  // Table 1: netCDF overhead ~2.2% at model size 1000.
  NcFile f;
  const auto d = f.add_dimension("model", 1000);
  std::vector<std::int32_t> idx(1000);
  std::vector<double> vals(1000);
  for (int i = 0; i < 1000; ++i) {
    idx[i] = i;
    vals[i] = i * 0.5;
  }
  f.add_variable("index", NcType::kInt, {d}).set_values(idx);
  f.add_variable("values", NcType::kDouble, {d}).set_values(vals);
  const auto bytes = f.to_bytes();
  const double overhead = (bytes.size() - 12000.0) / 12000.0;
  EXPECT_GT(overhead, 0.0);
  EXPECT_LT(overhead, 0.03);
}

TEST(NetcdfErrors, BadMagicRejected) {
  std::vector<std::uint8_t> junk = {'N', 'O', 'P', 'E', 0, 0, 0, 0};
  EXPECT_THROW(NcFile::from_bytes(junk), DecodeError);
}

TEST(NetcdfErrors, Cdf2Rejected) {
  std::vector<std::uint8_t> v2 = {'C', 'D', 'F', 0x02, 0, 0, 0, 0};
  EXPECT_THROW(NcFile::from_bytes(v2), DecodeError);
}

TEST(NetcdfErrors, RecordVariablesRejected) {
  std::vector<std::uint8_t> rec = {'C', 'D', 'F', 0x01, 0, 0, 0, 5,
                                   0,   0,   0,   0,    0, 0, 0, 0,
                                   0,   0,   0,   0,    0, 0, 0, 0};
  EXPECT_THROW(NcFile::from_bytes(rec), DecodeError);
}

TEST(NetcdfErrors, TruncatedFileRejected) {
  auto bytes = sample_file().to_bytes();
  for (const std::size_t cut : {4ul, 12ul, 40ul, bytes.size() - 3}) {
    EXPECT_THROW(
        NcFile::from_bytes({bytes.data(), cut}), DecodeError)
        << "cut=" << cut;
  }
}

TEST(NetcdfErrors, WrongTypeAccessThrows) {
  NcFile f = sample_file();
  EXPECT_THROW(f.find_variable("index")->values<double>(), DecodeError);
}

TEST(NetcdfErrors, ShapeMismatchRejectedOnWrite) {
  NcFile f;
  const auto d = f.add_dimension("n", 10);
  f.add_variable("v", NcType::kInt, {d})
      .set_values(std::vector<std::int32_t>{1, 2});  // only 2 of 10
  EXPECT_THROW(f.to_bytes(), EncodeError);
}

TEST(NetcdfErrors, UnknownDimensionRejected) {
  NcFile f;
  EXPECT_THROW(f.add_variable("v", NcType::kInt, {5}), EncodeError);
}

TEST(NetcdfErrors, TypeMismatchOnSetRejected) {
  NcFile f;
  const auto d = f.add_dimension("n", 2);
  Variable& v = f.add_variable("v", NcType::kInt, {d});
  EXPECT_THROW(v.set_values(std::vector<double>{1.0, 2.0}), EncodeError);
}

}  // namespace
}  // namespace bxsoap::netcdf
