#include "netsim/netsim.hpp"

#include <gtest/gtest.h>

namespace bxsoap::netsim {
namespace {

TEST(NetSim, SpecsMatchThePaperTestbeds) {
  EXPECT_DOUBLE_EQ(lan().rtt_s, 0.2e-3);
  EXPECT_DOUBLE_EQ(wan().rtt_s, 5.75e-3);
  EXPECT_GT(wan().aggregate_bw, wan().stream_bw * 2)
      << "the WAN must reward striping";
  EXPECT_LT(lan().aggregate_bw, lan().stream_bw * 2)
      << "the LAN must not reward striping";
}

TEST(NetSim, SendTimeScalesLinearlyInBytes) {
  const LinkSpec l = lan();
  const double t1 = send_time(l, 1000);
  const double t2 = send_time(l, 2000);
  EXPECT_GT(t2, t1);
  // Slope equals 1/bandwidth.
  EXPECT_NEAR((t2 - t1), 1000.0 / l.stream_bw, 1e-12);
}

TEST(NetSim, ZeroBytesStillCostsPropagation) {
  const LinkSpec l = lan();
  EXPECT_DOUBLE_EQ(send_time(l, 0), l.rtt_s / 2);
  EXPECT_DOUBLE_EQ(request_response_time(l, 0, 0), l.rtt_s);
}

TEST(NetSim, HttpExchangeIncludesConnectAndHeaders) {
  const LinkSpec l = lan();
  EXPECT_GT(http_exchange_time(l, 100, 100),
            request_response_time(l, 100, 100));
}

TEST(NetSim, WanExchangesCostMoreThanLan) {
  EXPECT_GT(http_exchange_time(wan(), 1000, 1000),
            http_exchange_time(lan(), 1000, 1000));
}

TEST(NetSim, SingleStreamIsCappedAtStreamBandwidth) {
  const LinkSpec l = lan();
  const std::size_t bytes = 100 * 1000 * 1000;
  const double t = parallel_transfer_time(l, bytes, 1);
  const double expected_wire = static_cast<double>(bytes) / l.stream_bw;
  EXPECT_NEAR(t, expected_wire, expected_wire * 0.01);
}

TEST(NetSim, ParallelismHurtsOnTheLan) {
  // Fig. 5: "over a LAN the parallelism in GridFTP provides little
  // additional benefit, and indeed somewhat degrades performance".
  const LinkSpec l = lan();
  const std::size_t bytes = 64 * 1000 * 1000;
  const double t1 = parallel_transfer_time(l, bytes, 1);
  const double t4 = parallel_transfer_time(l, bytes, 4);
  const double t16 = parallel_transfer_time(l, bytes, 16);
  EXPECT_GT(t16, t4);
  EXPECT_GT(t16, t1 * 0.9);
  // Any gain from the slight aggregate headroom must be outweighed for 16
  // streams by the reassembly penalty.
  EXPECT_GT(t16, t1);
}

TEST(NetSim, ParallelismWinsOnTheWan) {
  // Fig. 6: 16 streams lead at large sizes.
  const LinkSpec w = wan();
  const std::size_t bytes = 64 * 1000 * 1000;
  const double t1 = parallel_transfer_time(w, bytes, 1);
  const double t4 = parallel_transfer_time(w, bytes, 4);
  const double t16 = parallel_transfer_time(w, bytes, 16);
  EXPECT_LT(t4, t1);
  EXPECT_LT(t16, t1 / 2);
}

TEST(NetSim, GridftpAuthDominatesSmallTransfers) {
  // Fig. 4: GridFTP's flat ~0.23 s floor for tiny payloads.
  const LinkSpec l = lan();
  const GridFtpSpec g = gsi_gridftp();
  const double tiny = gridftp_session_time(l, g, 100, 1);
  EXPECT_GT(tiny, 0.2);
  EXPECT_GT(tiny, 100 * http_exchange_time(l, 100, 100))
      << "GridFTP must be orders of magnitude worse for small messages";
}

TEST(NetSim, GridftpAuthAmortizesForLargeTransfers) {
  // Fig. 5: "the overhead of the security is amortized as the message size
  // increases".
  const LinkSpec l = lan();
  const GridFtpSpec g = gsi_gridftp();
  const std::size_t big = 64 * 1000 * 1000;
  const double ftp = gridftp_session_time(l, g, big, 1);
  const double plain = parallel_transfer_time(l, big, 1);
  EXPECT_LT(ftp, plain * 1.10) << "auth adds <10% at 64 MB";
}

TEST(NetSim, DiskCostsIncludeOpenOverhead) {
  const DiskSpec d = local_disk();
  EXPECT_GT(disk_write_time(d, 0), 0.0);
  EXPECT_GT(disk_write_time(d, 1000000), disk_write_time(d, 1000));
  EXPECT_LT(disk_read_time(d, 1000000), disk_write_time(d, 1000000))
      << "reads are faster than writes";
}

TEST(NetSim, DeterministicAcrossCalls) {
  const LinkSpec l = wan();
  EXPECT_EQ(parallel_transfer_time(l, 123456, 7),
            parallel_transfer_time(l, 123456, 7));
}

TEST(NetSim, StreamCountClampedToOne) {
  const LinkSpec l = lan();
  EXPECT_EQ(parallel_transfer_time(l, 1000, 0),
            parallel_transfer_time(l, 1000, 1));
}

}  // namespace
}  // namespace bxsoap::netsim
