#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace bxsoap::obs {
namespace {

TEST(Counter, AddsAndReads) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, TracksLevel) {
  Gauge g;
  g.add(5);
  g.sub(2);
  EXPECT_EQ(g.value(), 3);
  g.set(-7);
  EXPECT_EQ(g.value(), -7);
}

TEST(Histogram, CountSumMax) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 100; ++v) h.record(v);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.sum(), 5050u);
  EXPECT_EQ(h.max(), 100u);
}

TEST(Histogram, Log2Buckets) {
  Histogram h;
  h.record(0);  // bucket 0
  h.record(1);  // bit_width 1
  h.record(2);  // bit_width 2
  h.record(3);  // bit_width 2
  h.record(1023);  // bit_width 10
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 2u);
  EXPECT_EQ(h.bucket(10), 1u);
}

TEST(Histogram, QuantileUpperBound) {
  Histogram h;
  EXPECT_EQ(h.quantile_upper_bound(0.5), 0u);  // empty
  for (std::uint64_t v = 1; v <= 100; ++v) h.record(v);
  // The 50th value is 50 (bit_width 6); the bucket's upper edge is 63.
  EXPECT_EQ(h.quantile_upper_bound(0.50), 63u);
  // The 99th value is 99 (bit_width 7); upper edge 127.
  EXPECT_EQ(h.quantile_upper_bound(0.99), 127u);
}

TEST(Histogram, ConcurrentRecording) {
  Histogram h;
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPer = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (std::uint64_t i = 0; i < kPer; ++i) h.record(8);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), kThreads * kPer);
  EXPECT_EQ(h.sum(), kThreads * kPer * 8);
  EXPECT_EQ(h.bucket(4), kThreads * kPer);
}

TEST(Registry, HandsOutStableReferences) {
  Registry r;
  Counter& a = r.counter("x");
  a.add(3);
  Counter& b = r.counter("x");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.value(), 3u);
  // Different families share a namespace-free map each.
  r.gauge("x").set(9);
  EXPECT_EQ(r.counter("x").value(), 3u);
  EXPECT_EQ(r.gauge("x").value(), 9);
}

TEST(Registry, ConcurrentRegistrationAndUse) {
  Registry r;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&r, t] {
      for (int i = 0; i < 1000; ++i) {
        r.counter("shared").add();
        r.counter("own." + std::to_string(t)).add();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(r.counter("shared").value(), 8000u);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(r.counter("own." + std::to_string(t)).value(), 1000u);
  }
}

TEST(Registry, JsonSnapshot) {
  Registry r;
  r.counter("req.total").add(7);
  r.gauge("conn.active").set(2);
  r.histogram("lat.ns").record(1000);
  r.io("tcp").bytes_in.add(512);
  r.io("tcp").write_calls.add(3);
  r.codec("bxsa").frames_by_type[1].add(4);
  r.codec("bxsa").symtab_hits.add(9);

  const std::string json = r.to_json();
  EXPECT_NE(json.find("\"req.total\":7"), std::string::npos);
  EXPECT_NE(json.find("\"conn.active\":2"), std::string::npos);
  EXPECT_NE(json.find("\"lat.ns\":{\"count\":1,\"sum\":1000"),
            std::string::npos);
  EXPECT_NE(json.find("\"bytes_in\":512"), std::string::npos);
  EXPECT_NE(json.find("\"write_calls\":3"), std::string::npos);
  EXPECT_NE(json.find("\"document\":4"), std::string::npos);
  EXPECT_NE(json.find("\"symtab_hits\":9"), std::string::npos);
  // Structured: one top-level object with the five sections.
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  for (const char* section :
       {"\"counters\":", "\"gauges\":", "\"histograms\":", "\"io\":",
        "\"codec\":"}) {
    EXPECT_NE(json.find(section), std::string::npos) << section;
  }
}

TEST(Registry, JsonEscapesMetricNames) {
  Registry r;
  r.counter("weird\"name\\x").add(1);
  const std::string json = r.to_json();
  EXPECT_NE(json.find("\"weird\\\"name\\\\x\":1"), std::string::npos);
}

}  // namespace
}  // namespace bxsoap::obs
