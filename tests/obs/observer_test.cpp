// The acceptance test for the ObserverPolicy redesign: all four
// Encoding x Binding stacks of the paper, run with a MetricsObserver on
// both ends, must yield a registry snapshot with non-zero per-stage
// timings — and the NullObserver default must keep satisfying the same
// concept with none of the machinery.
#include "obs/observer.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "services/verification.hpp"
#include "xdm/node.hpp"
#include "soap/engine.hpp"
#include "transport/bindings.hpp"
#include "workload/lead.hpp"

namespace bxsoap {
namespace {

using namespace bxsoap::soap;
using namespace bxsoap::transport;

constexpr int kCalls = 4;

/// One client engine against one server engine of the same stack, both
/// instrumented into `registry` under "<prefix>.client" / "<prefix>.server".
template <typename Encoding, typename ClientBinding, typename ServerBinding>
void exercise_stack(obs::Registry& registry, const std::string& prefix) {
  ServerBinding server_binding;
  const std::uint16_t port = server_binding.port();
  SoapEngine<Encoding, ServerBinding, NoSecurity, obs::MetricsObserver>
      server({}, std::move(server_binding), {},
             obs::MetricsObserver(registry, prefix + ".server"));
  std::thread server_thread([&server] {
    for (int i = 0; i < kCalls; ++i) {
      server.serve_once(services::verification_handler);
    }
  });

  SoapEngine<Encoding, ClientBinding, NoSecurity, obs::MetricsObserver>
      client({}, ClientBinding(port), {},
             obs::MetricsObserver(registry, prefix + ".client"));
  const auto dataset = workload::make_lead_dataset(200);
  for (int i = 0; i < kCalls; ++i) {
    SoapEnvelope resp = client.call(services::make_data_request(dataset));
    ASSERT_TRUE(services::parse_verify_response(resp).ok) << prefix;
  }
  server_thread.join();
}

/// The per-stage numbers a stack must produce on each side.
void check_side(obs::Registry& registry, const std::string& side) {
  EXPECT_EQ(registry.counter(side + ".exchanges").value(),
            static_cast<std::uint64_t>(kCalls))
      << side;
  EXPECT_EQ(registry.counter(side + ".faults").value(), 0u) << side;
  // The stages this side's engine runs, each once per call.
  for (const char* stage : {"serialize", "deserialize", "send", "receive"}) {
    const auto& h =
        registry.histogram(side + ".stage." + std::string(stage) + ".ns");
    EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kCalls))
        << side << " " << stage;
    // Non-zero timings: real work happened in every stage.
    EXPECT_GT(h.sum(), 0u) << side << " " << stage;
  }
  // Payload byte counters moved through both codec stages.
  EXPECT_GT(registry.counter(side + ".stage.serialize.bytes").value(), 0u)
      << side;
  EXPECT_GT(registry.counter(side + ".stage.deserialize.bytes").value(), 0u)
      << side;
}

TEST(ObserverPolicy, AllFourStacksProduceNonZeroStageTimings) {
  obs::Registry registry;
  exercise_stack<BxsaEncoding, TcpClientBinding, TcpServerBinding>(
      registry, "bxsa_tcp");
  exercise_stack<BxsaEncoding, HttpClientBinding, HttpServerBinding>(
      registry, "bxsa_http");
  exercise_stack<XmlEncoding, TcpClientBinding, TcpServerBinding>(
      registry, "xml_tcp");
  exercise_stack<XmlEncoding, HttpClientBinding, HttpServerBinding>(
      registry, "xml_http");

  for (const char* stack : {"bxsa_tcp", "bxsa_http", "xml_tcp", "xml_http"}) {
    check_side(registry, std::string(stack) + ".client");
    check_side(registry, std::string(stack) + ".server");
    // Server side ran the handler once per call.
    const auto& handler = registry.histogram(std::string(stack) +
                                             ".server.stage.handler.ns");
    EXPECT_EQ(handler.count(), static_cast<std::uint64_t>(kCalls)) << stack;
  }

  // And the snapshot carries it all: one JSON document, every stack's
  // stage histograms present.
  const std::string json = registry.to_json();
  for (const char* stack : {"bxsa_tcp", "bxsa_http", "xml_tcp", "xml_http"}) {
    EXPECT_NE(json.find(std::string(stack) + ".client.stage.serialize.ns"),
              std::string::npos)
        << stack;
    EXPECT_NE(json.find(std::string(stack) + ".server.exchanges\":" +
                        std::to_string(kCalls)),
              std::string::npos)
        << stack;
  }
}

TEST(ObserverPolicy, EngineIoStatsFlowThroughBindings) {
  obs::Registry registry;
  TcpServerBinding server_binding;
  server_binding.set_io_stats(&registry.io("srv"));
  const std::uint16_t port = server_binding.port();
  SoapEngine<BxsaEncoding, TcpServerBinding> server({},
                                                    std::move(server_binding));
  std::thread server_thread(
      [&server] { server.serve_once(services::verification_handler); });

  TcpClientBinding client_binding(port);
  client_binding.set_io_stats(&registry.io("cli"));
  SoapEngine<BxsaEncoding, TcpClientBinding> client({},
                                                    std::move(client_binding));
  client.call(services::make_data_request(workload::make_lead_dataset(50)));
  server_thread.join();

  // Bytes the client wrote are the bytes the server read, and vice versa.
  EXPECT_GT(registry.io("cli").bytes_out.value(), 0u);
  EXPECT_GT(registry.io("srv").bytes_in.value(), 0u);
  EXPECT_EQ(registry.io("cli").bytes_out.value(),
            registry.io("srv").bytes_in.value());
  EXPECT_EQ(registry.io("srv").bytes_out.value(),
            registry.io("cli").bytes_in.value());
  EXPECT_GT(registry.io("cli").write_calls.value(), 0u);
  EXPECT_GT(registry.io("srv").read_calls.value(), 0u);
}

TEST(ObserverPolicy, BxsaCodecStatsCountFramesAndSymtab) {
  obs::Registry registry;
  BxsaEncoding enc;
  enc.set_codec_stats(&registry.codec("codec"));
  // A document exercising every counted path: a namespaced root whose URI
  // is declared nowhere (the encoder auto-declares it), namespaced
  // children (symbol-table hits once declared), a typed leaf, a packed
  // array, and character data.
  auto root = xdm::make_element(xdm::QName("urn:obs-test", "root", "t"));
  root->add_child(
      xdm::make_leaf(xdm::QName("urn:obs-test", "leaf", "t"), 3.5));
  root->add_child(xdm::make_array(xdm::QName("urn:obs-test", "arr", "t"),
                                  std::vector<double>{1.0, 2.0, 3.0}));
  auto mid = xdm::make_element(xdm::QName("urn:obs-test", "mid", "t"));
  mid->add_child(std::make_unique<xdm::TextNode>("hello"));
  root->add_child(std::move(mid));
  const xdm::DocumentPtr doc = xdm::make_document(std::move(root));

  const auto bytes = enc.serialize(*doc);
  (void)enc.deserialize(bytes);

  // Encoder and decoder share the stats, so each wire frame counts twice.
  const auto& codec = registry.codec("codec");
  EXPECT_EQ(codec.frames_by_type[1].value(), 2u);  // document
  EXPECT_EQ(codec.frames_by_type[2].value(), 4u);  // root + mid
  EXPECT_EQ(codec.frames_by_type[3].value(), 2u);  // leaf
  EXPECT_EQ(codec.frames_by_type[4].value(), 2u);  // array
  EXPECT_EQ(codec.frames_by_type[5].value(), 2u);  // character data
  // The root's name auto-declared the URI; every later name resolved
  // against that declaration. (Only the encoder runs symbol resolution.)
  EXPECT_EQ(codec.symtab_auto_decls.value(), 1u);
  EXPECT_GE(codec.symtab_hits.value(), 3u);  // leaf, arr, mid at least
}

TEST(ObserverPolicy, NullObserverIsInertAndFree) {
  static_assert(obs::ObserverPolicy<obs::NullObserver>);
  static_assert(obs::ObserverPolicy<obs::MetricsObserver>);
  static_assert(!obs::NullObserver::kEnabled);
  static_assert(obs::MetricsObserver::kEnabled);
  // The specialized timer holds no clock state at all.
  static_assert(std::is_empty_v<obs::StageTimer<obs::NullObserver>>);
  obs::NullObserver null;
  obs::StageTimer<obs::NullObserver> t(null, obs::Stage::kSerialize);
  null.stage_ns(obs::Stage::kHandler, 123);
  null.count_exchange();
  // Default engine type carries the NullObserver fourth policy.
  using Default = SoapEngine<BxsaEncoding, TcpClientBinding>;
  static_assert(
      std::is_same_v<std::remove_reference_t<
                         decltype(std::declval<Default&>().observer())>,
                     obs::NullObserver>);
}

TEST(ObserverPolicy, DetachedMetricsObserverRecordsNowhere) {
  obs::MetricsObserver detached;
  EXPECT_FALSE(detached.attached());
  detached.stage_ns(obs::Stage::kSend, 42);
  detached.stage_bytes(obs::Stage::kSend, 42);
  detached.count_exchange();
  detached.count_fault();  // must not crash
  obs::Registry registry;
  obs::MetricsObserver attached(registry, "x");
  EXPECT_TRUE(attached.attached());
}

TEST(ObserverPolicy, StageNamesCoverAllStages) {
  EXPECT_EQ(obs::stage_name(obs::Stage::kSerialize), "serialize");
  EXPECT_EQ(obs::stage_name(obs::Stage::kFrameWrite), "frame_write");
  EXPECT_EQ(obs::stage_name(obs::Stage::kSend), "send");
  EXPECT_EQ(obs::stage_name(obs::Stage::kReceive), "receive");
  EXPECT_EQ(obs::stage_name(obs::Stage::kFrameRead), "frame_read");
  EXPECT_EQ(obs::stage_name(obs::Stage::kDeserialize), "deserialize");
  EXPECT_EQ(obs::stage_name(obs::Stage::kHandler), "handler");
  EXPECT_EQ(obs::stage_name(obs::Stage::kSecurity), "security");
}

}  // namespace
}  // namespace bxsoap
