#include "services/descriptor.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "services/verification.hpp"
#include "services/schemes.hpp"
#include "soap/compressed.hpp"
#include "soap/engine.hpp"
#include "transport/bindings.hpp"
#include "transport/striped.hpp"
#include "workload/lead.hpp"

namespace bxsoap::services {
namespace {

constexpr std::string_view kSample =
    "<service name=\"verify\" xmlns=\"urn:bxsoap:service\">"
    "<endpoint binding=\"tcp\" encoding=\"bxsa\" port=\"9001\"/>"
    "<endpoint binding=\"http\" encoding=\"xml\" port=\"9002\" "
    "path=\"/verify\"/>"
    "</service>";

TEST(Descriptor, ParsesEndpoints) {
  const ServiceDescription desc = parse_service_description(kSample);
  EXPECT_EQ(desc.name, "verify");
  ASSERT_EQ(desc.endpoints.size(), 2u);
  EXPECT_EQ(desc.endpoints[0].binding, "tcp");
  EXPECT_EQ(desc.endpoints[0].encoding, "bxsa");
  EXPECT_EQ(desc.endpoints[0].port, 9001);
  EXPECT_EQ(desc.endpoints[0].path, "/soap") << "default path";
  EXPECT_EQ(desc.endpoints[1].path, "/verify");
}

TEST(Descriptor, FindEncoding) {
  const ServiceDescription desc = parse_service_description(kSample);
  ASSERT_NE(desc.find_encoding("xml"), nullptr);
  EXPECT_EQ(desc.find_encoding("xml")->port, 9002);
  EXPECT_EQ(desc.find_encoding("exi"), nullptr);
}

TEST(Descriptor, WriteParsesBack) {
  const ServiceDescription desc = parse_service_description(kSample);
  const std::string text = write_service_description(desc);
  const ServiceDescription back = parse_service_description(text);
  EXPECT_EQ(back.name, desc.name);
  ASSERT_EQ(back.endpoints.size(), desc.endpoints.size());
  EXPECT_EQ(back.endpoints[1].path, "/verify");
  EXPECT_EQ(back.endpoints[0].encoding, "bxsa");
}

TEST(Descriptor, RejectsMalformed) {
  EXPECT_THROW(parse_service_description("<service/>"), DecodeError);
  EXPECT_THROW(parse_service_description(
                   "<service name=\"x\" xmlns=\"urn:bxsoap:service\"/>"),
               DecodeError)
      << "no endpoints";
  EXPECT_THROW(
      parse_service_description(
          "<service name=\"x\" xmlns=\"urn:bxsoap:service\">"
          "<endpoint binding=\"smoke\" encoding=\"bxsa\" port=\"1\"/>"
          "</service>"),
      DecodeError);
  EXPECT_THROW(
      parse_service_description(
          "<service name=\"x\" xmlns=\"urn:bxsoap:service\">"
          "<endpoint binding=\"tcp\" encoding=\"morse\" port=\"1\"/>"
          "</service>"),
      DecodeError);
  EXPECT_THROW(
      parse_service_description(
          "<service name=\"x\" xmlns=\"urn:bxsoap:service\">"
          "<endpoint binding=\"tcp\" encoding=\"bxsa\" port=\"0\"/>"
          "</service>"),
      DecodeError);
  EXPECT_THROW(parse_service_description("<service name=\"x\"/>"),
               DecodeError)
      << "wrong namespace";
}

TEST(Descriptor, ConnectDrivesARealService) {
  // A service advertises its endpoints; clients connect from the
  // description alone, without compile-time knowledge of the policies.
  VerificationServer server;
  ServiceDescription desc;
  desc.name = "verify";
  desc.endpoints.push_back({"tcp", "bxsa", server.tcp_port(), "/soap"});
  desc.endpoints.push_back({"http", "xml", server.http_port(), "/soap"});

  const auto dataset = workload::make_lead_dataset(100);
  for (const auto& ep : desc.endpoints) {
    soap::AnySoapEngine engine = connect(ep);
    soap::SoapEnvelope resp = engine.call(make_data_request(dataset));
    const auto outcome = parse_verify_response(resp);
    EXPECT_TRUE(outcome.ok) << ep.encoding;
    EXPECT_EQ(outcome.count, 100u);
  }
}

TEST(Descriptor, StripedEndpointParsesAndConnects) {
  const ServiceDescription desc = parse_service_description(
      "<service name=\"bulk\" xmlns=\"urn:bxsoap:service\">"
      "<endpoint binding=\"tcp-striped\" encoding=\"bxsa\" port=\"9050\" "
      "streams=\"8\"/></service>");
  ASSERT_EQ(desc.endpoints.size(), 1u);
  EXPECT_EQ(desc.endpoints[0].streams, 8);
  // Round-trips through the writer.
  const ServiceDescription back =
      parse_service_description(write_service_description(desc));
  EXPECT_EQ(back.endpoints[0].streams, 8);
  EXPECT_EQ(back.endpoints[0].binding, "tcp-striped");

  // And actually drives a striped service.
  using namespace bxsoap::soap;
  using namespace bxsoap::transport;
  StripedServerBinding server_binding;
  const std::uint16_t port = server_binding.port();
  SoapEngine<BxsaEncoding, StripedServerBinding> server(
      {}, std::move(server_binding));
  std::thread service([&] { server.serve_once(verification_handler); });

  EndpointDescription ep = desc.endpoints[0];
  ep.port = port;
  ep.streams = 4;
  soap::AnySoapEngine engine = connect(ep);
  const auto dataset = workload::make_lead_dataset(50000);
  SoapEnvelope resp = engine.call(make_data_request(dataset));
  service.join();
  EXPECT_TRUE(parse_verify_response(resp).ok);
}

TEST(Descriptor, BadStreamCountRejected) {
  EXPECT_THROW(parse_service_description(
                   "<service name=\"x\" xmlns=\"urn:bxsoap:service\">"
                   "<endpoint binding=\"tcp-striped\" encoding=\"bxsa\" "
                   "port=\"1\" streams=\"0\"/></service>"),
               DecodeError);
  EXPECT_THROW(parse_service_description(
                   "<service name=\"x\" xmlns=\"urn:bxsoap:service\">"
                   "<endpoint binding=\"tcp-striped\" encoding=\"bxsa\" "
                   "port=\"1\" streams=\"100\"/></service>"),
               DecodeError);
}

TEST(Descriptor, CompressedEncodingEndpoint) {
  // An endpoint advertising xml+lzss; the server runs the matching policy.
  using namespace bxsoap::soap;
  using namespace bxsoap::transport;
  TcpServerBinding binding;
  const std::uint16_t port = binding.port();
  SoapEngine<CompressedEncoding<XmlEncoding>, TcpServerBinding> server(
      {}, std::move(binding));
  std::thread service([&] { server.serve_once(verification_handler); });

  ServiceDescription desc;
  desc.name = "verify";
  desc.endpoints.push_back({"tcp", "xml+lzss", port, "/soap"});

  soap::AnySoapEngine engine = connect(desc);
  const auto dataset = workload::make_lead_dataset(64);
  soap::SoapEnvelope resp = engine.call(make_data_request(dataset));
  service.join();
  EXPECT_TRUE(parse_verify_response(resp).ok);
}

}  // namespace
}  // namespace bxsoap::services
