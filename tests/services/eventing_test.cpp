#include "services/eventing.hpp"

#include <gtest/gtest.h>

#include "soap/engine.hpp"
#include "transport/bindings.hpp"
#include "xdm/node.hpp"

namespace bxsoap::services {
namespace {

using namespace bxsoap::xdm;

NodePtr reading(double value) {
  auto e = make_element(QName("urn:sensors", "reading", "sn"));
  e->declare_namespace("sn", "urn:sensors");
  e->add_child(make_leaf<double>(QName("urn:sensors", "value", "sn"), value));
  return e;
}

TEST(Eventing, SubscribePublishReceive) {
  EventBroker broker;
  EventListener listener("bxsa");

  const std::string id = subscribe(broker.port(), "weather", listener);
  EXPECT_FALSE(id.empty());
  EXPECT_EQ(broker.subscriber_count(), 1u);

  EXPECT_EQ(broker.publish("weather", *reading(287.5)), 1u);
  soap::SoapEnvelope env = listener.wait_event();
  const Notification n = parse_notification(env);
  EXPECT_EQ(n.topic, "weather");
  EXPECT_EQ(n.subscription_id, id);
  ASSERT_NE(n.payload, nullptr);
  EXPECT_EQ(n.payload->name().local, "reading");
}

TEST(Eventing, MixedEncodingSubscribersGetTheSameEvent) {
  // The paper's layering claim: the eventing layer works identically over
  // both encodings, per subscriber.
  EventBroker broker;
  EventListener binary_sub("bxsa");
  EventListener text_sub("xml");

  subscribe(broker.port(), "t", binary_sub);
  subscribe(broker.port(), "t", text_sub);
  EXPECT_EQ(broker.publish("t", *reading(300.25)), 2u);

  for (EventListener* l : {&binary_sub, &text_sub}) {
    soap::SoapEnvelope env = l->wait_event();
    const Notification n = parse_notification(env);
    const ElementBase* value =
        static_cast<const Element*>(n.payload)->find_child("value");
    ASSERT_NE(value, nullptr);
    ASSERT_EQ(value->kind(), NodeKind::kLeafElement);
    EXPECT_EQ(scalar_get<double>(
                  static_cast<const LeafElementBase*>(value)->scalar()),
              300.25);
  }
}

TEST(Eventing, TopicFiltering) {
  EventBroker broker;
  EventListener listener("bxsa");
  subscribe(broker.port(), "only-this", listener);

  EXPECT_EQ(broker.publish("something-else", *reading(1)), 0u);
  EXPECT_EQ(broker.publish("only-this", *reading(2)), 1u);
  EXPECT_EQ(listener.wait_event().body_payload()->name().local, "Notify");
  EXPECT_EQ(listener.received(), 1u);
}

TEST(Eventing, Unsubscribe) {
  EventBroker broker;
  EventListener listener("bxsa");
  const std::string id = subscribe(broker.port(), "t", listener);
  EXPECT_EQ(broker.subscriber_count(), 1u);
  unsubscribe(broker.port(), id);
  EXPECT_EQ(broker.subscriber_count(), 0u);
  EXPECT_EQ(broker.publish("t", *reading(1)), 0u);
}

TEST(Eventing, UnsubscribeUnknownIdFaults) {
  EventBroker broker;
  EXPECT_THROW(unsubscribe(broker.port(), "sub-999"), SoapFaultError);
}

TEST(Eventing, BadEncodingNameFaults) {
  EventBroker broker;
  // Subscribe directly with a bogus encoding; must fault, not crash.
  using namespace bxsoap::soap;
  using namespace bxsoap::transport;
  auto req = make_element(QName(std::string(kEventingUri), "Subscribe", "wse"));
  req->add_attribute(QName("topic"), std::string("t"));
  req->add_attribute(QName("port"), std::string("1"));
  req->add_attribute(QName("encoding"), std::string("carrier-pigeon"));
  SoapEngine<BxsaEncoding, TcpClientBinding> client(
      {}, TcpClientBinding(broker.port()));
  SoapEnvelope resp = client.call(SoapEnvelope::wrap(std::move(req)));
  ASSERT_TRUE(resp.is_fault());
  EXPECT_EQ(resp.fault().code, "soap:Client");
}

TEST(Eventing, DeadSubscriberIsDropped) {
  EventBroker broker;
  {
    EventListener ephemeral("bxsa");
    subscribe(broker.port(), "t", ephemeral);
  }  // listener gone, port closed
  EXPECT_EQ(broker.publish("t", *reading(1)), 0u);
  EXPECT_EQ(broker.subscriber_count(), 0u)
      << "failed delivery must remove the subscription";
}

TEST(Eventing, MultipleEventsQueueInOrder) {
  EventBroker broker;
  EventListener listener("xml");
  subscribe(broker.port(), "t", listener);
  for (int i = 0; i < 5; ++i) {
    broker.publish("t", *reading(100.0 + i));
  }
  for (int i = 0; i < 5; ++i) {
    soap::SoapEnvelope env = listener.wait_event();
    const Notification n = parse_notification(env);
    const auto* value = static_cast<const Element*>(n.payload)
                            ->find_child("value");
    EXPECT_EQ(scalar_get<double>(
                  static_cast<const LeafElementBase*>(value)->scalar()),
              100.0 + i);
  }
}

}  // namespace
}  // namespace bxsoap::services
