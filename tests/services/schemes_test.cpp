// Integration tests: all four of the paper's deployment schemes end-to-end
// over real loopback sockets, plus the transcoding intermediary.
#include "services/schemes.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include "soap/engine.hpp"
#include "transport/bindings.hpp"

namespace bxsoap::services {
namespace {

using workload::LeadDataset;
using workload::make_lead_dataset;

class SchemesFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    shared_dir_ = std::filesystem::temp_directory_path() /
                  ("bxsoap_schemes_" + std::to_string(::getpid()));
    std::filesystem::create_directories(shared_dir_);
    server_ = std::make_unique<VerificationServer>();
    file_server_ = std::make_unique<transport::HttpFileServer>(shared_dir_);
    ftp_ = std::make_unique<gridftp::GridFtpServer>(shared_dir_);
    dataset_ = make_lead_dataset(500);
    expected_ = verify_dataset(dataset_);
  }

  void TearDown() override {
    ftp_.reset();
    file_server_.reset();
    server_.reset();
    std::filesystem::remove_all(shared_dir_);
  }

  std::filesystem::path shared_dir_;
  std::unique_ptr<VerificationServer> server_;
  std::unique_ptr<transport::HttpFileServer> file_server_;
  std::unique_ptr<gridftp::GridFtpServer> ftp_;
  LeadDataset dataset_;
  VerificationOutcome expected_;
};

TEST_F(SchemesFixture, VerifyDatasetAcceptsGeneratorOutput) {
  EXPECT_TRUE(expected_.ok);
  EXPECT_EQ(expected_.count, 500u);
}

TEST_F(SchemesFixture, VerifyDatasetRejectsCorruptData) {
  LeadDataset bad = dataset_;
  bad.values[7] = 1000.0;  // outside instrument range
  EXPECT_FALSE(verify_dataset(bad).ok);
  bad = dataset_;
  bad.index[3] = 99;
  EXPECT_FALSE(verify_dataset(bad).ok);
}

TEST_F(SchemesFixture, UnifiedBxsaTcp) {
  const VerificationOutcome o =
      run_unified_bxsa_tcp(dataset_, server_->tcp_port());
  EXPECT_EQ(o, expected_);
}

TEST_F(SchemesFixture, UnifiedXmlHttp) {
  const VerificationOutcome o =
      run_unified_xml_http(dataset_, server_->http_port());
  EXPECT_EQ(o, expected_);
}

TEST_F(SchemesFixture, SeparatedHttp) {
  const VerificationOutcome o = run_separated_http(
      dataset_, server_->http_port(), *file_server_, "run1.nc");
  EXPECT_EQ(o, expected_);
}

TEST_F(SchemesFixture, SeparatedGridftpSingleStream) {
  const VerificationOutcome o = run_separated_gridftp(
      dataset_, server_->http_port(), *ftp_, "run2.nc", 1);
  EXPECT_EQ(o, expected_);
}

TEST_F(SchemesFixture, SeparatedGridftpParallelStreams) {
  const VerificationOutcome o = run_separated_gridftp(
      dataset_, server_->http_port(), *ftp_, "run3.nc", 4);
  EXPECT_EQ(o, expected_);
}

TEST_F(SchemesFixture, AllSchemesAgree) {
  // The paper's premise: the same logical computation through four very
  // different stacks. Results must be identical.
  const auto a = run_unified_bxsa_tcp(dataset_, server_->tcp_port());
  const auto b = run_unified_xml_http(dataset_, server_->http_port());
  const auto c = run_separated_http(dataset_, server_->http_port(),
                                    *file_server_, "agree.nc");
  const auto d = run_separated_gridftp(dataset_, server_->http_port(), *ftp_,
                                       "agree2.nc", 2);
  EXPECT_EQ(a, b);
  EXPECT_EQ(b, c);
  EXPECT_EQ(c, d);
}

TEST_F(SchemesFixture, SeparatedHttpMissingFileFaults) {
  using namespace bxsoap::soap;
  using namespace bxsoap::transport;
  SoapEngine<XmlEncoding, HttpClientBinding> client(
      {}, HttpClientBinding(server_->http_port()));
  SoapEnvelope resp = client.call(
      make_http_fetch_request(file_server_->url_for("missing.nc")));
  ASSERT_TRUE(resp.is_fault());
  EXPECT_EQ(resp.fault().code, "soap:Server");
}

TEST_F(SchemesFixture, UnknownChannelFaults) {
  using namespace bxsoap::soap;
  using namespace bxsoap::transport;
  auto payload = xdm::make_element(xdm::QName("urn:lead", "fetch", "lead"));
  payload->add_attribute(xdm::QName("channel"), std::string("carrier-pigeon"));
  SoapEngine<XmlEncoding, HttpClientBinding> client(
      {}, HttpClientBinding(server_->http_port()));
  SoapEnvelope resp = client.call(SoapEnvelope::wrap(std::move(payload)));
  ASSERT_TRUE(resp.is_fault());
  EXPECT_EQ(resp.fault().code, "soap:Client");
}

TEST_F(SchemesFixture, SequentialRequestsOnAllChannels) {
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(run_unified_bxsa_tcp(dataset_, server_->tcp_port()), expected_);
    EXPECT_EQ(run_unified_xml_http(dataset_, server_->http_port()),
              expected_);
  }
}

TEST_F(SchemesFixture, TranscodingRelayBridgesXmlClientsToBxsaBackend) {
  // An XML/HTTP client talks to the relay; the backend only speaks
  // BXSA/TCP. The intermediary transcodes both directions.
  TranscodingRelay relay(server_->tcp_port());
  const VerificationOutcome o =
      run_unified_xml_http(dataset_, relay.http_port());
  EXPECT_EQ(o, expected_);
  relay.stop();
}

TEST_F(SchemesFixture, BxsaAsIntermediateProtocolBetweenXmlEndpoints) {
  // Paper §5.1: "transcodability enables BXSA to be the intermediate
  // protocol over the message hops, even when the message sender and
  // receiver are communicating via textual XML."
  //
  //   XML client --HTTP--> relayA --BXSA/TCP--> relayB --HTTP--> XML server
  ReverseTranscodingRelay relay_b(server_->http_port());  // BXSA -> XML
  TranscodingRelay relay_a(relay_b.tcp_port());           // XML -> BXSA

  const VerificationOutcome o =
      run_unified_xml_http(dataset_, relay_a.http_port());
  EXPECT_EQ(o, expected_);
  relay_a.stop();
  relay_b.stop();
}

TEST(RelaySecurity, SignatureSurvivesTranscoding) {
  // The flagship layering claim: a BodyDigestSignature computed at the
  // bXDM level verifies after the relay transcodes the message from
  // textual XML to BXSA — security composes with encoding because both are
  // policies below the data model.
  using namespace bxsoap::soap;
  using namespace bxsoap::transport;

  // Backend: BXSA/TCP, signature required.
  TcpServerBinding backend_binding;
  const std::uint16_t backend_port = backend_binding.port();
  SoapEngine<BxsaEncoding, TcpServerBinding, BodyDigestSignature> backend(
      {}, std::move(backend_binding), BodyDigestSignature("sh4red"));
  std::thread backend_thread([&] {
    backend.serve_once([](SoapEnvelope req) {
      auto out = xdm::make_element(xdm::QName("urn:t", "Ack", "t"));
      out->add_child(req.body_payload()->clone());
      return SoapEnvelope::wrap(std::move(out));
    });
  });

  // Intermediary: XML/HTTP front, BXSA/TCP back, no security of its own.
  TranscodingRelay relay(backend_port);

  // Client: XML/HTTP, signs with the shared key.
  SoapEngine<XmlEncoding, HttpClientBinding, BodyDigestSignature> client(
      {}, HttpClientBinding(relay.http_port()), BodyDigestSignature("sh4red"));

  auto payload = xdm::make_element(xdm::QName("urn:t", "Order", "t"));
  payload->add_child(
      xdm::make_array<double>(xdm::QName("urn:t", "qty", "t"), {1.5, 2.5}));
  SoapEnvelope resp = client.call(SoapEnvelope::wrap(std::move(payload)));
  backend_thread.join();
  relay.stop();

  ASSERT_FALSE(resp.is_fault())
      << (resp.is_fault() ? resp.fault().reason : "");
  EXPECT_EQ(resp.body_payload()->name().local, "Ack");
}

TEST_F(SchemesFixture, RelayForwardsFaultsToo) {
  using namespace bxsoap::soap;
  using namespace bxsoap::transport;
  TranscodingRelay relay(server_->tcp_port());
  auto payload = xdm::make_element(xdm::QName("urn:lead", "bogus", "lead"));
  SoapEngine<XmlEncoding, HttpClientBinding> client(
      {}, HttpClientBinding(relay.http_port()));
  SoapEnvelope resp = client.call(SoapEnvelope::wrap(std::move(payload)));
  ASSERT_TRUE(resp.is_fault());
  EXPECT_EQ(resp.fault().code, "soap:Client");
  relay.stop();
}

}  // namespace
}  // namespace bxsoap::services
