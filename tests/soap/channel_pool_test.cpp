#include "soap/channel_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "services/verification.hpp"
#include "soap/reliable.hpp"
#include "transport/server.hpp"
#include "workload/lead.hpp"

namespace bxsoap::soap {
namespace {

using transport::ConcurrencyModel;
using transport::ServerConfig;
using transport::SoapServer;

std::unique_ptr<SoapServer> make_server() {
  ServerConfig cfg;
  cfg.encoding = AnyEncoding::from(BxsaEncoding{});
  cfg.handler = services::verification_handler;
  return SoapServer::create(ConcurrencyModel::kEventLoop, std::move(cfg));
}

TEST(ChannelPool, ConcurrentCallersShareKChannels) {
  auto server = make_server();
  obs::Registry registry;
  TcpChannelPool<BxsaEncoding>::Config cfg;
  cfg.port = server->port();
  cfg.channels = 3;
  cfg.registry = &registry;
  TcpChannelPool<BxsaEncoding> pool(cfg);
  EXPECT_EQ(pool.size(), 3u);

  constexpr int kThreads = 8;
  constexpr int kCallsEach = 6;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kCallsEach; ++i) {
        const std::size_t n = 10 + static_cast<std::size_t>(t);
        SoapEnvelope resp = pool.call(
            services::make_data_request(workload::make_lead_dataset(n)));
        const auto outcome = services::parse_verify_response(resp);
        if (!outcome.ok || outcome.count != n) ++failures;
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(failures.load(), 0);
  const std::size_t total = kThreads * kCallsEach;
  EXPECT_EQ(server->exchanges(), total);
  EXPECT_EQ(pool.resets(), 0u);
  EXPECT_EQ(registry.counter("client.channels.calls").value(), total);
  EXPECT_EQ(registry.gauge("client.channels.channels.in_use").value(), 0);
  // 8 threads over 3 channels: somebody must have waited at checkout.
  EXPECT_EQ(registry.histogram("client.channels.checkout.wait.ns").count(),
            total);
  // K persistent connections, not one per call.
  EXPECT_EQ(server->active_connections(), 3u);
}

TEST(ChannelPool, DeadChannelIsResetAndReplaced) {
  auto server = make_server();
  TcpChannelPool<BxsaEncoding>::Config cfg;
  cfg.port = server->port();
  cfg.channels = 1;
  TcpChannelPool<BxsaEncoding> pool(cfg);

  SoapEnvelope ok = pool.call(
      services::make_data_request(workload::make_lead_dataset(4)));
  EXPECT_TRUE(services::parse_verify_response(ok).ok);

  // Kill the server mid-pool: the channel's connection dies with it.
  const std::uint16_t port = server->port();
  server->stop();
  EXPECT_THROW(pool.call(services::make_data_request(
                   workload::make_lead_dataset(4))),
               TransportError);
  EXPECT_GE(pool.resets(), 1u);

  // A replacement server on the same port: the reset channel reconnects
  // lazily and the pool is healthy again without rebuilding it.
  ServerConfig cfg2;
  cfg2.encoding = AnyEncoding::from(BxsaEncoding{});
  cfg2.handler = services::verification_handler;
  cfg2.port = port;
  auto revived = SoapServer::create(ConcurrencyModel::kEventLoop,
                                    std::move(cfg2));
  SoapEnvelope again = pool.call(
      services::make_data_request(workload::make_lead_dataset(6)));
  EXPECT_TRUE(services::parse_verify_response(again).ok);
}

TEST(ChannelPool, CheckoutTimeoutFailsFastWhenAllChannelsAreBusy) {
  // A handler gate keeps the single channel checked out until released.
  std::atomic<bool> release{false};
  ServerConfig scfg;
  scfg.encoding = AnyEncoding::from(BxsaEncoding{});
  scfg.handler = [&release](SoapEnvelope env) {
    while (!release.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return env;
  };
  auto server = SoapServer::create(ConcurrencyModel::kEventLoop,
                                   std::move(scfg));

  obs::Registry registry;
  TcpChannelPool<BxsaEncoding>::Config cfg;
  cfg.port = server->port();
  cfg.channels = 1;
  cfg.checkout_timeout = std::chrono::milliseconds(50);
  cfg.registry = &registry;
  TcpChannelPool<BxsaEncoding> pool(cfg);

  std::thread occupant([&pool] {
    pool.call(services::make_data_request(workload::make_lead_dataset(3)));
  });
  // Wait (bounded) until the occupant holds the only channel.
  for (int i = 0; i < 2000; ++i) {
    if (registry.gauge("client.channels.channels.in_use").value() == 1) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(registry.gauge("client.channels.channels.in_use").value(), 1);

  // Historically this wait was unbounded — a stalled server stranded
  // every caller forever. With checkout_timeout it is a typed, counted
  // transport failure instead.
  EXPECT_THROW(pool.call(services::make_data_request(
                   workload::make_lead_dataset(3))),
               TransportError);
  EXPECT_EQ(registry.counter("client.channels.checkout.timeout").value(), 1u);

  release.store(true, std::memory_order_release);
  occupant.join();
  // The timed-out caller never touched the channel: no poison, no reset,
  // and the pool still serves.
  EXPECT_EQ(pool.resets(), 0u);
  SoapEnvelope after = pool.call(
      services::make_data_request(workload::make_lead_dataset(5)));
  EXPECT_FALSE(after.is_fault());  // the gate handler echoes the request
}

// The pool has the engine's call() shape, so ReliableCaller composes on
// top: a transient failure poisons the channel, the pool resets it, and
// the retry lands on a fresh connection.
TEST(ChannelPool, ComposesUnderReliableCaller) {
  auto server = make_server();
  TcpChannelPool<BxsaEncoding>::Config cfg;
  cfg.port = server->port();
  cfg.channels = 2;
  TcpChannelPool<BxsaEncoding> pool(cfg);

  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff = std::chrono::milliseconds(1);
  ReliableCaller<TcpChannelPool<BxsaEncoding>> caller(pool, policy);
  caller.set_sleep_hook([](std::chrono::milliseconds) {});

  SoapEnvelope resp = caller.call(
      services::make_data_request(workload::make_lead_dataset(9)));
  EXPECT_TRUE(services::parse_verify_response(resp).ok);
}

}  // namespace
}  // namespace bxsoap::soap
