// Property test: random envelopes through every encoding x binding
// combination must arrive as deep-equal trees. This is the paper's
// transparency claim, stress-tested: the application payload cannot tell
// which stack carried it.
#include <gtest/gtest.h>

#include <thread>

#include "common/prng.hpp"
#include "soap/compressed.hpp"
#include "soap/engine.hpp"
#include "transport/bindings.hpp"
#include "transport/inmemory.hpp"
#include "xdm/equal.hpp"

namespace bxsoap::soap {
namespace {

using namespace bxsoap::xdm;
using namespace bxsoap::transport;

NodePtr random_payload(SplitMix64& rng, int depth = 0) {
  auto e = make_element(QName("urn:p", "n" + std::to_string(rng.next_below(4)),
                              "p"));
  if (rng.next_bool()) {
    e->add_attribute(QName("a"), static_cast<std::int32_t>(rng.next_i32()));
  }
  if (rng.next_bool()) {
    e->add_attribute(QName("s"), std::string("v" + std::to_string(
                                                  rng.next_below(100))));
  }
  const std::uint64_t kids = depth > 2 ? 0 : rng.next_below(4);
  bool last_was_text = false;
  for (std::uint64_t i = 0; i < kids; ++i) {
    switch (rng.next_below(4)) {
      case 0:
        e->add_child(random_payload(rng, depth + 1));
        last_was_text = false;
        break;
      case 1:
        e->add_child(make_leaf<double>(QName("d"), rng.next_double01()));
        last_was_text = false;
        break;
      case 2: {
        std::vector<float> v(rng.next_below(40));
        for (auto& x : v) x = static_cast<float>(rng.next_double01());
        e->add_child(make_array<float>(QName("f"), std::move(v)));
        last_was_text = false;
        break;
      }
      default:
        // Adjacent text nodes merge when parsed back from textual XML (an
        // XML infoset property, not a codec defect), so never emit two in
        // a row.
        if (!last_was_text) {
          e->add_text("txt<&>" + std::to_string(rng.next_below(50)));
          last_was_text = true;
        }
    }
  }
  return e;
}

class ComboProperty : public ::testing::TestWithParam<std::uint64_t> {};

template <typename Encoding>
void check_in_memory(const SoapEnvelope& request) {
  auto [client_end, server_end] = InMemoryBinding::make_pair();
  SoapEngine<Encoding, InMemoryBinding> client({}, std::move(client_end));
  SoapEngine<Encoding, InMemoryBinding> server({}, std::move(server_end));

  std::thread service([&] {
    server.serve_once([](SoapEnvelope req) { return req; });  // echo
  });
  SoapEnvelope response = client.call(request);
  service.join();

  EXPECT_TRUE(deep_equal(request.document(), response.document()))
      << first_difference(request.document(), response.document());
}

TEST_P(ComboProperty, EchoPreservesTreeUnderAllEncodings) {
  SplitMix64 rng(GetParam());
  SoapEnvelope request = SoapEnvelope::wrap(random_payload(rng));

  check_in_memory<XmlEncoding>(request);
  check_in_memory<BxsaEncoding>(request);
  check_in_memory<CompressedEncoding<XmlEncoding>>(request);
  check_in_memory<CompressedEncoding<BxsaEncoding>>(request);
}

TEST_P(ComboProperty, CrossEncodingAgreement) {
  // Decode(XML(encode)) and Decode(BXSA(encode)) must agree exactly.
  SplitMix64 rng(GetParam() + 1000);
  SoapEnvelope env = SoapEnvelope::wrap(random_payload(rng));
  XmlEncoding xml_enc;
  BxsaEncoding bxsa_enc;
  auto via_xml = xml_enc.deserialize(xml_enc.serialize(env.document()));
  auto via_bxsa = bxsa_enc.deserialize(bxsa_enc.serialize(env.document()));
  EXPECT_TRUE(deep_equal(*via_xml, *via_bxsa))
      << first_difference(*via_xml, *via_bxsa);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ComboProperty,
                         ::testing::Range<std::uint64_t>(1, 26));

TEST(ComboRealSockets, RandomPayloadOverTcpAndHttp) {
  SplitMix64 rng(777);
  SoapEnvelope request = SoapEnvelope::wrap(random_payload(rng));

  {
    TcpServerBinding sb;
    const auto port = sb.port();
    SoapEngine<BxsaEncoding, TcpServerBinding> server({}, std::move(sb));
    std::thread service([&] {
      server.serve_once([](SoapEnvelope req) { return req; });
    });
    SoapEngine<BxsaEncoding, TcpClientBinding> client({},
                                                      TcpClientBinding(port));
    SoapEnvelope resp = client.call(request);
    service.join();
    EXPECT_TRUE(deep_equal(request.document(), resp.document()));
  }
  {
    HttpServerBinding sb;
    const auto port = sb.port();
    SoapEngine<XmlEncoding, HttpServerBinding> server({}, std::move(sb));
    std::thread service([&] {
      server.serve_once([](SoapEnvelope req) { return req; });
    });
    SoapEngine<XmlEncoding, HttpClientBinding> client(
        {}, HttpClientBinding(port));
    SoapEnvelope resp = client.call(request);
    service.join();
    EXPECT_TRUE(deep_equal(request.document(), resp.document()));
  }
}

}  // namespace
}  // namespace bxsoap::soap
