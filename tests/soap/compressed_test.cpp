#include "soap/compressed.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "services/verification.hpp"
#include "soap/engine.hpp"
#include "transport/inmemory.hpp"
#include "workload/lead.hpp"
#include "xdm/equal.hpp"

namespace bxsoap::soap {
namespace {

using transport::InMemoryBinding;

TEST(CompressedEncoding, RoundTripsDocuments) {
  const auto dataset = workload::make_lead_dataset(500);
  SoapEnvelope env = services::make_data_request(dataset);

  CompressedEncoding<XmlEncoding> enc;
  const auto bytes = enc.serialize(env.document());
  SoapEnvelope back(enc.deserialize(bytes));
  EXPECT_TRUE(xdm::deep_equal(env.document(), back.document()));
}

TEST(CompressedEncoding, XmlCompressesALot) {
  const auto dataset = workload::make_lead_dataset(2000);
  SoapEnvelope env = services::make_data_request(dataset);

  XmlEncoding plain;
  CompressedEncoding<XmlEncoding> compressed;
  const auto raw = plain.serialize(env.document());
  const auto packed = compressed.serialize(env.document());
  EXPECT_LT(packed.size(), raw.size() / 2)
      << "textual XML's redundancy must compress away";
}

TEST(CompressedEncoding, BxsaBarelyCompresses) {
  const auto dataset = workload::make_lead_dataset(2000);
  SoapEnvelope env = services::make_data_request(dataset);

  BxsaEncoding plain;
  CompressedEncoding<BxsaEncoding> compressed;
  const auto raw = plain.serialize(env.document());
  const auto packed = compressed.serialize(env.document());
  // Packed doubles look random to LZSS; the sequential int32 index array
  // contributes some compressible zero bytes, but nothing like XML's
  // factor-two redundancy. This quantifies "BXSA leaves little slack".
  EXPECT_GT(packed.size(), raw.size() / 2);
  // ...and the round trip still holds.
  SoapEnvelope back(compressed.deserialize(packed));
  EXPECT_TRUE(xdm::deep_equal(env.document(), back.document()));
}

TEST(CompressedEncoding, WorksAsEnginePolicy) {
  auto [client_end, server_end] = InMemoryBinding::make_pair();
  SoapEngine<CompressedEncoding<XmlEncoding>, InMemoryBinding> client(
      {}, std::move(client_end));
  SoapEngine<CompressedEncoding<XmlEncoding>, InMemoryBinding> server(
      {}, std::move(server_end));

  const auto dataset = workload::make_lead_dataset(200);
  std::thread service([&] {
    server.serve_once(services::verification_handler);
  });
  SoapEnvelope resp = client.call(services::make_data_request(dataset));
  service.join();
  const auto outcome = services::parse_verify_response(resp);
  EXPECT_TRUE(outcome.ok);
  EXPECT_EQ(outcome.count, 200u);
}

TEST(CompressedEncoding, GarbageInputRejected) {
  CompressedEncoding<BxsaEncoding> enc;
  const std::vector<std::uint8_t> junk = {1, 2, 3, 4, 5};
  EXPECT_THROW(enc.deserialize(junk), DecodeError);
}

}  // namespace
}  // namespace bxsoap::soap
