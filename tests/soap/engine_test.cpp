#include "soap/engine.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "soap/addressing.hpp"
#include "soap/any_engine.hpp"
#include "transport/inmemory.hpp"
#include "xdm/equal.hpp"

namespace bxsoap::soap {
namespace {

using namespace bxsoap::xdm;
using transport::InMemoryBinding;

SoapEnvelope echo_request() {
  auto payload = make_element(QName("urn:t", "Echo", "t"));
  payload->declare_namespace("t", "urn:t");
  payload->add_child(make_array<std::int32_t>(QName("urn:t", "nums", "t"),
                                              {1, 2, 3}));
  return SoapEnvelope::wrap(std::move(payload));
}

/// Handler that wraps the request payload in an EchoResponse.
SoapEnvelope echo_handler(SoapEnvelope request) {
  const ElementBase* in = request.body_payload();
  if (in == nullptr) throw SoapFaultError("soap:Client", "empty body");
  auto out = make_element(QName("urn:t", "EchoResponse", "t"));
  out->add_child(in->clone());
  return SoapEnvelope::wrap(std::move(out));
}

template <typename Encoding>
void run_echo_exchange() {
  auto [client_end, server_end] = InMemoryBinding::make_pair();
  SoapEngine<Encoding, InMemoryBinding> client({}, std::move(client_end));
  SoapEngine<Encoding, InMemoryBinding> server({}, std::move(server_end));

  std::thread server_thread([&] { server.serve_once(echo_handler); });
  SoapEnvelope response = client.call(echo_request());
  server_thread.join();

  response.throw_if_fault();
  const ElementBase* payload = response.body_payload();
  ASSERT_NE(payload, nullptr);
  EXPECT_EQ(payload->name().local, "EchoResponse");
  const auto* echoed =
      static_cast<const Element*>(payload)->find_child("Echo");
  ASSERT_NE(echoed, nullptr);
}

TEST(SoapEngine, EchoOverXmlEncoding) { run_echo_exchange<XmlEncoding>(); }
TEST(SoapEngine, EchoOverBxsaEncoding) { run_echo_exchange<BxsaEncoding>(); }

TEST(SoapEngine, HandlerExceptionBecomesFault) {
  auto [client_end, server_end] = InMemoryBinding::make_pair();
  SoapEngine<BxsaEncoding, InMemoryBinding> client({}, std::move(client_end));
  SoapEngine<BxsaEncoding, InMemoryBinding> server({}, std::move(server_end));

  std::thread server_thread([&] {
    server.serve_once([](SoapEnvelope) -> SoapEnvelope {
      throw std::runtime_error("database exploded");
    });
  });
  SoapEnvelope response = client.call(echo_request());
  server_thread.join();

  ASSERT_TRUE(response.is_fault());
  const Fault f = response.fault();
  EXPECT_EQ(f.code, "soap:Server");
  EXPECT_EQ(f.reason, "database exploded");
  EXPECT_THROW(response.throw_if_fault(), SoapFaultError);
}

TEST(SoapEngine, SoapFaultErrorKeepsItsCode) {
  auto [client_end, server_end] = InMemoryBinding::make_pair();
  SoapEngine<XmlEncoding, InMemoryBinding> client({}, std::move(client_end));
  SoapEngine<XmlEncoding, InMemoryBinding> server({}, std::move(server_end));

  std::thread server_thread([&] {
    server.serve_once([](SoapEnvelope) -> SoapEnvelope {
      throw SoapFaultError("soap:Client", "you sent garbage");
    });
  });
  SoapEnvelope response = client.call(echo_request());
  server_thread.join();

  ASSERT_TRUE(response.is_fault());
  EXPECT_EQ(response.fault().code, "soap:Client");
}

TEST(SoapEngine, MalformedRequestBecomesFaultNotCrash) {
  auto [client_end, server_end] = InMemoryBinding::make_pair();
  SoapEngine<BxsaEncoding, InMemoryBinding> server({}, std::move(server_end));

  std::thread server_thread([&] {
    server.serve_once(echo_handler);
  });
  // Hand-deliver garbage bytes as the "request".
  WireMessage junk;
  junk.content_type = "application/bxsa";
  junk.payload = {0xFF, 0x00, 0x13};
  client_end.send_request(std::move(junk));
  // The response still arrives, as a decode fault. Reading it requires the
  // matching encoding; the fault envelope is valid BXSA.
  WireMessage raw = client_end.receive_response();
  server_thread.join();
  BxsaEncoding enc;
  SoapEnvelope response(enc.deserialize(raw.payload));
  ASSERT_TRUE(response.is_fault());
  // Undecodable bytes are the sender's fault, answered in-band.
  EXPECT_EQ(response.fault().code, "soap:Client");
}

TEST(SoapEngine, OneWaySendDoesNotWaitForResponse) {
  auto [client_end, server_end] = InMemoryBinding::make_pair();
  SoapEngine<BxsaEncoding, InMemoryBinding> client({}, std::move(client_end));
  SoapEngine<BxsaEncoding, InMemoryBinding> server({}, std::move(server_end));

  client.send_request(echo_request());  // returns immediately
  SoapEnvelope received = server.receive_request();
  EXPECT_EQ(received.body_payload()->name().local, "Echo");
}

TEST(SoapEngine, MessageSecuritySignsAndVerifies) {
  auto [client_end, server_end] = InMemoryBinding::make_pair();
  SoapEngine<BxsaEncoding, InMemoryBinding, BodyDigestSignature> client(
      {}, std::move(client_end), BodyDigestSignature("k3y"));
  SoapEngine<BxsaEncoding, InMemoryBinding, BodyDigestSignature> server(
      {}, std::move(server_end), BodyDigestSignature("k3y"));

  std::thread server_thread([&] { server.serve_once(echo_handler); });
  SoapEnvelope response = client.call(echo_request());
  server_thread.join();
  EXPECT_FALSE(response.is_fault());
}

TEST(SoapEngine, WrongKeyIsRejectedAsClientFault) {
  auto [client_end, server_end] = InMemoryBinding::make_pair();
  SoapEngine<BxsaEncoding, InMemoryBinding, BodyDigestSignature> client(
      {}, std::move(client_end), BodyDigestSignature("alice"));
  SoapEngine<BxsaEncoding, InMemoryBinding, BodyDigestSignature> server(
      {}, std::move(server_end), BodyDigestSignature("mallory"));

  std::thread server_thread([&] { server.serve_once(echo_handler); });
  SoapEnvelope response = client.call(echo_request());
  server_thread.join();
  ASSERT_TRUE(response.is_fault());
  EXPECT_EQ(response.fault().code, "soap:Client");
}

TEST(SoapEngine, UnsignedRequestToSignedServerFaults) {
  auto [client_end, server_end] = InMemoryBinding::make_pair();
  SoapEngine<BxsaEncoding, InMemoryBinding> client({}, std::move(client_end));
  SoapEngine<BxsaEncoding, InMemoryBinding, BodyDigestSignature> server(
      {}, std::move(server_end), BodyDigestSignature("k"));

  std::thread server_thread([&] { server.serve_once(echo_handler); });
  SoapEnvelope response = client.call(echo_request());
  server_thread.join();
  ASSERT_TRUE(response.is_fault());
  EXPECT_NE(response.fault().reason.find("security"), std::string::npos);
}

TEST(SoapEngine, SecurityComposesWithXmlEncodingToo) {
  // The same signature must verify when the message travels as textual XML
  // (the digest is computed at the bXDM level).
  auto [client_end, server_end] = InMemoryBinding::make_pair();
  SoapEngine<XmlEncoding, InMemoryBinding, BodyDigestSignature> client(
      {}, std::move(client_end), BodyDigestSignature("k3y"));
  SoapEngine<XmlEncoding, InMemoryBinding, BodyDigestSignature> server(
      {}, std::move(server_end), BodyDigestSignature("k3y"));

  std::thread server_thread([&] { server.serve_once(echo_handler); });
  SoapEnvelope response = client.call(echo_request());
  server_thread.join();
  EXPECT_FALSE(response.is_fault());
}

TEST(AnySoapEngine, BehavesLikeStaticEngine) {
  auto [client_end, server_end] = InMemoryBinding::make_pair();
  AnySoapEngine client(AnyEncoding::from(BxsaEncoding{}),
                       AnyBinding::from(std::move(client_end)));
  AnySoapEngine server(AnyEncoding::from(BxsaEncoding{}),
                       AnyBinding::from(std::move(server_end)));

  std::thread server_thread([&] {
    SoapEnvelope req = server.receive_request();
    server.send_response(echo_handler(std::move(req)));
  });
  SoapEnvelope response = client.call(echo_request());
  server_thread.join();
  EXPECT_EQ(response.body_payload()->name().local, "EchoResponse");
}

TEST(Addressing, HeadersRoundTripThroughBothEncodings) {
  SoapEnvelope env = echo_request();
  set_action(env, "urn:t/Echo");
  set_message_id(env, "uuid:1234");
  set_to(env, "urn:service");

  for (int use_bxsa = 0; use_bxsa < 2; ++use_bxsa) {
    std::vector<std::uint8_t> bytes;
    DocumentPtr doc;
    if (use_bxsa != 0) {
      BxsaEncoding enc;
      bytes = enc.serialize(env.document());
      doc = enc.deserialize(bytes);
    } else {
      XmlEncoding enc;
      bytes = enc.serialize(env.document());
      doc = enc.deserialize(bytes);
    }
    SoapEnvelope back{std::move(doc)};
    EXPECT_EQ(get_action(back).value_or(""), "urn:t/Echo");
    EXPECT_EQ(get_message_id(back).value_or(""), "uuid:1234");
    EXPECT_EQ(get_to(back).value_or(""), "urn:service");
    EXPECT_FALSE(get_relates_to(back).has_value());
  }
}

TEST(Addressing, MissingHeaderYieldsNullopt) {
  SoapEnvelope env = echo_request();
  EXPECT_FALSE(get_action(env).has_value());
}

}  // namespace
}  // namespace bxsoap::soap
