#include "soap/envelope.hpp"

#include <gtest/gtest.h>

#include "soap/encoding.hpp"
#include "xdm/equal.hpp"

namespace bxsoap::soap {
namespace {

using namespace bxsoap::xdm;

TEST(Envelope, FreshEnvelopeHasBodyNoHeader) {
  SoapEnvelope env;
  EXPECT_FALSE(env.has_header());
  EXPECT_EQ(env.body().child_count(), 0u);
  EXPECT_EQ(env.body_payload(), nullptr);
  EXPECT_FALSE(env.is_fault());
}

TEST(Envelope, WrapPutsPayloadInBody) {
  auto payload = make_element(QName("urn:app", "Run", "app"));
  payload->add_child(make_leaf<std::int32_t>(QName("id"), 7));
  SoapEnvelope env = SoapEnvelope::wrap(std::move(payload));
  const ElementBase* p = env.body_payload();
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->name().local, "Run");
}

TEST(Envelope, HeaderCreatedBeforeBody) {
  SoapEnvelope env;
  env.add_header_block(make_leaf<std::string>(QName("h"), std::string("v")));
  ASSERT_TRUE(env.has_header());
  // Header must be the first child of Envelope.
  const auto kids = env.envelope().child_elements();
  ASSERT_EQ(kids.size(), 2u);
  EXPECT_EQ(kids[0]->name().local, "Header");
  EXPECT_EQ(kids[1]->name().local, "Body");
}

TEST(Envelope, FaultConstructionAndParsing) {
  SoapEnvelope env = SoapEnvelope::make_fault(
      {"soap:Server", "boom happened", "stack details"});
  EXPECT_TRUE(env.is_fault());
  const Fault f = env.fault();
  EXPECT_EQ(f.code, "soap:Server");
  EXPECT_EQ(f.reason, "boom happened");
  EXPECT_EQ(f.detail, "stack details");
  EXPECT_THROW(env.throw_if_fault(), SoapFaultError);
}

TEST(Envelope, NonFaultThrowIfFaultIsNoop) {
  SoapEnvelope env = SoapEnvelope::wrap(make_element(QName("x")));
  EXPECT_NO_THROW(env.throw_if_fault());
  EXPECT_THROW(env.fault(), Error);
}

TEST(Envelope, CopyIsDeep) {
  SoapEnvelope a = SoapEnvelope::wrap(make_element(QName("x")));
  SoapEnvelope b = a;
  b.set_body_payload(make_element(QName("y")));
  EXPECT_EQ(a.body().child_count(), 1u);
  EXPECT_EQ(b.body().child_count(), 2u);
}

TEST(Envelope, RejectsNonSoapDocument) {
  auto doc = make_document(make_element(QName("NotSoap")));
  EXPECT_THROW(SoapEnvelope{std::move(doc)}, DecodeError);
}

TEST(Envelope, RejectsEnvelopeWithoutBody) {
  auto env = make_element(QName(std::string(kSoapEnvelopeUri), "Envelope",
                                std::string(kSoapPrefix)));
  env->declare_namespace("soap", std::string(kSoapEnvelopeUri));
  auto doc = make_document(std::move(env));
  EXPECT_THROW(SoapEnvelope{std::move(doc)}, DecodeError);
}

class EnvelopeCodecRoundTrip : public ::testing::Test {
 protected:
  static SoapEnvelope sample() {
    auto payload = make_element(QName("urn:app", "Data", "app"));
    payload->declare_namespace("app", "urn:app");
    payload->add_child(make_array<double>(QName("urn:app", "v", "app"),
                                          {1.5, 2.5, 3.5}));
    payload->add_child(make_leaf<std::int32_t>(QName("urn:app", "n", "app"),
                                               3));
    SoapEnvelope env = SoapEnvelope::wrap(std::move(payload));
    env.add_header_block(
        make_leaf<std::string>(QName("urn:h", "trace", "h"), std::string("t1")));
    return env;
  }
};

TEST_F(EnvelopeCodecRoundTrip, SurvivesXmlEncoding) {
  SoapEnvelope env = sample();
  XmlEncoding enc;
  const auto bytes = enc.serialize(env.document());
  SoapEnvelope back(enc.deserialize(bytes));
  EXPECT_TRUE(deep_equal(env.document(), back.document()))
      << first_difference(env.document(), back.document());
}

TEST_F(EnvelopeCodecRoundTrip, SurvivesBxsaEncoding) {
  SoapEnvelope env = sample();
  BxsaEncoding enc;
  const auto bytes = enc.serialize(env.document());
  SoapEnvelope back(enc.deserialize(bytes));
  EXPECT_TRUE(deep_equal(env.document(), back.document()))
      << first_difference(env.document(), back.document());
}

TEST_F(EnvelopeCodecRoundTrip, EncodingsAgreeOnTheModel) {
  // The SAME logical message through both codecs decodes to equal trees —
  // the transparency property the common API promises.
  SoapEnvelope env = sample();
  XmlEncoding xml_enc;
  BxsaEncoding bxsa_enc;
  SoapEnvelope via_xml(xml_enc.deserialize(xml_enc.serialize(env.document())));
  SoapEnvelope via_bxsa(
      bxsa_enc.deserialize(bxsa_enc.serialize(env.document())));
  EXPECT_TRUE(deep_equal(via_xml.document(), via_bxsa.document()))
      << first_difference(via_xml.document(), via_bxsa.document());
}

TEST(EnvelopeCodec, BxsaIsSmallerForNumericPayloads) {
  auto payload = make_element(QName("p"));
  std::vector<double> values(500);
  for (int i = 0; i < 500; ++i) values[i] = 0.123456789 * i;
  payload->add_child(make_array<double>(QName("v"), std::move(values)));
  SoapEnvelope env = SoapEnvelope::wrap(std::move(payload));
  XmlEncoding xml_enc;
  BxsaEncoding bxsa_enc;
  EXPECT_LT(bxsa_enc.serialize(env.document()).size(),
            xml_enc.serialize(env.document()).size() / 2);
}

}  // namespace
}  // namespace bxsoap::soap
