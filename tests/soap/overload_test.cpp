#include "soap/overload.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "soap/engine.hpp"
#include "soap/envelope.hpp"

namespace bxsoap::soap {
namespace {

using std::chrono::milliseconds;

SoapEnvelope probe() {
  return SoapEnvelope::wrap(xdm::make_element(xdm::QName("probe")));
}

// ---- deadline header block ------------------------------------------------

TEST(DeadlineHeader, AbsentByDefault) {
  const SoapEnvelope env = probe();
  EXPECT_FALSE(get_deadline(env).has_value());
}

TEST(DeadlineHeader, StampAndReadBack) {
  SoapEnvelope env = probe();
  set_deadline(env, milliseconds(1500));
  const auto d = get_deadline(env);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->count(), 1500);
}

TEST(DeadlineHeader, RestampReplacesThePreviousBlock) {
  SoapEnvelope env = probe();
  set_deadline(env, milliseconds(1500));
  set_deadline(env, milliseconds(300));
  const auto d = get_deadline(env);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->count(), 300);
  // Exactly one Deadline block remains after the re-stamp.
  std::size_t blocks = 0;
  for (const auto& child : env.header().children()) {
    const xdm::ElementBase* e = xdm::as_element(*child);
    if (e != nullptr && e->name().local == "Deadline") ++blocks;
  }
  EXPECT_EQ(blocks, 1u);
}

TEST(DeadlineHeader, SubMillisecondBudgetsFloorAtOne) {
  SoapEnvelope env = probe();
  set_deadline(env, milliseconds(0));
  const auto d = get_deadline(env);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->count(), 1);  // a zero stamp would mean "drop always"
}

TEST(DeadlineHeader, SurvivesBxsaRoundTrip) {
  SoapEnvelope env = probe();
  set_deadline(env, milliseconds(250));
  BxsaEncoding codec;
  const std::vector<std::uint8_t> wire = codec.serialize(env.document());
  const SoapEnvelope back(codec.deserialize(wire));
  const auto d = get_deadline(back);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->count(), 250);
}

// ---- Overloaded fault helpers ---------------------------------------------

TEST(OverloadedFault, RoundTripsThroughAnEnvelope) {
  const Fault f = make_overloaded_fault(milliseconds(75));
  EXPECT_TRUE(is_overloaded(f));
  const auto hint = retry_after_hint(f);
  ASSERT_TRUE(hint.has_value());
  EXPECT_EQ(hint->count(), 75);

  const SoapEnvelope env = SoapEnvelope::make_fault(f);
  ASSERT_TRUE(env.is_fault());
  EXPECT_TRUE(is_overloaded(env.fault()));
}

TEST(OverloadedFault, OrdinaryServerFaultsDoNotMatch) {
  EXPECT_FALSE(is_overloaded({"soap:Server", "boom", ""}));
  EXPECT_FALSE(is_overloaded({"soap:Client", "Overloaded", ""}));
  EXPECT_FALSE(is_overloaded(
      {std::string(kServerFaultCode), std::string(kDeadlineExpiredReason),
       ""}));
}

TEST(OverloadedFault, MalformedHintReadsAsAbsent) {
  Fault f = make_overloaded_fault(milliseconds(10));
  f.detail = "retry-after-ms=bogus";
  EXPECT_FALSE(retry_after_hint(f).has_value());
  f.detail = "";
  EXPECT_FALSE(retry_after_hint(f).has_value());
}

// ---- DeadlineScope / remaining_deadline -----------------------------------

TEST(DeadlineScope, VisibleInsideAndRestoredOutside) {
  EXPECT_FALSE(remaining_deadline().has_value());
  {
    DeadlineScope scope(std::chrono::steady_clock::now() + milliseconds(500));
    const auto rem = remaining_deadline();
    ASSERT_TRUE(rem.has_value());
    EXPECT_GT(rem->count(), 0);
    EXPECT_LE(rem->count(), 500);
    {
      DeadlineScope inner(std::nullopt);  // a deadline-free nested request
      EXPECT_FALSE(remaining_deadline().has_value());
    }
    EXPECT_TRUE(remaining_deadline().has_value());  // outer restored
  }
  EXPECT_FALSE(remaining_deadline().has_value());
}

TEST(DeadlineScope, PastDeadlineReportsZeroNotNegative) {
  DeadlineScope scope(std::chrono::steady_clock::now() - milliseconds(10));
  const auto rem = remaining_deadline();
  ASSERT_TRUE(rem.has_value());
  EXPECT_EQ(rem->count(), 0);
}

// ---- RetryBudget ----------------------------------------------------------

TEST(RetryBudget, StartsFullAndDrains) {
  RetryBudget budget(3.0, 0.5);
  EXPECT_TRUE(budget.try_spend());
  EXPECT_TRUE(budget.try_spend());
  EXPECT_TRUE(budget.try_spend());
  EXPECT_FALSE(budget.try_spend());
}

TEST(RetryBudget, SuccessesEarnFractionalCredit) {
  RetryBudget budget(2.0, 0.5);
  EXPECT_TRUE(budget.try_spend());
  EXPECT_TRUE(budget.try_spend());
  EXPECT_FALSE(budget.try_spend());
  budget.credit();  // 0.5: still under a whole token
  EXPECT_FALSE(budget.try_spend());
  budget.credit();  // 1.0: one retry earned back
  EXPECT_TRUE(budget.try_spend());
}

TEST(RetryBudget, CreditCapsAtMax) {
  RetryBudget budget(2.0, 10.0);
  budget.credit();
  budget.credit();
  EXPECT_TRUE(budget.try_spend());
  EXPECT_TRUE(budget.try_spend());
  EXPECT_FALSE(budget.try_spend());  // capped at 2, not 22
}

// ---- CircuitBreaker -------------------------------------------------------

/// A breaker on a hand-cranked clock: no test here sleeps.
struct BreakerRig {
  std::chrono::steady_clock::time_point now = std::chrono::steady_clock::now();
  CircuitBreaker breaker;
  explicit BreakerRig(CircuitBreakerConfig config)
      : breaker(config, [this] { return now; }) {}
};

CircuitBreakerConfig small_breaker() {
  CircuitBreakerConfig c;
  c.window = 4;
  c.failure_threshold = 2;
  c.cooldown = milliseconds(100);
  return c;
}

TEST(CircuitBreaker, OpensAtTheFailureThreshold) {
  BreakerRig rig(small_breaker());
  EXPECT_TRUE(rig.breaker.allow());
  rig.breaker.on_failure();
  EXPECT_EQ(rig.breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(rig.breaker.allow());
  rig.breaker.on_failure();
  EXPECT_EQ(rig.breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(rig.breaker.allow());
}

TEST(CircuitBreaker, RollingWindowForgetsOldFailures) {
  BreakerRig rig(small_breaker());
  rig.breaker.on_failure();
  // Four successes push the failure out of the window=4 history...
  for (int i = 0; i < 4; ++i) rig.breaker.on_success();
  rig.breaker.on_failure();
  // ...so this second failure is the only one in view: still closed.
  EXPECT_EQ(rig.breaker.state(), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreaker, HalfOpenProbeSuccessCloses) {
  BreakerRig rig(small_breaker());
  rig.breaker.on_failure();
  rig.breaker.on_failure();
  EXPECT_FALSE(rig.breaker.allow());
  rig.now += milliseconds(101);  // cooldown elapses
  EXPECT_TRUE(rig.breaker.allow());   // the single probe
  EXPECT_FALSE(rig.breaker.allow());  // everyone else still rejected
  rig.breaker.on_success();
  EXPECT_EQ(rig.breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(rig.breaker.allow());
}

TEST(CircuitBreaker, HalfOpenProbeFailureReopensForAnotherCooldown) {
  BreakerRig rig(small_breaker());
  rig.breaker.on_failure();
  rig.breaker.on_failure();
  rig.now += milliseconds(101);
  EXPECT_TRUE(rig.breaker.allow());  // probe
  rig.breaker.on_failure();
  EXPECT_EQ(rig.breaker.state(), CircuitBreaker::State::kOpen);
  rig.now += milliseconds(50);  // half a cooldown: still dark
  EXPECT_FALSE(rig.breaker.allow());
  rig.now += milliseconds(51);  // full cooldown from the probe failure
  EXPECT_TRUE(rig.breaker.allow());
}

}  // namespace
}  // namespace bxsoap::soap
