#include "soap/reliable.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "soap/overload.hpp"

#include "services/verification.hpp"
#include "soap/engine.hpp"
#include "transport/bindings.hpp"
#include "transport/fault.hpp"
#include "transport/server.hpp"
#include "workload/lead.hpp"

namespace bxsoap::soap {
namespace {

SoapEnvelope probe_request() {
  return SoapEnvelope::wrap(xdm::make_element(xdm::QName("probe")));
}

/// Engine stub: fails the first `failures_remaining` calls with a
/// TransportError, then answers the next `overloaded_remaining` with the
/// retryable shed fault, then echoes the request (or a fault /
/// DecodeError, per flags). Optionally burns real time per call and
/// records each request's stamped Deadline header.
struct FlakyEngine {
  int failures_remaining = 0;
  int overloaded_remaining = 0;
  std::chrono::milliseconds shed_retry_after{0};
  bool return_fault = false;
  bool throw_decode = false;
  std::chrono::milliseconds delay_per_call{0};
  int calls = 0;
  std::vector<std::chrono::milliseconds> seen_deadlines;

  SoapEnvelope call(SoapEnvelope request) {
    ++calls;
    if (const auto d = get_deadline(request)) seen_deadlines.push_back(*d);
    if (delay_per_call.count() > 0) {
      std::this_thread::sleep_for(delay_per_call);
    }
    if (failures_remaining > 0) {
      --failures_remaining;
      throw TransportError("synthetic transport failure");
    }
    if (overloaded_remaining > 0) {
      --overloaded_remaining;
      return SoapEnvelope::make_fault(make_overloaded_fault(shed_retry_after));
    }
    if (throw_decode) throw DecodeError("synthetic decode failure");
    if (return_fault) {
      return SoapEnvelope::make_fault({"soap:Server", "declined", ""});
    }
    return request;
  }
};

RetryPolicy fast_policy() {
  RetryPolicy p;
  p.max_attempts = 3;
  p.initial_backoff = std::chrono::milliseconds(0);  // tests never sleep
  return p;
}

TEST(ReliableCaller, FirstAttemptSuccessIsPassthrough) {
  FlakyEngine engine;
  obs::Registry registry;
  ReliableCaller<FlakyEngine> caller(engine, fast_policy(), &registry);
  const SoapEnvelope resp = caller.call(probe_request());
  EXPECT_FALSE(resp.is_fault());
  EXPECT_EQ(engine.calls, 1);
  EXPECT_EQ(registry.counter("client.retry.attempts").value(), 1u);
  EXPECT_EQ(registry.counter("client.retry.retries").value(), 0u);
  EXPECT_EQ(registry.counter("client.retry.successes").value(), 1u);
  EXPECT_EQ(registry.counter("client.retry.giveups").value(), 0u);
}

TEST(ReliableCaller, RetriesTransportFailuresUntilSuccess) {
  FlakyEngine engine;
  engine.failures_remaining = 2;
  obs::Registry registry;
  ReliableCaller<FlakyEngine> caller(engine, fast_policy(), &registry);
  const SoapEnvelope resp = caller.call(probe_request());
  EXPECT_FALSE(resp.is_fault());
  EXPECT_EQ(engine.calls, 3);
  EXPECT_EQ(registry.counter("client.retry.attempts").value(), 3u);
  EXPECT_EQ(registry.counter("client.retry.retries").value(), 2u);
  EXPECT_EQ(registry.counter("client.retry.successes").value(), 1u);
}

TEST(ReliableCaller, GivesUpAfterMaxAttempts) {
  FlakyEngine engine;
  engine.failures_remaining = 100;
  obs::Registry registry;
  ReliableCaller<FlakyEngine> caller(engine, fast_policy(), &registry);
  EXPECT_THROW(caller.call(probe_request()), TransportError);
  EXPECT_EQ(engine.calls, 3);
  EXPECT_EQ(registry.counter("client.retry.giveups").value(), 1u);
  EXPECT_EQ(registry.counter("client.retry.successes").value(), 0u);
}

TEST(ReliableCaller, SoapFaultIsAnAnswerNotARetry) {
  FlakyEngine engine;
  engine.return_fault = true;
  obs::Registry registry;
  ReliableCaller<FlakyEngine> caller(engine, fast_policy(), &registry);
  const SoapEnvelope resp = caller.call(probe_request());
  ASSERT_TRUE(resp.is_fault());
  EXPECT_EQ(resp.fault().code, "soap:Server");
  EXPECT_EQ(engine.calls, 1);  // never retried
  EXPECT_EQ(registry.counter("client.retry.retries").value(), 0u);
}

TEST(ReliableCaller, DecodeErrorPropagatesWithoutRetry) {
  FlakyEngine engine;
  engine.throw_decode = true;
  ReliableCaller<FlakyEngine> caller(engine, fast_policy());
  EXPECT_THROW(caller.call(probe_request()), DecodeError);
  EXPECT_EQ(engine.calls, 1);  // the transport worked; retry can't help
}

TEST(ReliableCaller, BackoffScheduleIsDeterministic) {
  const auto schedule_for = [](std::uint64_t seed) {
    FlakyEngine engine;
    engine.failures_remaining = 100;
    RetryPolicy policy;
    policy.max_attempts = 6;
    policy.initial_backoff = std::chrono::milliseconds(16);
    policy.backoff_multiplier = 2.0;
    policy.max_backoff = std::chrono::milliseconds(50);
    policy.jitter_seed = seed;
    ReliableCaller<FlakyEngine> caller(engine, policy);
    std::vector<std::int64_t> delays;
    caller.set_sleep_hook([&delays](std::chrono::milliseconds d) {
      delays.push_back(d.count());
    });
    EXPECT_THROW(caller.call(probe_request()), TransportError);
    return delays;
  };

  const auto a = schedule_for(11);
  const auto b = schedule_for(11);
  EXPECT_EQ(a, b);  // same seed, same failure sequence -> same delays
  ASSERT_EQ(a.size(), 5u);  // 6 attempts = 5 backoffs

  // Equal jitter: each delay lies in [base/2, base], base doubling to the
  // 50 ms cap: 16, 32, 50, 50, 50.
  const std::int64_t bases[] = {16, 32, 50, 50, 50};
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_GE(a[i], bases[i] / 2) << i;
    EXPECT_LE(a[i], bases[i]) << i;
  }
}

TEST(ReliableCaller, OvershootingBackoffIsTruncatedForOneFinalAttempt) {
  FlakyEngine engine;
  engine.failures_remaining = 100;
  RetryPolicy policy;
  policy.max_attempts = 50;
  policy.initial_backoff = std::chrono::milliseconds(400);
  policy.deadline = std::chrono::milliseconds(100);
  obs::Registry registry;
  ReliableCaller<FlakyEngine> caller(engine, policy, &registry);
  std::vector<std::int64_t> delays;
  caller.set_sleep_hook([&delays](std::chrono::milliseconds d) {
    delays.push_back(d.count());
  });
  // The first backoff (>= 200 ms jittered) overshoots the 100 ms budget;
  // instead of giving up with budget on the table, the sleep is truncated
  // to half the remainder and ONE final attempt runs. It also fails, and
  // a final attempt never retries again.
  EXPECT_THROW(caller.call(probe_request()), TransportError);
  EXPECT_EQ(engine.calls, 2);
  ASSERT_EQ(delays.size(), 1u);
  EXPECT_LE(delays[0], 50);  // half of (at most) the full 100 ms budget
  EXPECT_EQ(registry.counter("client.retry.giveups").value(), 1u);
  EXPECT_EQ(registry.counter("client.retry.retries").value(), 1u);
}

TEST(ReliableCaller, NeverRetriesPastAnExpiredDeadline) {
  FlakyEngine engine;
  engine.failures_remaining = 100;
  engine.delay_per_call = std::chrono::milliseconds(10);  // burns the budget
  RetryPolicy policy;
  policy.max_attempts = 50;
  policy.initial_backoff = std::chrono::milliseconds(0);
  policy.deadline = std::chrono::milliseconds(5);
  ReliableCaller<FlakyEngine> caller(engine, policy);
  caller.set_sleep_hook([](std::chrono::milliseconds) {});
  // The attempt itself outlives the deadline: by the time it fails the
  // budget is spent, and an expired deadline NEVER retries.
  EXPECT_THROW(caller.call(probe_request()), TransportError);
  EXPECT_EQ(engine.calls, 1);
}

TEST(ReliableCaller, DeadlineIsRestampedWithRemainingBudget) {
  FlakyEngine engine;
  engine.failures_remaining = 1;
  engine.delay_per_call = std::chrono::milliseconds(10);
  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.initial_backoff = std::chrono::milliseconds(0);
  policy.deadline = std::chrono::milliseconds(200);
  ReliableCaller<FlakyEngine> caller(engine, policy);
  caller.set_sleep_hook([](std::chrono::milliseconds) {});
  const SoapEnvelope resp = caller.call(probe_request());
  EXPECT_FALSE(resp.is_fault());
  // Both attempts carried a Deadline header; the retry's stamp is the
  // REMAINING budget (>= 10 ms already burned), not a stale fresh one.
  ASSERT_EQ(engine.seen_deadlines.size(), 2u);
  EXPECT_LE(engine.seen_deadlines[0].count(), 200);
  EXPECT_LT(engine.seen_deadlines[1], engine.seen_deadlines[0]);
  EXPECT_GE(engine.seen_deadlines[1].count(), 1);
}

TEST(ReliableCaller, OverloadedFaultIsRetried) {
  FlakyEngine engine;
  engine.overloaded_remaining = 1;
  obs::Registry registry;
  ReliableCaller<FlakyEngine> caller(engine, fast_policy(), &registry);
  caller.set_sleep_hook([](std::chrono::milliseconds) {});
  // Unlike other faults, the shed fault means "I never looked": retry.
  const SoapEnvelope resp = caller.call(probe_request());
  EXPECT_FALSE(resp.is_fault());
  EXPECT_EQ(engine.calls, 2);
  EXPECT_EQ(registry.counter("client.retry.overloaded").value(), 1u);
  EXPECT_EQ(registry.counter("client.retry.retries").value(), 1u);
  EXPECT_EQ(registry.counter("client.retry.successes").value(), 1u);
}

TEST(ReliableCaller, ExhaustedAttemptsReturnTheOverloadedFault) {
  FlakyEngine engine;
  engine.overloaded_remaining = 100;
  obs::Registry registry;
  ReliableCaller<FlakyEngine> caller(engine, fast_policy(), &registry);
  caller.set_sleep_hook([](std::chrono::milliseconds) {});
  // A shed fault that survives the whole policy is still the server's
  // answer: returned, not thrown.
  const SoapEnvelope resp = caller.call(probe_request());
  ASSERT_TRUE(resp.is_fault());
  EXPECT_TRUE(is_overloaded(resp.fault()));
  EXPECT_EQ(engine.calls, 3);
  EXPECT_EQ(registry.counter("client.retry.giveups").value(), 1u);
}

TEST(ReliableCaller, RetryAfterHintFloorsTheBackoff) {
  FlakyEngine engine;
  engine.overloaded_remaining = 1;
  engine.shed_retry_after = std::chrono::milliseconds(40);
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff = std::chrono::milliseconds(0);
  ReliableCaller<FlakyEngine> caller(engine, policy);
  std::vector<std::int64_t> delays;
  caller.set_sleep_hook([&delays](std::chrono::milliseconds d) {
    delays.push_back(d.count());
  });
  EXPECT_FALSE(caller.call(probe_request()).is_fault());
  // The server asked for 40 ms of air; a 0 ms policy backoff must not
  // undercut it.
  ASSERT_EQ(delays.size(), 1u);
  EXPECT_GE(delays[0], 40);
}

TEST(ReliableCaller, RetryBudgetStopsARetryStorm) {
  FlakyEngine engine;
  engine.failures_remaining = 100;
  RetryPolicy policy;
  policy.max_attempts = 50;
  policy.initial_backoff = std::chrono::milliseconds(0);
  obs::Registry registry;
  ReliableCaller<FlakyEngine> caller(engine, policy, &registry);
  caller.set_sleep_hook([](std::chrono::milliseconds) {});
  OverloadControl control(/*max_tokens=*/2.0, /*credit_per_success=*/0.1);
  caller.attach_overload_control(&control);
  // Two tokens buy two retries; the third is refused and the caller fails
  // fast instead of hammering a dead dependency 50 times.
  EXPECT_THROW(caller.call(probe_request()), TransportError);
  EXPECT_EQ(engine.calls, 3);
  EXPECT_EQ(registry.counter("client.retry.budget_exhausted").value(), 1u);
}

TEST(ReliableCaller, SuccessesRefillTheRetryBudget) {
  FlakyEngine engine;
  OverloadControl control(/*max_tokens=*/2.0, /*credit_per_success=*/0.5);
  ReliableCaller<FlakyEngine> caller(engine, fast_policy());
  caller.set_sleep_hook([](std::chrono::milliseconds) {});
  caller.attach_overload_control(&control);
  EXPECT_TRUE(control.budget.try_spend());
  EXPECT_TRUE(control.budget.try_spend());
  EXPECT_FALSE(control.budget.try_spend());  // drained
  caller.call(probe_request());              // a success credits 0.5
  caller.call(probe_request());              // ... and another 0.5
  EXPECT_TRUE(control.budget.try_spend());   // one retry earned back
}

TEST(ReliableCaller, OpenCircuitBreakerFailsFastWithoutTouchingTheWire) {
  FlakyEngine engine;
  engine.failures_remaining = 100;
  RetryPolicy policy;
  policy.max_attempts = 1;  // isolate the breaker from the retry loop
  policy.initial_backoff = std::chrono::milliseconds(0);
  obs::Registry registry;
  ReliableCaller<FlakyEngine> caller(engine, policy, &registry);
  caller.set_sleep_hook([](std::chrono::milliseconds) {});
  CircuitBreakerConfig breaker;
  breaker.window = 4;
  breaker.failure_threshold = 2;
  breaker.cooldown = std::chrono::hours(1);  // never half-opens in-test
  OverloadControl control(10.0, 0.1, breaker);
  caller.attach_overload_control(&control);
  EXPECT_THROW(caller.call(probe_request()), TransportError);
  EXPECT_THROW(caller.call(probe_request()), TransportError);
  // Two failures tripped the breaker: further calls are rejected before
  // the engine is touched.
  EXPECT_THROW(caller.call(probe_request()), TransportError);
  EXPECT_EQ(engine.calls, 2);
  EXPECT_EQ(registry.counter("client.retry.breaker.rejected").value(), 1u);
}

// ---- end to end: retry over a real pool with injected faults ---------------

TEST(ReliableCaller, RecoversFromInjectedConnectionReset) {
  using transport::FaultKind;
  using transport::FaultPlan;
  using transport::FaultyBinding;
  using transport::TcpClientBinding;

  transport::ServerConfig cfg;
  cfg.encoding = AnyEncoding::from(BxsaEncoding{});
  cfg.handler = services::verification_handler;
  auto pool = transport::SoapServer::create(
      transport::ConcurrencyModel::kThreadPerConnection, std::move(cfg));

  // First message dies before it leaves; the retry must reconnect and win.
  const FaultPlan plan = FaultPlan::script({{FaultKind::kReset, 0, 0, 0}});
  SoapEngine<BxsaEncoding, FaultyBinding<TcpClientBinding>> client(
      {}, FaultyBinding<TcpClientBinding>(TcpClientBinding(pool->port()), plan));

  obs::Registry registry;
  ReliableCaller caller(client, fast_policy(), &registry);
  const auto dataset = workload::make_lead_dataset(25);
  const SoapEnvelope resp = caller.call(services::make_data_request(dataset));
  EXPECT_TRUE(services::parse_verify_response(resp).ok);
  EXPECT_EQ(registry.counter("client.retry.attempts").value(), 2u);
  EXPECT_EQ(registry.counter("client.retry.retries").value(), 1u);
  EXPECT_EQ(pool->exchanges(), 1u);
}

TEST(ReliableCaller, InjectedCorruptionComesBackAsClientFault) {
  using transport::FaultKind;
  using transport::FaultPlan;
  using transport::FaultyBinding;
  using transport::TcpClientBinding;

  transport::ServerConfig cfg;
  cfg.encoding = AnyEncoding::from(BxsaEncoding{});
  cfg.handler = services::verification_handler;
  auto pool = transport::SoapServer::create(
      transport::ConcurrencyModel::kThreadPerConnection, std::move(cfg));

  // Truncate the first request's payload: the frame arrives intact, the
  // BXSA bytes inside don't decode, and the pool answers with a fault the
  // retry layer must NOT retry.
  const FaultPlan plan = FaultPlan::script({{FaultKind::kTruncate, 4, 0, 0}});
  SoapEngine<BxsaEncoding, FaultyBinding<TcpClientBinding>> client(
      {}, FaultyBinding<TcpClientBinding>(TcpClientBinding(pool->port()), plan));

  obs::Registry registry;
  ReliableCaller caller(client, fast_policy(), &registry);
  const SoapEnvelope resp = caller.call(probe_request());
  ASSERT_TRUE(resp.is_fault());
  EXPECT_EQ(resp.fault().code, "soap:Client");
  EXPECT_EQ(registry.counter("client.retry.retries").value(), 0u);
  EXPECT_EQ(pool->faults(), 1u);
}

}  // namespace
}  // namespace bxsoap::soap
