#include "soap/reliable.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <vector>

#include "services/verification.hpp"
#include "soap/engine.hpp"
#include "transport/bindings.hpp"
#include "transport/fault.hpp"
#include "transport/server.hpp"
#include "workload/lead.hpp"

namespace bxsoap::soap {
namespace {

SoapEnvelope probe_request() {
  return SoapEnvelope::wrap(xdm::make_element(xdm::QName("probe")));
}

/// Engine stub: fails the first `failures_remaining` calls with a
/// TransportError, then echoes the request (or a fault / DecodeError,
/// per flags).
struct FlakyEngine {
  int failures_remaining = 0;
  bool return_fault = false;
  bool throw_decode = false;
  int calls = 0;

  SoapEnvelope call(SoapEnvelope request) {
    ++calls;
    if (failures_remaining > 0) {
      --failures_remaining;
      throw TransportError("synthetic transport failure");
    }
    if (throw_decode) throw DecodeError("synthetic decode failure");
    if (return_fault) {
      return SoapEnvelope::make_fault({"soap:Server", "declined", ""});
    }
    return request;
  }
};

RetryPolicy fast_policy() {
  RetryPolicy p;
  p.max_attempts = 3;
  p.initial_backoff = std::chrono::milliseconds(0);  // tests never sleep
  return p;
}

TEST(ReliableCaller, FirstAttemptSuccessIsPassthrough) {
  FlakyEngine engine;
  obs::Registry registry;
  ReliableCaller<FlakyEngine> caller(engine, fast_policy(), &registry);
  const SoapEnvelope resp = caller.call(probe_request());
  EXPECT_FALSE(resp.is_fault());
  EXPECT_EQ(engine.calls, 1);
  EXPECT_EQ(registry.counter("client.retry.attempts").value(), 1u);
  EXPECT_EQ(registry.counter("client.retry.retries").value(), 0u);
  EXPECT_EQ(registry.counter("client.retry.successes").value(), 1u);
  EXPECT_EQ(registry.counter("client.retry.giveups").value(), 0u);
}

TEST(ReliableCaller, RetriesTransportFailuresUntilSuccess) {
  FlakyEngine engine;
  engine.failures_remaining = 2;
  obs::Registry registry;
  ReliableCaller<FlakyEngine> caller(engine, fast_policy(), &registry);
  const SoapEnvelope resp = caller.call(probe_request());
  EXPECT_FALSE(resp.is_fault());
  EXPECT_EQ(engine.calls, 3);
  EXPECT_EQ(registry.counter("client.retry.attempts").value(), 3u);
  EXPECT_EQ(registry.counter("client.retry.retries").value(), 2u);
  EXPECT_EQ(registry.counter("client.retry.successes").value(), 1u);
}

TEST(ReliableCaller, GivesUpAfterMaxAttempts) {
  FlakyEngine engine;
  engine.failures_remaining = 100;
  obs::Registry registry;
  ReliableCaller<FlakyEngine> caller(engine, fast_policy(), &registry);
  EXPECT_THROW(caller.call(probe_request()), TransportError);
  EXPECT_EQ(engine.calls, 3);
  EXPECT_EQ(registry.counter("client.retry.giveups").value(), 1u);
  EXPECT_EQ(registry.counter("client.retry.successes").value(), 0u);
}

TEST(ReliableCaller, SoapFaultIsAnAnswerNotARetry) {
  FlakyEngine engine;
  engine.return_fault = true;
  obs::Registry registry;
  ReliableCaller<FlakyEngine> caller(engine, fast_policy(), &registry);
  const SoapEnvelope resp = caller.call(probe_request());
  ASSERT_TRUE(resp.is_fault());
  EXPECT_EQ(resp.fault().code, "soap:Server");
  EXPECT_EQ(engine.calls, 1);  // never retried
  EXPECT_EQ(registry.counter("client.retry.retries").value(), 0u);
}

TEST(ReliableCaller, DecodeErrorPropagatesWithoutRetry) {
  FlakyEngine engine;
  engine.throw_decode = true;
  ReliableCaller<FlakyEngine> caller(engine, fast_policy());
  EXPECT_THROW(caller.call(probe_request()), DecodeError);
  EXPECT_EQ(engine.calls, 1);  // the transport worked; retry can't help
}

TEST(ReliableCaller, BackoffScheduleIsDeterministic) {
  const auto schedule_for = [](std::uint64_t seed) {
    FlakyEngine engine;
    engine.failures_remaining = 100;
    RetryPolicy policy;
    policy.max_attempts = 6;
    policy.initial_backoff = std::chrono::milliseconds(16);
    policy.backoff_multiplier = 2.0;
    policy.max_backoff = std::chrono::milliseconds(50);
    policy.jitter_seed = seed;
    ReliableCaller<FlakyEngine> caller(engine, policy);
    std::vector<std::int64_t> delays;
    caller.set_sleep_hook([&delays](std::chrono::milliseconds d) {
      delays.push_back(d.count());
    });
    EXPECT_THROW(caller.call(probe_request()), TransportError);
    return delays;
  };

  const auto a = schedule_for(11);
  const auto b = schedule_for(11);
  EXPECT_EQ(a, b);  // same seed, same failure sequence -> same delays
  ASSERT_EQ(a.size(), 5u);  // 6 attempts = 5 backoffs

  // Equal jitter: each delay lies in [base/2, base], base doubling to the
  // 50 ms cap: 16, 32, 50, 50, 50.
  const std::int64_t bases[] = {16, 32, 50, 50, 50};
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_GE(a[i], bases[i] / 2) << i;
    EXPECT_LE(a[i], bases[i]) << i;
  }
}

TEST(ReliableCaller, DeadlineBoundsTheWholeCall) {
  FlakyEngine engine;
  engine.failures_remaining = 100;
  RetryPolicy policy;
  policy.max_attempts = 50;
  policy.initial_backoff = std::chrono::milliseconds(400);
  policy.deadline = std::chrono::milliseconds(100);
  obs::Registry registry;
  ReliableCaller<FlakyEngine> caller(engine, policy, &registry);
  caller.set_sleep_hook([](std::chrono::milliseconds) {});
  // The first backoff (>= 200 ms jittered) can never fit the 100 ms
  // deadline, so the caller gives up after one attempt instead of
  // sleeping past its budget.
  EXPECT_THROW(caller.call(probe_request()), TransportError);
  EXPECT_EQ(engine.calls, 1);
  EXPECT_EQ(registry.counter("client.retry.giveups").value(), 1u);
}

// ---- end to end: retry over a real pool with injected faults ---------------

TEST(ReliableCaller, RecoversFromInjectedConnectionReset) {
  using transport::FaultKind;
  using transport::FaultPlan;
  using transport::FaultyBinding;
  using transport::TcpClientBinding;

  transport::ServerConfig cfg;
  cfg.encoding = AnyEncoding::from(BxsaEncoding{});
  cfg.handler = services::verification_handler;
  auto pool = transport::SoapServer::create(
      transport::ConcurrencyModel::kThreadPerConnection, std::move(cfg));

  // First message dies before it leaves; the retry must reconnect and win.
  const FaultPlan plan = FaultPlan::script({{FaultKind::kReset, 0, 0, 0}});
  SoapEngine<BxsaEncoding, FaultyBinding<TcpClientBinding>> client(
      {}, FaultyBinding<TcpClientBinding>(TcpClientBinding(pool->port()), plan));

  obs::Registry registry;
  ReliableCaller caller(client, fast_policy(), &registry);
  const auto dataset = workload::make_lead_dataset(25);
  const SoapEnvelope resp = caller.call(services::make_data_request(dataset));
  EXPECT_TRUE(services::parse_verify_response(resp).ok);
  EXPECT_EQ(registry.counter("client.retry.attempts").value(), 2u);
  EXPECT_EQ(registry.counter("client.retry.retries").value(), 1u);
  EXPECT_EQ(pool->exchanges(), 1u);
}

TEST(ReliableCaller, InjectedCorruptionComesBackAsClientFault) {
  using transport::FaultKind;
  using transport::FaultPlan;
  using transport::FaultyBinding;
  using transport::TcpClientBinding;

  transport::ServerConfig cfg;
  cfg.encoding = AnyEncoding::from(BxsaEncoding{});
  cfg.handler = services::verification_handler;
  auto pool = transport::SoapServer::create(
      transport::ConcurrencyModel::kThreadPerConnection, std::move(cfg));

  // Truncate the first request's payload: the frame arrives intact, the
  // BXSA bytes inside don't decode, and the pool answers with a fault the
  // retry layer must NOT retry.
  const FaultPlan plan = FaultPlan::script({{FaultKind::kTruncate, 4, 0, 0}});
  SoapEngine<BxsaEncoding, FaultyBinding<TcpClientBinding>> client(
      {}, FaultyBinding<TcpClientBinding>(TcpClientBinding(pool->port()), plan));

  obs::Registry registry;
  ReliableCaller caller(client, fast_policy(), &registry);
  const SoapEnvelope resp = caller.call(probe_request());
  ASSERT_TRUE(resp.is_fault());
  EXPECT_EQ(resp.fault().code, "soap:Client");
  EXPECT_EQ(registry.counter("client.retry.retries").value(), 0u);
  EXPECT_EQ(pool->faults(), 1u);
}

}  // namespace
}  // namespace bxsoap::soap
