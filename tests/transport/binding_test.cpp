// End-to-end SOAP exchanges over REAL sockets, for all four
// encoding x binding combinations from the paper's §5:
//
//   SoapEngine<XmlEncoding,  HttpBinding>
//   SoapEngine<BxsaEncoding, TcpBinding>
//   SoapEngine<XmlEncoding,  TcpBinding>
//   SoapEngine<BxsaEncoding, HttpBinding>
#include <gtest/gtest.h>

#include <thread>

#include "soap/engine.hpp"
#include "transport/bindings.hpp"
#include "xdm/equal.hpp"

namespace bxsoap::transport {
namespace {

using namespace bxsoap::xdm;
using namespace bxsoap::soap;

SoapEnvelope sum_request(const std::vector<double>& values) {
  auto payload = make_element(QName("urn:calc", "Sum", "c"));
  payload->declare_namespace("c", "urn:calc");
  payload->add_child(
      make_array<double>(QName("urn:calc", "values", "c"), values));
  return SoapEnvelope::wrap(std::move(payload));
}

SoapEnvelope sum_handler(SoapEnvelope request) {
  const auto* payload = static_cast<const Element*>(request.body_payload());
  if (payload == nullptr || payload->name().local != "Sum") {
    throw SoapFaultError("soap:Client", "expected Sum request");
  }
  const ElementBase* values = payload->find_child("values");
  if (values == nullptr || values->kind() != NodeKind::kArrayElement) {
    throw SoapFaultError("soap:Client", "expected typed values array");
  }
  const auto& arr = static_cast<const ArrayElement<double>&>(*values);
  double sum = 0;
  for (double v : arr.view()) sum += v;
  auto out = make_element(QName("urn:calc", "SumResponse", "c"));
  out->add_child(make_leaf<double>(QName("urn:calc", "total", "c"), sum));
  return SoapEnvelope::wrap(std::move(out));
}

double extract_total(const SoapEnvelope& response) {
  const auto* payload = static_cast<const Element*>(response.body_payload());
  const ElementBase* total = payload->find_child("total");
  return static_cast<const LeafElement<double>&>(*total).get();
}

template <typename Encoding>
void run_over_tcp(int exchanges) {
  TcpServerBinding server_binding;
  const std::uint16_t port = server_binding.port();
  SoapEngine<Encoding, TcpServerBinding> server({},
                                                std::move(server_binding));
  std::thread server_thread([&] {
    for (int i = 0; i < exchanges; ++i) server.serve_once(sum_handler);
  });

  SoapEngine<Encoding, TcpClientBinding> client({}, TcpClientBinding(port));
  for (int i = 0; i < exchanges; ++i) {
    SoapEnvelope resp = client.call(sum_request({1.5, 2.5, static_cast<double>(i)}));
    resp.throw_if_fault();
    EXPECT_DOUBLE_EQ(extract_total(resp), 4.0 + i);
  }
  server_thread.join();
}

template <typename Encoding>
void run_over_http(int exchanges) {
  HttpServerBinding server_binding;
  const std::uint16_t port = server_binding.port();
  SoapEngine<Encoding, HttpServerBinding> server({},
                                                 std::move(server_binding));
  std::thread server_thread([&] {
    for (int i = 0; i < exchanges; ++i) server.serve_once(sum_handler);
  });

  for (int i = 0; i < exchanges; ++i) {
    // HTTP is one exchange per connection: fresh client binding each time.
    SoapEngine<Encoding, HttpClientBinding> client(
        {}, HttpClientBinding(port));
    SoapEnvelope resp = client.call(sum_request({10.0, static_cast<double>(i)}));
    resp.throw_if_fault();
    EXPECT_DOUBLE_EQ(extract_total(resp), 10.0 + i);
  }
  server_thread.join();
}

TEST(SoapOverSockets, BxsaOverTcp) { run_over_tcp<BxsaEncoding>(3); }
TEST(SoapOverSockets, XmlOverTcp) { run_over_tcp<XmlEncoding>(3); }
TEST(SoapOverSockets, BxsaOverHttp) { run_over_http<BxsaEncoding>(3); }
TEST(SoapOverSockets, XmlOverHttp) { run_over_http<XmlEncoding>(3); }

TEST(SoapOverSockets, LargeArrayOverTcp) {
  TcpServerBinding server_binding;
  const std::uint16_t port = server_binding.port();
  SoapEngine<BxsaEncoding, TcpServerBinding> server(
      {}, std::move(server_binding));
  std::thread server_thread([&] { server.serve_once(sum_handler); });

  std::vector<double> big(200000);
  double expected = 0;
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = 0.001 * static_cast<double>(i);
    expected += big[i];
  }
  SoapEngine<BxsaEncoding, TcpClientBinding> client({},
                                                    TcpClientBinding(port));
  SoapEnvelope resp = client.call(sum_request(big));
  resp.throw_if_fault();
  EXPECT_DOUBLE_EQ(extract_total(resp), expected);
  server_thread.join();
}

TEST(SoapOverSockets, FaultTravelsOverHttp) {
  HttpServerBinding server_binding;
  const std::uint16_t port = server_binding.port();
  SoapEngine<XmlEncoding, HttpServerBinding> server(
      {}, std::move(server_binding));
  std::thread server_thread([&] {
    server.serve_once([](SoapEnvelope) -> SoapEnvelope {
      throw SoapFaultError("soap:Server", "no such dataset");
    });
  });

  SoapEngine<XmlEncoding, HttpClientBinding> client({},
                                                    HttpClientBinding(port));
  SoapEnvelope resp = client.call(sum_request({1.0}));
  server_thread.join();
  ASSERT_TRUE(resp.is_fault());
  EXPECT_EQ(resp.fault().reason, "no such dataset");
}

TEST(SoapOverSockets, TcpServerSurvivesClientDisconnect) {
  TcpServerBinding server_binding;
  const std::uint16_t port = server_binding.port();
  SoapEngine<BxsaEncoding, TcpServerBinding> server(
      {}, std::move(server_binding));
  std::thread server_thread([&] {
    for (int i = 0; i < 2; ++i) server.serve_once(sum_handler);
  });

  {
    // First client connects and vanishes without sending anything.
    TcpStream ghost = TcpStream::connect(port);
    ghost.close();
  }
  {
    SoapEngine<BxsaEncoding, TcpClientBinding> c1({}, TcpClientBinding(port));
    SoapEnvelope resp = c1.call(sum_request({2.0, 3.0}));
    EXPECT_DOUBLE_EQ(extract_total(resp), 5.0);
  }
  {
    SoapEngine<BxsaEncoding, TcpClientBinding> c2({}, TcpClientBinding(port));
    SoapEnvelope resp = c2.call(sum_request({4.0}));
    EXPECT_DOUBLE_EQ(extract_total(resp), 4.0);
  }
  server_thread.join();
}

TEST(Framing, RoundTripOverSocketPair) {
  TcpListener listener(0);
  std::thread server([&] {
    TcpStream conn = listener.accept();
    soap::WireMessage m = read_frame(conn);
    EXPECT_EQ(m.content_type, "application/bxsa");
    ASSERT_EQ(m.payload.size(), 3u);
    write_frame(conn, m);  // echo
  });
  TcpStream client = TcpStream::connect(listener.port());
  soap::WireMessage m;
  m.content_type = "application/bxsa";
  m.payload = {1, 2, 3};
  write_frame(client, m);
  soap::WireMessage back = read_frame(client);
  EXPECT_EQ(back.payload, m.payload);
  server.join();
}

TEST(Framing, BadMagicRejected) {
  TcpListener listener(0);
  std::thread server([&] {
    TcpStream conn = listener.accept();
    conn.write_all(std::string_view("JUNKJUNKJUNKJUNKJUNK"));
  });
  TcpStream client = TcpStream::connect(listener.port());
  EXPECT_THROW(read_frame(client), TransportError);
  server.join();
}

}  // namespace
}  // namespace bxsoap::transport
