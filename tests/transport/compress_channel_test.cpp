// Negotiated adaptive compression (FORMAT.md §"Transform negotiation"):
// the transform offer rides the v3 Hello/Accept, every downgrade pairing
// stays byte-identical to the uncompressed channel, compressible traffic
// shrinks the wire on both the message and the streamed path, and the
// entropy probe keeps incompressible traffic out of the codec — against
// BOTH server concurrency models.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "obs/metrics.hpp"
#include "services/verification.hpp"
#include "soap/channel_pool.hpp"
#include "soap/engine.hpp"
#include "transport/bindings.hpp"
#include "transport/compress.hpp"
#include "transport/server.hpp"
#include "workload/lead.hpp"

namespace bxsoap::transport {
namespace {

using namespace bxsoap::soap;

constexpr std::size_t kChunk = 64 * 1024;

void echo_stream(StreamRequest& req, ResponseWriter& resp) {
  while (auto c = req.next_chunk()) resp.write_chunk(std::move(*c));
  resp.finish();
}

/// An envelope whose serialization is dominated by a long repetitive text
/// leaf: far past CompressPolicy::min_bytes and trivially below its
/// entropy ceiling, so the adaptive path MUST compress it.
SoapEnvelope make_text_request(std::size_t repeats) {
  std::string text;
  text.reserve(repeats * 26);
  for (std::size_t i = 0; i < repeats; ++i) {
    text += "the quick brown fox jumps ";
  }
  auto root = xdm::make_element(xdm::QName("urn:t", "blob", "t"));
  root->declare_namespace("t", "urn:t");
  root->add_child(xdm::make_leaf<std::string>(xdm::QName("text"),
                                              std::move(text)));
  return SoapEnvelope::wrap(std::move(root));
}

struct CompressChannel : ::testing::TestWithParam<ConcurrencyModel> {
  static std::unique_ptr<SoapServer> make_server(ServerConfig cfg = {}) {
    cfg.encoding = AnyEncoding::from(BxsaEncoding{});
    if (!cfg.handler) cfg.handler = services::verification_handler;
    if (GetParam() == ConcurrencyModel::kEventLoop) {
      cfg.reactor_threads = 2;
      cfg.worker_threads = 2;
    }
    return SoapServer::create(GetParam(), std::move(cfg));
  }

  static std::vector<std::uint8_t> encode_request(std::size_t count) {
    const SoapEnvelope env =
        services::make_data_request(workload::make_lead_dataset(count));
    return BxsaEncoding{}.serialize(env.document());
  }

  /// One raw exchange: send `payload`, return the CANONICAL response bytes
  /// (post-decompression, post-dictionary).
  static std::vector<std::uint8_t> exchange(TcpClientBinding& binding,
                                            std::vector<std::uint8_t> payload) {
    soap::WireMessage m;
    m.content_type = std::string(BxsaEncoding::content_type());
    m.payload = std::move(payload);
    binding.send_request(std::move(m));
    return binding.receive_response().payload;
  }
};

// ---- negotiation and the downgrade matrix -----------------------------------

TEST_P(CompressChannel, EveryDowngradePairingIsByteIdentical) {
  ServerConfig legacy_cfg;
  legacy_cfg.accept_v3 = false;
  auto legacy = make_server(std::move(legacy_cfg));
  auto plain_v3 = make_server();  // v3, but no transform offer
  ServerConfig comp_cfg;
  comp_cfg.compress_transforms = transforms::kAll;
  auto compressing = make_server(std::move(comp_cfg));

  const auto request = encode_request(17);

  // Baseline: plain client, pre-v3 server.
  TcpClientBinding plain(legacy->port());
  const auto baseline = exchange(plain, request);

  // A compressing client against the pre-v3 server: the probe costs one
  // cut connection, then the channel is plain v1 — byte-identical.
  TcpClientBinding probe(legacy->port());
  probe.enable_v3();
  probe.enable_compression();
  EXPECT_EQ(exchange(probe, request), baseline);
  EXPECT_FALSE(probe.v3_active());
  EXPECT_EQ(probe.negotiated_transforms(), 0);

  // A compressing client against a v3 server with NO transform offer:
  // the intersection is empty and the channel is plain v3.
  TcpClientBinding v3_only(plain_v3->port());
  v3_only.enable_v3();
  v3_only.enable_compression();
  EXPECT_EQ(exchange(v3_only, request), baseline);
  EXPECT_TRUE(v3_only.v3_active());
  EXPECT_EQ(v3_only.negotiated_transforms(), 0);

  // A client that never offered transforms against a compressing server:
  // the server must not compress at it.
  TcpClientBinding no_offer(compressing->port());
  no_offer.enable_v3();
  EXPECT_EQ(exchange(no_offer, request), baseline);
  EXPECT_TRUE(no_offer.v3_active());
  EXPECT_EQ(no_offer.negotiated_transforms(), 0);

  // And a fully negotiated compressed channel still decodes to the same
  // canonical bytes, first exchange and steady state alike.
  TcpClientBinding full(compressing->port());
  full.enable_v3();
  full.enable_compression();
  EXPECT_EQ(exchange(full, request), baseline);
  EXPECT_EQ(exchange(full, request), baseline);
  EXPECT_TRUE(full.v3_active());
  EXPECT_EQ(full.negotiated_transforms(), transforms::kAll);

  // A pre-v3 client against the compressing server, for completeness.
  TcpClientBinding old(compressing->port());
  EXPECT_EQ(exchange(old, request), baseline);
}

TEST_P(CompressChannel, AcceptIsTheIntersectionOfTheOffers) {
  ServerConfig cfg;
  cfg.compress_transforms = transforms::kLzss;  // no shuffle on this server
  auto server = make_server(std::move(cfg));

  TcpClientBinding all(server->port());
  all.enable_v3();
  all.enable_compression(transforms::kAll);
  exchange(all, encode_request(5));
  EXPECT_EQ(all.negotiated_transforms(), transforms::kLzss);

  TcpClientBinding shuffle_only(server->port());
  shuffle_only.enable_v3();
  shuffle_only.enable_compression(transforms::kShuffleLzss);
  exchange(shuffle_only, encode_request(5));
  EXPECT_EQ(shuffle_only.negotiated_transforms(), 0);
}

// ---- the message path actually compresses -----------------------------------

TEST_P(CompressChannel, CompressibleMessagesShrinkBothDirections) {
  obs::Registry registry;
  ServerConfig cfg;
  cfg.compress_transforms = transforms::kAll;
  cfg.registry = &registry;
  cfg.metrics_prefix = "srv";
  cfg.handler = [](SoapEnvelope env) { return env; };  // echo: big both ways
  auto server = make_server(std::move(cfg));

  SoapEngine<BxsaEncoding, TcpClientBinding> client(
      BxsaEncoding{}, TcpClientBinding(server->port()));
  client.binding().enable_v3();
  client.binding().enable_compression();
  CompressStats client_stats;
  client_stats.chunks = &registry.counter("cli.compress.chunks");
  client_stats.bytes_in = &registry.counter("cli.compress.bytes_in");
  client_stats.bytes_out = &registry.counter("cli.compress.bytes_out");
  client.binding().set_compress_stats(client_stats);

  const SoapEnvelope request = make_text_request(4096);  // ~100 KiB of text
  const SoapEnvelope response = client.call(request);
  ASSERT_TRUE(client.binding().v3_active());
  EXPECT_EQ(client.binding().negotiated_transforms(), transforms::kAll);
  // The echo survived the compressed round trip intact.
  const auto* root =
      dynamic_cast<const xdm::Element*>(response.body_payload());
  ASSERT_NE(root, nullptr);
  const auto* leaf = dynamic_cast<const xdm::LeafElement<std::string>*>(
      root->find_child("text"));
  ASSERT_NE(leaf, nullptr);
  EXPECT_EQ(leaf->get().size(), 4096u * 26);

  // The client compressed the request, the server the response, and both
  // came out well under half the canonical size.
  EXPECT_GE(registry.counter("cli.compress.chunks").value(), 1u);
  EXPECT_LT(registry.counter("cli.compress.bytes_out").value() * 2,
            registry.counter("cli.compress.bytes_in").value());
  EXPECT_GE(registry.counter("srv.compress.chunks").value(), 1u);
  EXPECT_LT(registry.counter("srv.compress.bytes_out").value() * 2,
            registry.counter("srv.compress.bytes_in").value());
}

// ---- the streamed path: adaptivity per chunk --------------------------------

TEST_P(CompressChannel, StreamedCompressibleChunksShrinkTheWire) {
  obs::Registry registry;
  ServerConfig cfg;
  cfg.stream_handler = echo_stream;
  cfg.compress_transforms = transforms::kAll;
  cfg.registry = &registry;
  cfg.metrics_prefix = "srv";
  auto server = make_server(std::move(cfg));

  TcpClientBinding client(server->port());
  client.enable_v3();
  client.enable_compression();
  CompressStats stats;
  stats.chunks = &registry.counter("cli.compress.chunks");
  stats.skipped = &registry.counter("cli.compress.skipped");
  stats.bytes_in = &registry.counter("cli.compress.bytes_in");
  stats.bytes_out = &registry.counter("cli.compress.bytes_out");
  client.set_compress_stats(stats);
  obs::IoStats& io = registry.io("cli.io");
  client.set_io_stats(&io);

  std::vector<std::uint8_t> sent;
  std::vector<std::uint8_t> received;
  client.stream_exchange(
      "application/x-test", kChunk,
      [&](ResponseWriter& tx) {
        for (int i = 0; i < 8; ++i) {
          // Single-byte runs: near-zero entropy, the probe must admit them.
          std::vector<std::uint8_t> chunk(kChunk / 2,
                                          static_cast<std::uint8_t>('a' + i));
          sent.insert(sent.end(), chunk.begin(), chunk.end());
          tx.write_data(std::move(chunk));
        }
        tx.finish();
      },
      [&](StreamRequest& rx) {
        while (auto data = rx.next_data()) {
          received.insert(received.end(), data->begin(), data->end());
        }
      });
  EXPECT_EQ(received, sent);
  ASSERT_TRUE(client.v3_active());

  // Every request chunk compressed, none skipped, and the whole exchange
  // (both directions of ~256 KiB logical data) fit in a fraction of it.
  EXPECT_EQ(registry.counter("cli.compress.chunks").value(), 8u);
  EXPECT_EQ(registry.counter("cli.compress.skipped").value(), 0u);
  EXPECT_LT(registry.counter("cli.compress.bytes_out").value() * 10,
            registry.counter("cli.compress.bytes_in").value());
  EXPECT_GE(registry.counter("srv.compress.chunks").value(), 8u);
  EXPECT_LT(io.bytes_out.value(), sent.size() / 4);
  EXPECT_LT(io.bytes_in.value(), sent.size() / 4);
}

TEST_P(CompressChannel, IncompressibleChunksAreSentVerbatim) {
  obs::Registry registry;
  ServerConfig cfg;
  cfg.stream_handler = echo_stream;
  cfg.compress_transforms = transforms::kAll;
  auto server = make_server(std::move(cfg));

  TcpClientBinding client(server->port());
  client.enable_v3();
  client.enable_compression();
  CompressStats stats;
  stats.chunks = &registry.counter("cli.compress.chunks");
  stats.skipped = &registry.counter("cli.compress.skipped");
  client.set_compress_stats(stats);

  std::mt19937 rng(77);
  std::vector<std::uint8_t> sent;
  std::vector<std::uint8_t> received;
  client.stream_exchange(
      "application/x-test", kChunk,
      [&](ResponseWriter& tx) {
        for (int i = 0; i < 6; ++i) {
          std::vector<std::uint8_t> chunk(kChunk / 2);
          for (auto& b : chunk) b = static_cast<std::uint8_t>(rng());
          sent.insert(sent.end(), chunk.begin(), chunk.end());
          tx.write_data(std::move(chunk));
        }
        tx.finish();
      },
      [&](StreamRequest& rx) {
        while (auto data = rx.next_data()) {
          received.insert(received.end(), data->begin(), data->end());
        }
      });
  EXPECT_EQ(received, sent);
  // The entropy probe priced every random chunk out of the codec.
  EXPECT_EQ(registry.counter("cli.compress.chunks").value(), 0u);
  EXPECT_EQ(registry.counter("cli.compress.skipped").value(), 6u);
}

// ---- pooled channels --------------------------------------------------------

TEST_P(CompressChannel, ChannelPoolNegotiatesCompressionOnEveryChannel) {
  obs::Registry registry;
  ServerConfig cfg;
  cfg.compress_transforms = transforms::kAll;
  cfg.handler = [](SoapEnvelope env) { return env; };
  auto server = make_server(std::move(cfg));

  TcpChannelPool<BxsaEncoding>::Config pool_cfg;
  pool_cfg.port = server->port();
  pool_cfg.channels = 2;
  pool_cfg.enable_v3 = true;
  pool_cfg.compress_transforms = transforms::kAll;
  pool_cfg.registry = &registry;
  pool_cfg.metrics_prefix = "pool";
  TcpChannelPool<BxsaEncoding> channels(pool_cfg);

  for (int i = 0; i < 4; ++i) {
    const SoapEnvelope resp = channels.call(make_text_request(2048));
    const auto* root =
        dynamic_cast<const xdm::Element*>(resp.body_payload());
    ASSERT_NE(root, nullptr);
    const auto* leaf = dynamic_cast<const xdm::LeafElement<std::string>*>(
        root->find_child("text"));
    ASSERT_NE(leaf, nullptr);
    EXPECT_EQ(leaf->get().size(), 2048u * 26);
  }
  EXPECT_GE(registry.counter("pool.compress.chunks").value(), 4u);
  EXPECT_LT(registry.counter("pool.compress.bytes_out").value() * 2,
            registry.counter("pool.compress.bytes_in").value());
}

INSTANTIATE_TEST_SUITE_P(Models, CompressChannel,
                         ::testing::Values(
                             ConcurrencyModel::kThreadPerConnection,
                             ConcurrencyModel::kEventLoop),
                         [](const auto& info) {
                           return info.param ==
                                          ConcurrencyModel::kThreadPerConnection
                                      ? "pool"
                                      : "event";
                         });

}  // namespace
}  // namespace bxsoap::transport
