#include "transport/event_server.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

#include "services/verification.hpp"
#include "soap/engine.hpp"
#include "transport/bindings.hpp"
#include "workload/lead.hpp"

namespace bxsoap::transport {
namespace {

using namespace bxsoap::soap;

std::unique_ptr<SoapEventServer> make_server(
    obs::Registry* registry = nullptr) {
  ServerPoolConfig cfg;
  cfg.encoding = AnyEncoding::from(BxsaEncoding{});
  cfg.handler = services::verification_handler;
  cfg.registry = registry;
  cfg.metrics_prefix = "event";
  return std::make_unique<SoapEventServer>(std::move(cfg));
}

/// Encode a verification request as a raw wire frame (for driving the
/// server below the engine layer, where pipelining is visible).
soap::WireMessage encode_request(std::size_t count) {
  BxsaEncoding enc;
  SoapEnvelope env =
      services::make_data_request(workload::make_lead_dataset(count));
  soap::WireMessage m;
  m.content_type = std::string(BxsaEncoding::content_type());
  m.payload = enc.serialize(env.document());
  return m;
}

services::VerificationOutcome decode_response(const soap::WireMessage& m) {
  BxsaEncoding enc;
  SoapEnvelope env(enc.deserialize(m.payload));
  return services::parse_verify_response(env);
}

TEST(EventServer, SingleClientExchange) {
  auto server = make_server();
  SoapEngine<BxsaEncoding, TcpClientBinding> client(
      {}, TcpClientBinding(server->port()));
  const auto dataset = workload::make_lead_dataset(100);
  SoapEnvelope resp = client.call(services::make_data_request(dataset));
  EXPECT_TRUE(services::parse_verify_response(resp).ok);
  EXPECT_EQ(server->exchanges(), 1u);
  EXPECT_EQ(server->faults(), 0u);
}

TEST(EventServer, ManyConcurrentClients) {
  auto server = make_server();
  constexpr int kClients = 8;
  constexpr int kCallsEach = 5;

  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      try {
        SoapEngine<BxsaEncoding, TcpClientBinding> client(
            {}, TcpClientBinding(server->port()));
        const auto dataset =
            workload::make_lead_dataset(100 + static_cast<std::size_t>(c));
        for (int i = 0; i < kCallsEach; ++i) {
          SoapEnvelope resp =
              client.call(services::make_data_request(dataset));
          const auto outcome = services::parse_verify_response(resp);
          if (!outcome.ok ||
              outcome.count != 100 + static_cast<std::size_t>(c)) {
            ++failures;
          }
        }
      } catch (const std::exception&) {
        ++failures;
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(server->exchanges(),
            static_cast<std::size_t>(kClients * kCallsEach));
}

// The tentpole behavior the thread-per-connection pool cannot offer: M
// requests written back to back on ONE connection come back as M responses
// in request order, even though their handlers may run concurrently on
// different workers.
TEST(EventServer, PipelinedRequestsAnswerInOrder) {
  obs::Registry registry;
  auto server = make_server(&registry);
  constexpr std::size_t kRequests = 16;

  TcpStream conn = TcpStream::connect(server->port());
  for (std::size_t i = 0; i < kRequests; ++i) {
    write_frame(conn, encode_request(10 + i));
  }
  for (std::size_t i = 0; i < kRequests; ++i) {
    const auto outcome = decode_response(read_frame(conn));
    EXPECT_TRUE(outcome.ok);
    EXPECT_EQ(outcome.count, 10 + i) << "response " << i << " out of order";
  }
  EXPECT_EQ(server->exchanges(), kRequests);
  // The burst must actually have overlapped on the connection.
  EXPECT_GT(registry.counter("event.pipelined.exchanges").value(), 0u);
}

// Responses must come back in request order even when an early request is
// much slower than the ones behind it (out-of-order completion is the rule,
// not the exception, with concurrent workers).
TEST(EventServer, SlowFirstRequestDoesNotReorderResponses) {
  ServerPoolConfig cfg;
  cfg.encoding = AnyEncoding::from(BxsaEncoding{});
  cfg.handler = [](SoapEnvelope req) {
    SoapEnvelope resp = services::verification_handler(std::move(req));
    // Invert the natural completion order: earlier = slower.
    const auto n = services::parse_verify_response(resp).count;
    if (n == 50) std::this_thread::sleep_for(std::chrono::milliseconds(80));
    if (n == 51) std::this_thread::sleep_for(std::chrono::milliseconds(40));
    return resp;
  };
  cfg.worker_threads = 4;  // enough to run the whole burst concurrently
  SoapEventServer server(std::move(cfg));
  EXPECT_EQ(server.worker_count(), 4u);

  TcpStream conn = TcpStream::connect(server.port());
  for (std::size_t i = 0; i < 4; ++i) {
    write_frame(conn, encode_request(50 + i));
  }
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(decode_response(read_frame(conn)).count, 50 + i);
  }
}

// Graceful stop: requests already assembled when stop() lands finish their
// handlers and their responses drain before the connection closes.
TEST(EventServer, GracefulStopDrainsPipelinedResponses) {
  ServerPoolConfig cfg;
  cfg.encoding = AnyEncoding::from(BxsaEncoding{});
  cfg.handler = [](SoapEnvelope req) {
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    return services::verification_handler(std::move(req));
  };
  cfg.drain_timeout = std::chrono::seconds(5);
  SoapEventServer server(std::move(cfg));
  constexpr std::size_t kRequests = 3;

  TcpStream conn = TcpStream::connect(server.port());
  for (std::size_t i = 0; i < kRequests; ++i) {
    write_frame(conn, encode_request(20 + i));
  }
  // Give the reactor a moment to assemble all three requests, then shut
  // down around them.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  std::thread stopper([&] { server.stop(); });
  for (std::size_t i = 0; i < kRequests; ++i) {
    const auto outcome = decode_response(read_frame(conn));
    EXPECT_TRUE(outcome.ok);
    EXPECT_EQ(outcome.count, 20 + i);
  }
  stopper.join();
  EXPECT_EQ(server.exchanges(), kRequests);
}

TEST(EventServer, StopWithLiveIdleConnections) {
  auto server = make_server();
  SoapEngine<BxsaEncoding, TcpClientBinding> client(
      {}, TcpClientBinding(server->port()));
  client.call(services::make_data_request(workload::make_lead_dataset(10)));
  EXPECT_EQ(server->active_connections(), 1u);
  // stop() must cut the idle connection instead of waiting on it.
  server->stop();
  EXPECT_EQ(server->active_connections(), 0u);
}

TEST(EventServer, MalformedBytesBecomeFaultNotDisconnect) {
  auto server = make_server();
  TcpStream raw = TcpStream::connect(server->port());
  soap::WireMessage junk;
  junk.content_type = "application/bxsa";
  junk.payload = {0xDE, 0xAD};
  write_frame(raw, junk);
  soap::WireMessage resp = read_frame(raw);
  BxsaEncoding enc;
  SoapEnvelope env(enc.deserialize(resp.payload));
  ASSERT_TRUE(env.is_fault());
  EXPECT_EQ(env.fault().code, "soap:Client");
  // The connection survived the in-band fault; a good request follows.
  write_frame(raw, encode_request(5));
  EXPECT_TRUE(decode_response(read_frame(raw)).ok);
}

// A frame declaring an over-limit payload is refused before allocation and
// the connection is cut; the server keeps serving everyone else.
TEST(EventServer, OversizedFrameRefusedAndServerSurvives) {
  ServerPoolConfig cfg;
  cfg.encoding = AnyEncoding::from(BxsaEncoding{});
  cfg.handler = services::verification_handler;
  cfg.frame_limits.max_message_bytes = 1024;
  SoapEventServer server(std::move(cfg));

  ByteWriter header;
  header.write_bytes(kFrameMagic, sizeof(kFrameMagic));
  header.write_u8(kFrameVersion);
  const std::string_view ct = "application/bxsa";
  vls_write(header, ct.size());
  header.write_string(ct);
  header.write<std::uint64_t>(1u << 30, ByteOrder::kBig);

  TcpStream hostile = TcpStream::connect(server.port());
  hostile.write_all(header.bytes());
  hostile.set_read_timeout(2000);
  std::uint8_t b;
  EXPECT_THROW(hostile.read_exact(&b, 1), TransportError);

  SoapEngine<BxsaEncoding, TcpClientBinding> client(
      {}, TcpClientBinding(server.port()));
  SoapEnvelope resp = client.call(
      services::make_data_request(workload::make_lead_dataset(5)));
  EXPECT_TRUE(services::parse_verify_response(resp).ok);
  EXPECT_EQ(server.exchanges(), 1u);
}

// The registry view: pool-compatible counters plus the reactor-specific
// ones, and the zero-copy buffer pool actually taking hits on this path.
TEST(EventServer, MetricsAgreeWithTraffic) {
  obs::Registry registry;
  auto server = make_server(&registry);
  constexpr std::size_t kCalls = 12;

  SoapEngine<BxsaEncoding, TcpClientBinding> client(
      {}, TcpClientBinding(server->port()));
  for (std::size_t i = 0; i < kCalls; ++i) {
    SoapEnvelope resp = client.call(
        services::make_data_request(workload::make_lead_dataset(10 + i)));
    EXPECT_TRUE(services::parse_verify_response(resp).ok);
  }

  EXPECT_EQ(server->exchanges(), kCalls);
  EXPECT_EQ(registry.counter("event.exchanges").value(), kCalls);
  EXPECT_EQ(registry.counter("event.connections.accepted").value(), 1u);
  EXPECT_EQ(registry.gauge("event.connections.active").value(), 1);
  EXPECT_GT(registry.counter("event.reactor.wakeups").value(), 0u);
  EXPECT_GT(registry.histogram("event.reactor.loop.ns").count(), 0u);
  EXPECT_GT(registry.io("event.io").bytes_in.value(), 0u);
  EXPECT_GT(registry.io("event.io").bytes_out.value(), 0u);
  // Per-stage timings saw every exchange.
  for (const char* stage :
       {"deserialize", "handler", "serialize"}) {
    EXPECT_EQ(
        registry.histogram("event.stage." + std::string(stage) + ".ns")
            .count(),
        kCalls)
        << stage;
  }
  // The PR 3 zero-copy path: after warmup, receive payloads and response
  // buffers recycle through the pool instead of malloc.
  EXPECT_GT(registry.counter("event.pool.hit").value(), 0u);
  EXPECT_GT(registry.counter("event.pool.recycled_bytes").value(), 0u);

  server->stop();
  EXPECT_EQ(registry.gauge("event.connections.active").value(), 0);
}

// max_workers is the connection ceiling: at the limit the listener parks,
// excess clients queue in the kernel backlog, and everyone is eventually
// served without concurrency ever exceeding the cap.
TEST(EventServer, ConnectionCeilingAppliesBackpressure) {
  ServerPoolConfig cfg;
  cfg.encoding = AnyEncoding::from(BxsaEncoding{});
  cfg.handler = [](SoapEnvelope req) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    return services::verification_handler(std::move(req));
  };
  cfg.max_workers = 2;
  SoapEventServer server(std::move(cfg));

  constexpr int kClients = 6;
  std::atomic<int> failures{0};
  std::atomic<bool> done{false};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      try {
        SoapEngine<BxsaEncoding, TcpClientBinding> client(
            {}, TcpClientBinding(server.port()));
        SoapEnvelope resp = client.call(
            services::make_data_request(workload::make_lead_dataset(3)));
        if (!services::parse_verify_response(resp).ok) ++failures;
        // Closing promptly frees the slot for a queued client.
        client.binding().close();
      } catch (const std::exception&) {
        ++failures;
      }
    });
  }
  std::size_t max_active = 0;
  std::thread sampler([&] {
    while (!done.load()) {
      max_active = std::max(max_active, server.active_connections());
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  for (auto& t : clients) t.join();
  done.store(true);
  sampler.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(server.exchanges(), static_cast<std::size_t>(kClients));
  EXPECT_LE(max_active, 2u);
}

TEST(EventServer, XmlEncodingServed) {
  ServerPoolConfig cfg;
  cfg.encoding = AnyEncoding::from(XmlEncoding{});
  cfg.handler = services::verification_handler;
  SoapEventServer server(std::move(cfg));
  SoapEngine<XmlEncoding, TcpClientBinding> client(
      {}, TcpClientBinding(server.port()));
  const auto dataset = workload::make_lead_dataset(10);
  SoapEnvelope resp = client.call(services::make_data_request(dataset));
  EXPECT_TRUE(services::parse_verify_response(resp).ok);
}

}  // namespace
}  // namespace bxsoap::transport
