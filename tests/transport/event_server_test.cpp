#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

#include "services/verification.hpp"
#include "soap/engine.hpp"
#include "transport/bindings.hpp"
#include "transport/server.hpp"
#include "workload/lead.hpp"

namespace bxsoap::transport {
namespace {

using namespace bxsoap::soap;

std::unique_ptr<SoapServer> make_server(obs::Registry* registry = nullptr) {
  ServerConfig cfg;
  cfg.encoding = AnyEncoding::from(BxsaEncoding{});
  cfg.handler = services::verification_handler;
  cfg.registry = registry;
  return SoapServer::create(ConcurrencyModel::kEventLoop, std::move(cfg));
}

/// Encode a verification request as a raw wire frame (for driving the
/// server below the engine layer, where pipelining is visible).
soap::WireMessage encode_request(std::size_t count) {
  BxsaEncoding enc;
  SoapEnvelope env =
      services::make_data_request(workload::make_lead_dataset(count));
  soap::WireMessage m;
  m.content_type = std::string(BxsaEncoding::content_type());
  m.payload = enc.serialize(env.document());
  return m;
}

services::VerificationOutcome decode_response(const soap::WireMessage& m) {
  BxsaEncoding enc;
  SoapEnvelope env(enc.deserialize(m.payload));
  return services::parse_verify_response(env);
}

TEST(EventServer, SingleClientExchange) {
  auto server = make_server();
  SoapEngine<BxsaEncoding, TcpClientBinding> client(
      {}, TcpClientBinding(server->port()));
  const auto dataset = workload::make_lead_dataset(100);
  SoapEnvelope resp = client.call(services::make_data_request(dataset));
  EXPECT_TRUE(services::parse_verify_response(resp).ok);
  EXPECT_EQ(server->exchanges(), 1u);
  EXPECT_EQ(server->faults(), 0u);
}

TEST(EventServer, ManyConcurrentClients) {
  auto server = make_server();
  constexpr int kClients = 8;
  constexpr int kCallsEach = 5;

  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      try {
        SoapEngine<BxsaEncoding, TcpClientBinding> client(
            {}, TcpClientBinding(server->port()));
        const auto dataset =
            workload::make_lead_dataset(100 + static_cast<std::size_t>(c));
        for (int i = 0; i < kCallsEach; ++i) {
          SoapEnvelope resp =
              client.call(services::make_data_request(dataset));
          const auto outcome = services::parse_verify_response(resp);
          if (!outcome.ok ||
              outcome.count != 100 + static_cast<std::size_t>(c)) {
            ++failures;
          }
        }
      } catch (const std::exception&) {
        ++failures;
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(server->exchanges(),
            static_cast<std::size_t>(kClients * kCallsEach));
}

// The tentpole behavior the thread-per-connection pool cannot offer: M
// requests written back to back on ONE connection come back as M responses
// in request order, even though their handlers may run concurrently on
// different workers.
TEST(EventServer, PipelinedRequestsAnswerInOrder) {
  obs::Registry registry;
  auto server = make_server(&registry);
  constexpr std::size_t kRequests = 16;

  TcpStream conn = TcpStream::connect(server->port());
  for (std::size_t i = 0; i < kRequests; ++i) {
    write_frame(conn, encode_request(10 + i));
  }
  for (std::size_t i = 0; i < kRequests; ++i) {
    const auto outcome = decode_response(read_frame(conn));
    EXPECT_TRUE(outcome.ok);
    EXPECT_EQ(outcome.count, 10 + i) << "response " << i << " out of order";
  }
  EXPECT_EQ(server->exchanges(), kRequests);
  // The burst must actually have overlapped on the connection.
  EXPECT_GT(registry.counter("event.pipelined.exchanges").value(), 0u);
}

// Responses must come back in request order even when an early request is
// much slower than the ones behind it (out-of-order completion is the rule,
// not the exception, with concurrent workers).
TEST(EventServer, SlowFirstRequestDoesNotReorderResponses) {
  ServerConfig cfg;
  cfg.encoding = AnyEncoding::from(BxsaEncoding{});
  cfg.handler = [](SoapEnvelope req) {
    SoapEnvelope resp = services::verification_handler(std::move(req));
    // Invert the natural completion order: earlier = slower.
    const auto n = services::parse_verify_response(resp).count;
    if (n == 50) std::this_thread::sleep_for(std::chrono::milliseconds(80));
    if (n == 51) std::this_thread::sleep_for(std::chrono::milliseconds(40));
    return resp;
  };
  cfg.reactor_threads = 1;
  cfg.worker_threads = 4;  // enough to run the whole burst concurrently
  auto server = SoapServer::create(ConcurrencyModel::kEventLoop,
                                   std::move(cfg));
  EXPECT_EQ(server->serving_threads(), 5u);  // 1 reactor + 4 workers

  TcpStream conn = TcpStream::connect(server->port());
  for (std::size_t i = 0; i < 4; ++i) {
    write_frame(conn, encode_request(50 + i));
  }
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(decode_response(read_frame(conn)).count, 50 + i);
  }
}

// Graceful stop: requests already assembled when stop() lands finish their
// handlers and their responses drain before the connection closes.
TEST(EventServer, GracefulStopDrainsPipelinedResponses) {
  ServerConfig cfg;
  cfg.encoding = AnyEncoding::from(BxsaEncoding{});
  cfg.handler = [](SoapEnvelope req) {
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    return services::verification_handler(std::move(req));
  };
  cfg.drain_timeout = std::chrono::seconds(5);
  auto server = SoapServer::create(ConcurrencyModel::kEventLoop,
                                   std::move(cfg));
  constexpr std::size_t kRequests = 3;

  TcpStream conn = TcpStream::connect(server->port());
  for (std::size_t i = 0; i < kRequests; ++i) {
    write_frame(conn, encode_request(20 + i));
  }
  // Give the reactor a moment to assemble all three requests, then shut
  // down around them.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  std::thread stopper([&] { server->stop(); });
  for (std::size_t i = 0; i < kRequests; ++i) {
    const auto outcome = decode_response(read_frame(conn));
    EXPECT_TRUE(outcome.ok);
    EXPECT_EQ(outcome.count, 20 + i);
  }
  stopper.join();
  EXPECT_EQ(server->exchanges(), kRequests);
}

TEST(EventServer, StopWithLiveIdleConnections) {
  auto server = make_server();
  SoapEngine<BxsaEncoding, TcpClientBinding> client(
      {}, TcpClientBinding(server->port()));
  client.call(services::make_data_request(workload::make_lead_dataset(10)));
  EXPECT_EQ(server->active_connections(), 1u);
  // stop() must cut the idle connection instead of waiting on it.
  server->stop();
  EXPECT_EQ(server->active_connections(), 0u);
}

TEST(EventServer, MalformedBytesBecomeFaultNotDisconnect) {
  auto server = make_server();
  TcpStream raw = TcpStream::connect(server->port());
  soap::WireMessage junk;
  junk.content_type = "application/bxsa";
  junk.payload = {0xDE, 0xAD};
  write_frame(raw, junk);
  soap::WireMessage resp = read_frame(raw);
  BxsaEncoding enc;
  SoapEnvelope env(enc.deserialize(resp.payload));
  ASSERT_TRUE(env.is_fault());
  EXPECT_EQ(env.fault().code, "soap:Client");
  // The connection survived the in-band fault; a good request follows.
  write_frame(raw, encode_request(5));
  EXPECT_TRUE(decode_response(read_frame(raw)).ok);
}

// A frame declaring an over-limit payload is refused before allocation and
// the connection is cut; the server keeps serving everyone else.
TEST(EventServer, OversizedFrameRefusedAndServerSurvives) {
  ServerConfig cfg;
  cfg.encoding = AnyEncoding::from(BxsaEncoding{});
  cfg.handler = services::verification_handler;
  cfg.frame_limits.max_message_bytes = 1024;
  auto server = SoapServer::create(ConcurrencyModel::kEventLoop,
                                   std::move(cfg));

  ByteWriter header;
  header.write_bytes(kFrameMagic, sizeof(kFrameMagic));
  header.write_u8(kFrameVersion);
  const std::string_view ct = "application/bxsa";
  vls_write(header, ct.size());
  header.write_string(ct);
  header.write<std::uint64_t>(1u << 30, ByteOrder::kBig);

  TcpStream hostile = TcpStream::connect(server->port());
  hostile.write_all(header.bytes());
  hostile.set_read_timeout(2000);
  std::uint8_t b;
  EXPECT_THROW(hostile.read_exact(&b, 1), TransportError);

  SoapEngine<BxsaEncoding, TcpClientBinding> client(
      {}, TcpClientBinding(server->port()));
  SoapEnvelope resp = client.call(
      services::make_data_request(workload::make_lead_dataset(5)));
  EXPECT_TRUE(services::parse_verify_response(resp).ok);
  EXPECT_EQ(server->exchanges(), 1u);
}

// The registry view: pool-compatible counters plus the reactor-specific
// ones, and the zero-copy buffer pool actually taking hits on this path.
TEST(EventServer, MetricsAgreeWithTraffic) {
  obs::Registry registry;
  auto server = make_server(&registry);
  constexpr std::size_t kCalls = 12;

  SoapEngine<BxsaEncoding, TcpClientBinding> client(
      {}, TcpClientBinding(server->port()));
  for (std::size_t i = 0; i < kCalls; ++i) {
    SoapEnvelope resp = client.call(
        services::make_data_request(workload::make_lead_dataset(10 + i)));
    EXPECT_TRUE(services::parse_verify_response(resp).ok);
  }

  EXPECT_EQ(server->exchanges(), kCalls);
  EXPECT_EQ(registry.counter("event.exchanges").value(), kCalls);
  EXPECT_EQ(registry.counter("event.connections.accepted").value(), 1u);
  EXPECT_EQ(registry.gauge("event.connections.active").value(), 1);
  EXPECT_GT(registry.counter("event.reactor.wakeups").value(), 0u);
  EXPECT_GT(registry.histogram("event.reactor.loop.ns").count(), 0u);
  // The round-robin cursor starts at shard 0, so the run's single
  // connection was dealt there — whatever the shard count.
  EXPECT_EQ(registry.counter("event.reactor.0.connections").value(), 1u);
  EXPECT_GT(registry.histogram("event.reactor.0.loop.ns").count(), 0u);
  EXPECT_GT(registry.io("event.io").bytes_in.value(), 0u);
  EXPECT_GT(registry.io("event.io").bytes_out.value(), 0u);
  // Per-stage timings saw every exchange.
  for (const char* stage :
       {"deserialize", "handler", "serialize"}) {
    EXPECT_EQ(
        registry.histogram("event.stage." + std::string(stage) + ".ns")
            .count(),
        kCalls)
        << stage;
  }
  // The PR 3 zero-copy path: after warmup, receive payloads and response
  // buffers recycle through the pool instead of malloc.
  EXPECT_GT(registry.counter("event.pool.hit").value(), 0u);
  EXPECT_GT(registry.counter("event.pool.recycled_bytes").value(), 0u);

  server->stop();
  EXPECT_EQ(registry.gauge("event.connections.active").value(), 0);
}

// max_workers is the connection ceiling: at the limit the listener parks,
// excess clients queue in the kernel backlog, and everyone is eventually
// served without concurrency ever exceeding the cap.
TEST(EventServer, ConnectionCeilingAppliesBackpressure) {
  ServerConfig cfg;
  cfg.encoding = AnyEncoding::from(BxsaEncoding{});
  cfg.handler = [](SoapEnvelope req) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    return services::verification_handler(std::move(req));
  };
  cfg.max_workers = 2;
  auto server = SoapServer::create(ConcurrencyModel::kEventLoop,
                                   std::move(cfg));

  constexpr int kClients = 6;
  std::atomic<int> failures{0};
  std::atomic<bool> done{false};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      try {
        SoapEngine<BxsaEncoding, TcpClientBinding> client(
            {}, TcpClientBinding(server->port()));
        SoapEnvelope resp = client.call(
            services::make_data_request(workload::make_lead_dataset(3)));
        if (!services::parse_verify_response(resp).ok) ++failures;
        // Closing promptly frees the slot for a queued client.
        client.binding().close();
      } catch (const std::exception&) {
        ++failures;
      }
    });
  }
  std::size_t max_active = 0;
  std::thread sampler([&] {
    while (!done.load()) {
      max_active = std::max(max_active, server->active_connections());
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  for (auto& t : clients) t.join();
  done.store(true);
  sampler.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(server->exchanges(), static_cast<std::size_t>(kClients));
  EXPECT_LE(max_active, 2u);
}

TEST(EventServer, XmlEncodingServed) {
  ServerConfig cfg;
  cfg.encoding = AnyEncoding::from(XmlEncoding{});
  cfg.handler = services::verification_handler;
  auto server = SoapServer::create(ConcurrencyModel::kEventLoop,
                                   std::move(cfg));
  SoapEngine<XmlEncoding, TcpClientBinding> client(
      {}, TcpClientBinding(server->port()));
  const auto dataset = workload::make_lead_dataset(10);
  SoapEnvelope resp = client.call(services::make_data_request(dataset));
  EXPECT_TRUE(services::parse_verify_response(resp).ok);
}

// ---- sharded-reactor behavior (PR 6 tentpole) -------------------------------

std::unique_ptr<SoapServer> make_sharded(std::size_t reactors,
                                         obs::Registry* registry = nullptr,
                                         bool reuse_port = false) {
  ServerConfig cfg;
  cfg.encoding = AnyEncoding::from(BxsaEncoding{});
  cfg.handler = services::verification_handler;
  cfg.reactor_threads = reactors;
  cfg.reuse_port = reuse_port;
  cfg.worker_threads = 2;
  cfg.registry = registry;
  return SoapServer::create(ConcurrencyModel::kEventLoop, std::move(cfg));
}

// The accept loop deals connections round-robin: under 4xN sequential
// clients every one of the N shards must end up owning exactly 4.
TEST(EventShard, ConnectionsDistributeRoundRobinAcrossReactors) {
  constexpr std::size_t kReactors = 3;
  obs::Registry registry;
  auto server = make_sharded(kReactors, &registry);

  std::vector<std::unique_ptr<SoapEngine<BxsaEncoding, TcpClientBinding>>>
      clients;
  for (std::size_t c = 0; c < 4 * kReactors; ++c) {
    // Sequential connect + call: each socket is accepted (and dealt)
    // before the next connect, so the deal order is deterministic.
    clients.push_back(
        std::make_unique<SoapEngine<BxsaEncoding, TcpClientBinding>>(
            BxsaEncoding{}, TcpClientBinding(server->port())));
    SoapEnvelope resp = clients.back()->call(
        services::make_data_request(workload::make_lead_dataset(5)));
    EXPECT_TRUE(services::parse_verify_response(resp).ok);
  }

  EXPECT_EQ(server->exchanges(), 4 * kReactors);
  for (std::size_t i = 0; i < kReactors; ++i) {
    EXPECT_EQ(registry
                  .counter("event.reactor." + std::to_string(i) +
                           ".connections")
                  .value(),
              4u)
        << "shard " << i;
  }
}

// serving_threads() is the contract the two models trade on: for the event
// server it is exactly reactors + fixed workers, independent of clients.
TEST(EventShard, ServingThreadsIsReactorsPlusWorkers) {
  auto server = make_sharded(3);
  EXPECT_EQ(server->serving_threads(), 5u);  // 3 reactors + 2 workers
}

// reuse_port mode: every reactor has its own SO_REUSEPORT listener on ONE
// port; the kernel spreads connections, and traffic is served identically.
TEST(EventShard, ReusePortListenersServeConcurrentClients) {
  obs::Registry registry;
  auto server = make_sharded(2, &registry, /*reuse_port=*/true);

  constexpr int kClients = 8;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&] {
      try {
        SoapEngine<BxsaEncoding, TcpClientBinding> client(
            {}, TcpClientBinding(server->port()));
        SoapEnvelope resp = client.call(
            services::make_data_request(workload::make_lead_dataset(7)));
        if (!services::parse_verify_response(resp).ok) ++failures;
      } catch (const std::exception&) {
        ++failures;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(server->exchanges(), static_cast<std::size_t>(kClients));
  // Kernel hashing chose the shard, but every connection was counted by
  // exactly one.
  EXPECT_EQ(registry.counter("event.reactor.0.connections").value() +
                registry.counter("event.reactor.1.connections").value(),
            static_cast<std::uint64_t>(kClients));
}

// Pipelining still holds when the connection lives on a non-accepting
// shard: the handoff must not reorder or drop back-to-back requests.
TEST(EventShard, PipeliningSurvivesCrossReactorHandoff) {
  auto server = make_sharded(2);
  constexpr std::size_t kRequests = 8;

  // Two connections: with round-robin they land on DIFFERENT shards, and
  // the second one's socket crossed the reactor-0 -> reactor-1 handoff.
  TcpStream first = TcpStream::connect(server->port());
  TcpStream second = TcpStream::connect(server->port());
  for (std::size_t i = 0; i < kRequests; ++i) {
    write_frame(first, encode_request(30 + i));
    write_frame(second, encode_request(60 + i));
  }
  for (std::size_t i = 0; i < kRequests; ++i) {
    EXPECT_EQ(decode_response(read_frame(first)).count, 30 + i);
    EXPECT_EQ(decode_response(read_frame(second)).count, 60 + i);
  }
  EXPECT_EQ(server->exchanges(), 2 * kRequests);
}

// The connection ceiling spans shards: a drop on one shard must un-park
// the listener owned by another.
TEST(EventShard, ConnectionCeilingSpansShards) {
  ServerConfig cfg;
  cfg.encoding = AnyEncoding::from(BxsaEncoding{});
  cfg.handler = services::verification_handler;
  cfg.reactor_threads = 2;
  cfg.worker_threads = 2;
  cfg.max_workers = 2;
  auto server = SoapServer::create(ConcurrencyModel::kEventLoop,
                                   std::move(cfg));

  constexpr int kClients = 6;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&] {
      try {
        SoapEngine<BxsaEncoding, TcpClientBinding> client(
            {}, TcpClientBinding(server->port()));
        SoapEnvelope resp = client.call(
            services::make_data_request(workload::make_lead_dataset(3)));
        if (!services::parse_verify_response(resp).ok) ++failures;
        client.binding().close();
      } catch (const std::exception&) {
        ++failures;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(server->exchanges(), static_cast<std::size_t>(kClients));
}

}  // namespace
}  // namespace bxsoap::transport
