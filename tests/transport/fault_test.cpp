#include "transport/fault.hpp"

#include <gtest/gtest.h>

#include "transport/framing.hpp"

namespace bxsoap::transport {
namespace {

// ---- FaultPlan -------------------------------------------------------------

TEST(FaultPlan, SeededPlanIsDeterministic) {
  const FaultPlan a(42);
  const FaultPlan b(42);
  for (std::uint64_t n = 0; n < 200; ++n) {
    const FaultSpec x = a.for_connection(n);
    const FaultSpec y = b.for_connection(n);
    EXPECT_EQ(x.kind, y.kind) << n;
    EXPECT_EQ(x.offset, y.offset) << n;
    EXPECT_EQ(x.bit, y.bit) << n;
    EXPECT_EQ(x.delay_ms, y.delay_ms) << n;
  }
}

TEST(FaultPlan, ForConnectionIsPure) {
  const FaultPlan plan(7);
  const FaultSpec first = plan.for_connection(3);
  // Querying other connections must not perturb connection 3's spec.
  plan.for_connection(0);
  plan.for_connection(99);
  const FaultSpec again = plan.for_connection(3);
  EXPECT_EQ(first.kind, again.kind);
  EXPECT_EQ(first.offset, again.offset);
}

TEST(FaultPlan, DifferentSeedsDiffer) {
  const FaultPlan a(1);
  const FaultPlan b(2);
  bool any_difference = false;
  for (std::uint64_t n = 0; n < 64 && !any_difference; ++n) {
    const FaultSpec x = a.for_connection(n);
    const FaultSpec y = b.for_connection(n);
    any_difference = x.kind != y.kind || x.offset != y.offset;
  }
  EXPECT_TRUE(any_difference);
}

TEST(FaultPlan, SeededMixCoversEveryKind) {
  const FaultPlan plan(13);
  bool seen[kFaultKindCount] = {};
  for (std::uint64_t n = 0; n < 500; ++n) {
    seen[static_cast<std::size_t>(plan.for_connection(n).kind)] = true;
  }
  for (std::size_t k = 0; k < kFaultKindCount; ++k) {
    EXPECT_TRUE(seen[k]) << fault_kind_name(static_cast<FaultKind>(k));
  }
}

TEST(FaultPlan, ScriptedPlanFollowsScript) {
  const FaultPlan plan = FaultPlan::script({
      {FaultKind::kReset, 10, 0, 0},
      {FaultKind::kCorrupt, 3, 5, 0},
  });
  EXPECT_EQ(plan.for_connection(0).kind, FaultKind::kReset);
  EXPECT_EQ(plan.for_connection(0).offset, 10u);
  EXPECT_EQ(plan.for_connection(1).kind, FaultKind::kCorrupt);
  EXPECT_EQ(plan.for_connection(1).bit, 5);
  // Past the end of the script: clean.
  EXPECT_EQ(plan.for_connection(2).kind, FaultKind::kNone);
  EXPECT_EQ(plan.for_connection(500).kind, FaultKind::kNone);
}

TEST(FaultPlan, ZeroWeightsYieldClean) {
  FaultPlanConfig config;
  config.weight_none = 0;
  config.weight_reset = 0;
  config.weight_truncate = 0;
  config.weight_delay = 0;
  config.weight_corrupt = 0;
  const FaultPlan plan(9, config);
  EXPECT_EQ(plan.for_connection(0).kind, FaultKind::kNone);
}

// ---- MemoryStream ----------------------------------------------------------

TEST(MemoryStream, FifoRoundTrip) {
  MemoryStream s;
  const std::uint8_t data[] = {1, 2, 3, 4, 5};
  s.write_all(std::span<const std::uint8_t>(data, 5));
  auto first = s.read_exact(2);
  EXPECT_EQ(first, (std::vector<std::uint8_t>{1, 2}));
  auto rest = s.read_exact(3);
  EXPECT_EQ(rest, (std::vector<std::uint8_t>{3, 4, 5}));
  EXPECT_EQ(s.pending(), 0u);
}

TEST(MemoryStream, ReadPastEndBehavesLikeClosedPeer) {
  MemoryStream s;
  s.write_all(std::string_view("ab"));
  std::uint8_t buf[8];
  EXPECT_EQ(s.read_some(buf, 8), 2u);   // partial read drains what's there
  EXPECT_EQ(s.read_some(buf, 8), 0u);   // then EOF, like a closed socket
  EXPECT_THROW(s.read_exact(buf, 1), TransportError);
}

TEST(MemoryStream, CarriesFrames) {
  MemoryStream s;
  soap::WireMessage m;
  m.content_type = "application/bxsa";
  m.payload = {9, 8, 7};
  write_frame(s, m);
  const soap::WireMessage back = read_frame(s);
  EXPECT_EQ(back.content_type, m.content_type);
  EXPECT_EQ(back.payload, m.payload);
}

// ---- frame limits (satellite: reject before allocating) --------------------

TEST(FrameLimits, OversizedDeclaredLengthRejectedBeforeAllocation) {
  // Hand-craft a frame header that declares an absurd payload length. The
  // payload bytes are never written: if read_frame tried to allocate or
  // read them the test would fail by timeout/bad_alloc rather than by the
  // expected TransportError.
  MemoryStream s;
  ByteWriter w;
  w.write_bytes(kFrameMagic, sizeof(kFrameMagic));
  w.write_u8(kFrameVersion);
  vls_write(w, 1);
  w.write_string("x");
  w.write<std::uint64_t>(1ull << 62, ByteOrder::kBig);
  s.write_all(w.bytes());
  EXPECT_THROW(read_frame(s), TransportError);
}

TEST(FrameLimits, ConfigurableCap) {
  MemoryStream s;
  soap::WireMessage m;
  m.content_type = "x";
  m.payload.assign(2048, 0xAB);
  write_frame(s, m);
  FrameLimits limits;
  limits.max_message_bytes = 1024;
  EXPECT_THROW(read_frame(s, limits), TransportError);

  // The same frame passes under the default cap.
  MemoryStream s2;
  write_frame(s2, m);
  EXPECT_EQ(read_frame(s2).payload.size(), 2048u);
}

TEST(FrameLimits, UnreasonableContentTypeRejected) {
  MemoryStream s;
  ByteWriter w;
  w.write_bytes(kFrameMagic, sizeof(kFrameMagic));
  w.write_u8(kFrameVersion);
  vls_write(w, 1ull << 40);  // content-type "length"
  s.write_all(w.bytes());
  EXPECT_THROW(read_frame(s), TransportError);
}

// ---- FaultyStream ----------------------------------------------------------

using FaultyMemory = FaultyStream<MemoryStream>;

TEST(FaultyStream, NoneIsTransparent) {
  FaultyMemory fs(MemoryStream{}, FaultSpec{});
  soap::WireMessage m;
  m.content_type = "t";
  m.payload = {1, 2, 3};
  write_frame(fs, m);
  const soap::WireMessage back = read_frame(fs);
  EXPECT_EQ(back.payload, m.payload);
  EXPECT_FALSE(fs.triggered());
}

TEST(FaultyStream, TruncateDeliversExactlyKBytes) {
  constexpr std::uint64_t kCut = 7;
  FaultyMemory fs(MemoryStream{}, {FaultKind::kTruncate, kCut, 0, 0});
  std::vector<std::uint8_t> data(32, 0x55);
  EXPECT_THROW(fs.write_all(std::span<const std::uint8_t>(data)),
               TransportError);
  EXPECT_TRUE(fs.triggered());
  EXPECT_EQ(fs.inner().pending(), kCut);
  // The connection is dead: every further operation fails.
  EXPECT_THROW(fs.write_all(std::span<const std::uint8_t>(data)),
               TransportError);
  std::uint8_t b;
  EXPECT_THROW(fs.read_exact(&b, 1), TransportError);
}

TEST(FaultyStream, TruncateAcrossMultipleWrites) {
  FaultyMemory fs(MemoryStream{}, {FaultKind::kTruncate, 5, 0, 0});
  const std::uint8_t chunk[3] = {1, 2, 3};
  fs.write_all(std::span<const std::uint8_t>(chunk, 3));  // bytes 0..2 pass
  EXPECT_THROW(fs.write_all(std::span<const std::uint8_t>(chunk, 3)),
               TransportError);  // bytes 3..5 cross the cut at 5
  EXPECT_EQ(fs.inner().pending(), 5u);
}

TEST(FaultyStream, ResetAtOffsetZeroDeliversNothing) {
  FaultyMemory fs(MemoryStream{}, {FaultKind::kReset, 0, 0, 0});
  const std::uint8_t chunk[4] = {1, 2, 3, 4};
  EXPECT_THROW(fs.write_all(std::span<const std::uint8_t>(chunk, 4)),
               TransportError);
  EXPECT_EQ(fs.inner().pending(), 0u);
}

TEST(FaultyStream, CorruptFlipsExactlyOneBit) {
  FaultyMemory fs(MemoryStream{}, {FaultKind::kCorrupt, 2, 4, 0});
  const std::uint8_t chunk[4] = {0x00, 0x00, 0x00, 0x00};
  fs.write_all(std::span<const std::uint8_t>(chunk, 4));
  const auto delivered = fs.inner().read_exact(4);
  EXPECT_EQ(delivered, (std::vector<std::uint8_t>{0x00, 0x00, 0x10, 0x00}));
  EXPECT_FALSE(fs.triggered());  // corruption is silent, not fatal
}

TEST(FaultyStream, CorruptOffsetSpansWrites) {
  // The corrupt offset is absolute within the write stream, not per-write.
  FaultyMemory fs(MemoryStream{}, {FaultKind::kCorrupt, 3, 0, 0});
  const std::uint8_t a[2] = {0xFF, 0xFF};
  const std::uint8_t b[2] = {0xFF, 0xFF};
  fs.write_all(std::span<const std::uint8_t>(a, 2));
  fs.write_all(std::span<const std::uint8_t>(b, 2));
  const auto delivered = fs.inner().read_exact(4);
  EXPECT_EQ(delivered, (std::vector<std::uint8_t>{0xFF, 0xFF, 0xFF, 0xFE}));
}

TEST(FaultyStream, DelayStillDeliversIntactData) {
  FaultyMemory fs(MemoryStream{}, {FaultKind::kDelay, 0, 0, 1});
  soap::WireMessage m;
  m.content_type = "t";
  m.payload = {42};
  write_frame(fs, m);
  const soap::WireMessage back = read_frame(fs);
  EXPECT_EQ(back.payload, m.payload);
  EXPECT_GT(fs.bytes_read(), 0u);
}

TEST(FaultyStream, CorruptedFrameHeaderSurfacesAsTransportError) {
  // Flip a bit inside the magic: the reader must reject the frame, not
  // misparse it.
  FaultyMemory fs(MemoryStream{}, {FaultKind::kCorrupt, 0, 3, 0});
  soap::WireMessage m;
  m.content_type = "t";
  m.payload = {1, 2, 3};
  write_frame(fs, m);
  EXPECT_THROW(read_frame(fs.inner()), TransportError);
}

// ---- FaultyBinding counters -------------------------------------------------

TEST(FaultyBinding, RecordsInjections) {
  obs::Registry registry;
  // Use the in-memory MessageQueue-free route: FaultyBinding only needs the
  // BindingPolicy shape, so a loopback stub is enough.
  struct LoopbackBinding {
    std::vector<soap::WireMessage> sent;
    void send_request(soap::WireMessage m) { sent.push_back(std::move(m)); }
    soap::WireMessage receive_response() { return take(); }
    soap::WireMessage receive_request() { return take(); }
    void send_response(soap::WireMessage m) { sent.push_back(std::move(m)); }
    soap::WireMessage take() {
      if (sent.empty()) throw TransportError("empty");
      soap::WireMessage m = std::move(sent.back());
      sent.pop_back();
      return m;
    }
  };
  static_assert(soap::BindingPolicy<LoopbackBinding>);

  const FaultPlan plan = FaultPlan::script({
      {FaultKind::kNone, 0, 0, 0},
      {FaultKind::kTruncate, 1, 0, 0},
      {FaultKind::kReset, 0, 0, 0},
  });
  FaultyBinding<LoopbackBinding> fb(LoopbackBinding{}, plan, &registry);

  soap::WireMessage m;
  m.content_type = "t";
  m.payload = {1, 2, 3, 4};
  fb.send_request(m);                              // message 0: clean
  EXPECT_EQ(fb.receive_response().payload.size(), 4u);
  fb.send_request(m);                              // message 1: truncated
  EXPECT_EQ(fb.receive_response().payload.size(), 1u);
  EXPECT_THROW(fb.send_request(m), TransportError);  // message 2: reset

  EXPECT_EQ(registry.counter("inject.injected.none").value(), 1u);
  EXPECT_EQ(registry.counter("inject.injected.truncate").value(), 1u);
  EXPECT_EQ(registry.counter("inject.injected.reset").value(), 1u);
  EXPECT_EQ(registry.counter("inject.injected.corrupt").value(), 0u);
}

}  // namespace
}  // namespace bxsoap::transport
