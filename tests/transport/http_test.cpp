#include "transport/http.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <thread>

#include "transport/file_server.hpp"

namespace bxsoap::transport {
namespace {

TEST(HttpHeaders, CaseInsensitiveLookup) {
  HttpHeaders h;
  h.set("Content-Type", "text/xml");
  EXPECT_EQ(h.get("content-type").value_or(""), "text/xml");
  EXPECT_EQ(h.get("CONTENT-TYPE").value_or(""), "text/xml");
  EXPECT_FALSE(h.get("X-Missing").has_value());
}

TEST(HttpServer, EchoPost) {
  HttpServer server;
  server.start([](const HttpRequest& req) {
    HttpResponse resp;
    resp.headers.set("Content-Type",
                     req.headers.get("Content-Type").value_or("none"));
    resp.body = req.body;
    return resp;
  });

  HttpClient client(server.port());
  const std::vector<std::uint8_t> body = {'d', 'a', 't', 'a'};
  HttpResponse resp = client.post("/echo", "application/bxsa", body);
  EXPECT_EQ(resp.status, 200);
  EXPECT_EQ(resp.body, body);
  EXPECT_EQ(resp.headers.get("Content-Type").value_or(""),
            "application/bxsa");
  server.stop();
}

TEST(HttpServer, HandlerSeesMethodAndTarget) {
  HttpServer server;
  server.start([](const HttpRequest& req) {
    HttpResponse resp;
    const std::string summary = req.method + " " + req.target;
    resp.body.assign(summary.begin(), summary.end());
    return resp;
  });
  HttpClient client(server.port());
  HttpResponse resp = client.get("/a/b?x=1");
  EXPECT_EQ(std::string(resp.body.begin(), resp.body.end()), "GET /a/b?x=1");
  server.stop();
}

TEST(HttpServer, HandlerExceptionBecomes500) {
  HttpServer server;
  server.start([](const HttpRequest&) -> HttpResponse {
    throw std::runtime_error("kaput");
  });
  HttpClient client(server.port());
  HttpResponse resp = client.get("/");
  EXPECT_EQ(resp.status, 500);
  EXPECT_EQ(std::string(resp.body.begin(), resp.body.end()), "kaput");
  server.stop();
}

TEST(HttpServer, MultipleSequentialRequests) {
  HttpServer server;
  int counter = 0;
  server.start([&counter](const HttpRequest&) {
    HttpResponse resp;
    const std::string n = std::to_string(++counter);
    resp.body.assign(n.begin(), n.end());
    return resp;
  });
  HttpClient client(server.port());
  for (int i = 1; i <= 5; ++i) {
    HttpResponse resp = client.get("/");
    EXPECT_EQ(std::string(resp.body.begin(), resp.body.end()),
              std::to_string(i));
  }
  server.stop();
}

// Keep-alive opt-in: with both sides agreeing, any number of requests
// coalesce onto one connection.
TEST(HttpServer, KeepAliveReusesOneConnection) {
  HttpServer server;
  server.set_keep_alive(true);
  int counter = 0;
  server.start([&counter](const HttpRequest&) {
    HttpResponse resp;
    const std::string n = std::to_string(++counter);
    resp.body.assign(n.begin(), n.end());
    return resp;
  });
  HttpClient client(server.port());
  client.set_keep_alive(true);
  for (int i = 1; i <= 5; ++i) {
    HttpResponse resp = client.get("/");
    EXPECT_EQ(resp.status, 200);
    EXPECT_TRUE(resp.keep_alive);
    EXPECT_EQ(std::string(resp.body.begin(), resp.body.end()),
              std::to_string(i));
  }
  EXPECT_EQ(client.connections_opened(), 1u);
  server.stop();
}

// A keep-alive client against a close-only server falls back to one
// connection per request — same responses, no errors.
TEST(HttpServer, KeepAliveClientFallsBackWhenServerCloses) {
  HttpServer server;  // keep-alive NOT enabled: answers Connection: close
  server.start([](const HttpRequest& req) {
    HttpResponse resp;
    resp.body = req.body;
    return resp;
  });
  HttpClient client(server.port());
  client.set_keep_alive(true);
  const std::vector<std::uint8_t> body = {'x', 'y'};
  for (int i = 0; i < 3; ++i) {
    HttpResponse resp = client.post("/echo", "application/bxsa", body);
    EXPECT_EQ(resp.status, 200);
    EXPECT_FALSE(resp.keep_alive);
    EXPECT_EQ(resp.body, body);
  }
  EXPECT_EQ(client.connections_opened(), 3u);
  server.stop();
}

// A plain client against a keep-alive server keeps the historical
// one-exchange-per-connection behavior (the server honors the client's
// Connection: close).
TEST(HttpServer, PlainClientUnaffectedByKeepAliveServer) {
  HttpServer server;
  server.set_keep_alive(true);
  server.start([](const HttpRequest&) { return HttpResponse{}; });
  HttpClient client(server.port());
  for (int i = 0; i < 3; ++i) {
    HttpResponse resp = client.get("/");
    EXPECT_EQ(resp.status, 200);
    EXPECT_FALSE(resp.keep_alive);
  }
  EXPECT_EQ(client.connections_opened(), 3u);
  server.stop();
}

// The stale-reuse race: a server that promises keep-alive but closes the
// idle connection between requests. The client's next send lands on a dead
// socket; it must redial and retry once instead of surfacing the error.
TEST(HttpServer, KeepAliveClientRetriesStaleConnection) {
  TcpListener listener(0);
  std::thread treacherous([&] {
    // First connection: answer one request with keep-alive, then close.
    {
      TcpStream conn = listener.accept();
      (void)read_http_request(conn);
      HttpResponse resp;
      resp.keep_alive = true;
      write_http_response(conn, resp);
    }  // closed here, while the client believes it is reusable
    // Second connection: the client's retry. Serve it properly.
    TcpStream conn = listener.accept();
    (void)read_http_request(conn);
    write_http_response(conn, HttpResponse{});
  });

  HttpClient client(listener.port());
  client.set_keep_alive(true);
  EXPECT_EQ(client.get("/").status, 200);
  EXPECT_EQ(client.connections_opened(), 1u);
  // The persistent connection is now dead; this request must transparently
  // redial.
  EXPECT_EQ(client.get("/").status, 200);
  EXPECT_EQ(client.connections_opened(), 2u);
  treacherous.join();
}

TEST(HttpServer, StopWithParkedKeepAliveClientDoesNotHang) {
  HttpServer server;
  server.set_keep_alive(true);
  server.start([](const HttpRequest&) { return HttpResponse{}; });
  HttpClient client(server.port());
  client.set_keep_alive(true);
  EXPECT_EQ(client.get("/").status, 200);
  // The connection is idle-open; stop() must cut it rather than wait.
  server.stop();
}

TEST(HttpServer, StopIsIdempotent) {
  HttpServer server;
  server.start([](const HttpRequest&) { return HttpResponse{}; });
  server.stop();
  server.stop();
}

TEST(HttpServer, LargeBodyRoundTrip) {
  HttpServer server;
  server.start([](const HttpRequest& req) {
    HttpResponse resp;
    resp.body = req.body;
    return resp;
  });
  HttpClient client(server.port());
  std::vector<std::uint8_t> body(3 << 20);
  for (std::size_t i = 0; i < body.size(); ++i) {
    body[i] = static_cast<std::uint8_t>(i);
  }
  HttpResponse resp = client.post("/", "application/octet-stream", body);
  EXPECT_EQ(resp.body, body);
  server.stop();
}

class FileServerFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("bxsoap_fs_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
    std::ofstream(dir_ / "data.bin", std::ios::binary) << "FILEBYTES";
    server_ = std::make_unique<HttpFileServer>(dir_);
  }
  void TearDown() override {
    server_.reset();
    std::filesystem::remove_all(dir_);
  }

  std::filesystem::path dir_;
  std::unique_ptr<HttpFileServer> server_;
};

TEST_F(FileServerFixture, ServesExistingFile) {
  const auto bytes = http_fetch(server_->url_for("data.bin"));
  EXPECT_EQ(std::string(bytes.begin(), bytes.end()), "FILEBYTES");
}

TEST_F(FileServerFixture, MissingFileIs404) {
  HttpClient client(server_->port());
  EXPECT_EQ(client.get("/nope.bin").status, 404);
  EXPECT_THROW(http_fetch(server_->url_for("nope.bin")), TransportError);
}

TEST_F(FileServerFixture, PathTraversalForbidden) {
  HttpClient client(server_->port());
  EXPECT_EQ(client.get("/../etc/passwd").status, 403);
}

TEST_F(FileServerFixture, PostRejected) {
  HttpClient client(server_->port());
  EXPECT_EQ(client.post("/data.bin", "x", {}).status, 405);
}

TEST(HttpParsing, ResponseWithoutReasonPhrase) {
  TcpListener listener(0);
  std::thread server([&] {
    TcpStream conn = listener.accept();
    conn.write_all(std::string_view(
        "HTTP/1.1 204\r\nContent-Length: 0\r\n\r\n"));
  });
  TcpStream client = TcpStream::connect(listener.port());
  // Send any request first so the exchange is well-formed.
  HttpRequest req;
  write_http_request(client, req);
  HttpResponse resp = read_http_response(client);
  EXPECT_EQ(resp.status, 204);
  EXPECT_EQ(resp.reason, "");
  EXPECT_TRUE(resp.body.empty());
  server.join();
}

TEST(HttpParsing, MalformedResponsesRejected) {
  for (const char* wire :
       {"NOTHTTP 200 OK\r\n\r\n", "HTTP/1.1 abc OK\r\n\r\n",
        "HTTP/1.1 99 Too Low\r\n\r\n", "HTTP/1.1 600 Too High\r\n\r\n",
        "HTTP/1.1 200 OK\r\nBadHeaderNoColon\r\n\r\n",
        "HTTP/1.1 200 OK\r\nContent-Length: -5\r\n\r\n"}) {
    TcpListener listener(0);
    std::thread server([&] {
      TcpStream conn = listener.accept();
      conn.write_all(std::string_view(wire));
    });
    TcpStream client = TcpStream::connect(listener.port());
    EXPECT_THROW(read_http_response(client), TransportError) << wire;
    server.join();
  }
}

TEST(HttpParsing, RequestHeaderWhitespaceTrimmed) {
  TcpListener listener(0);
  std::thread server([&] {
    TcpStream conn = listener.accept();
    conn.write_all(std::string_view(
        "POST /x HTTP/1.1\r\nContent-Type:   text/xml  \r\n"
        "Content-Length: 2\r\n\r\nok"));
  });
  TcpStream client = TcpStream::connect(listener.port());
  HttpRequest req = read_http_request(client);
  EXPECT_EQ(req.headers.get("content-type").value_or(""), "text/xml");
  EXPECT_EQ(std::string(req.body.begin(), req.body.end()), "ok");
  server.join();
}

TEST(ParseLoopbackUrl, Valid) {
  const ParsedUrl u = parse_loopback_url("http://127.0.0.1:8080/a/b.nc");
  EXPECT_EQ(u.port, 8080);
  EXPECT_EQ(u.path, "/a/b.nc");
}

TEST(ParseLoopbackUrl, Rejects) {
  EXPECT_THROW(parse_loopback_url("https://127.0.0.1:1/x"), TransportError);
  EXPECT_THROW(parse_loopback_url("http://example.com/x"), TransportError);
  EXPECT_THROW(parse_loopback_url("http://127.0.0.1:0/x"), TransportError);
  EXPECT_THROW(parse_loopback_url("http://127.0.0.1:99999/x"),
               TransportError);
  EXPECT_THROW(parse_loopback_url("http://127.0.0.1:80"), TransportError);
}

}  // namespace
}  // namespace bxsoap::transport
