// End-to-end overload control on both server models (DESIGN.md §12):
// bounded admission (queue bound, per-connection inflight cap), shed
// requests answered in their pipeline slot with the retryable Overloaded
// fault, kernel-window backpressure parks, and deadline-expired drops
// that never reach a handler.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <optional>
#include <thread>

#include "services/verification.hpp"
#include "soap/engine.hpp"
#include "soap/overload.hpp"
#include "transport/bindings.hpp"
#include "transport/framing.hpp"
#include "transport/server.hpp"
#include "workload/lead.hpp"

namespace bxsoap::transport {
namespace {

using namespace bxsoap::soap;
using std::chrono::milliseconds;

SoapEnvelope data_request(std::size_t n) {
  return services::make_data_request(workload::make_lead_dataset(n));
}

soap::WireMessage to_wire(const SoapEnvelope& env) {
  BxsaEncoding enc;
  soap::WireMessage m;
  m.content_type = std::string(BxsaEncoding::content_type());
  m.payload = enc.serialize(env.document());
  return m;
}

soap::WireMessage encode_request(std::size_t n) {
  return to_wire(data_request(n));
}

soap::WireMessage encode_request_deadline(std::size_t n, milliseconds budget) {
  SoapEnvelope env = data_request(n);
  set_deadline(env, budget);
  return to_wire(env);
}

/// A request whose stamped budget is ALREADY zero — the deterministic
/// expiry case (set_deadline itself floors at 1 ms, so build the block by
/// hand the way a hostile or hopelessly-late client would).
soap::WireMessage encode_request_expired(std::size_t n) {
  SoapEnvelope env = data_request(n);
  auto block = xdm::make_leaf<std::string>(
      xdm::QName(std::string(kOverloadUri), "Deadline", "ctl"), "0");
  block->declare_namespace("ctl", std::string(kOverloadUri));
  env.header().add_child(std::move(block));
  return to_wire(env);
}

SoapEnvelope decode(const soap::WireMessage& m) {
  BxsaEncoding enc;
  return SoapEnvelope(enc.deserialize(m.payload));
}

std::size_t ok_count(const SoapEnvelope& env) {
  const auto outcome = services::parse_verify_response(env);
  EXPECT_TRUE(outcome.ok);
  return outcome.count;
}

/// Gate for handlers: requests entering the handler block until opened,
/// so tests can pin work in flight deterministically.
struct Gate {
  std::atomic<bool> open{false};
  std::atomic<int> entered{0};

  ServerConfig::Handler handler() {
    return [this](SoapEnvelope env) {
      entered.fetch_add(1, std::memory_order_acq_rel);
      while (!open.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(milliseconds(1));
      }
      return services::verification_handler(std::move(env));
    };
  }
};

template <typename Pred>
bool wait_until(Pred pred, milliseconds timeout = milliseconds(5000)) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (!pred()) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(milliseconds(1));
  }
  return true;
}

// ---- event server ---------------------------------------------------------

TEST(EventOverload, FullQueueShedsOtherConnectionsAndParksTheFiller) {
  Gate gate;
  obs::Registry registry;
  ServerConfig cfg;
  cfg.encoding = AnyEncoding::from(BxsaEncoding{});
  cfg.handler = gate.handler();
  cfg.registry = &registry;
  cfg.reactor_threads = 1;
  cfg.worker_threads = 1;
  cfg.max_queue_depth = 1;
  cfg.shed_retry_after = milliseconds(25);
  auto server = SoapServer::create(ConcurrencyModel::kEventLoop,
                                   std::move(cfg));

  // Request 1 pins the single worker; request 2 fills the depth-1 queue,
  // which parks the filler's read tap.
  TcpStream filler = TcpStream::connect(server->port());
  write_frame(filler, encode_request(10));
  ASSERT_TRUE(wait_until([&] { return gate.entered.load() == 1; }));
  write_frame(filler, encode_request(11));
  ASSERT_TRUE(wait_until([&] {
    return registry.gauge("event.reactor.queue.depth").value() == 1;
  }));
  ASSERT_TRUE(wait_until([&] {
    return registry.counter("event.overload.parks").value() >= 1;
  }));

  // A request from ANOTHER connection now meets a full queue: shed with
  // the retryable fault (carrying the configured Retry-After hint), not
  // dropped, not hung.
  TcpStream other = TcpStream::connect(server->port());
  write_frame(other, encode_request(12));
  const SoapEnvelope shed = decode(read_frame(other));
  ASSERT_TRUE(shed.is_fault());
  EXPECT_TRUE(is_overloaded(shed.fault()));
  const auto hint = retry_after_hint(shed.fault());
  ASSERT_TRUE(hint.has_value());
  EXPECT_EQ(hint->count(), 25);
  EXPECT_EQ(registry.counter("event.shed").value(), 1u);

  // Open the gate: the admitted requests drain IN ORDER on the filler.
  gate.open.store(true, std::memory_order_release);
  EXPECT_EQ(ok_count(decode(read_frame(filler))), 10u);
  EXPECT_EQ(ok_count(decode(read_frame(filler))), 11u);

  // The acceptance bound: the worker queue never exceeded its depth.
  EXPECT_LE(registry.waterline("event.queue.waterline").peak(), 1u);
  EXPECT_EQ(registry.counter("event.expired.dropped").value(), 0u);

  // Both connections were unparked once the queue drained: still usable.
  write_frame(filler, encode_request(13));
  EXPECT_EQ(ok_count(decode(read_frame(filler))), 13u);
  write_frame(other, encode_request(14));
  EXPECT_EQ(ok_count(decode(read_frame(other))), 14u);
}

// Satellite of the ordering contract: a pipeline that runs into its
// inflight allowance gets Overloaded faults in the shed requests' OWN
// slots, after the earlier in-order responses — never reordered, never a
// cut connection.
TEST(EventOverload, InflightCapShedsMidPipelineInOrder) {
  Gate gate;
  obs::Registry registry;
  ServerConfig cfg;
  cfg.encoding = AnyEncoding::from(BxsaEncoding{});
  cfg.handler = gate.handler();
  cfg.registry = &registry;
  cfg.reactor_threads = 1;
  cfg.worker_threads = 1;
  cfg.max_inflight_per_conn = 2;
  auto server = SoapServer::create(ConcurrencyModel::kEventLoop,
                                   std::move(cfg));

  TcpStream conn = TcpStream::connect(server->port());
  for (std::size_t i = 0; i < 4; ++i) {
    write_frame(conn, encode_request(20 + i));
  }
  // With the gate closed nothing completes, so requests 3 and 4 are over
  // the allowance of 2 the moment they are pumped. Their shed faults wait
  // in the completion map until the earlier responses release.
  ASSERT_TRUE(wait_until(
      [&] { return registry.counter("event.shed").value() == 2; }));
  gate.open.store(true, std::memory_order_release);

  EXPECT_EQ(ok_count(decode(read_frame(conn))), 20u);
  EXPECT_EQ(ok_count(decode(read_frame(conn))), 21u);
  for (int i = 0; i < 2; ++i) {
    const SoapEnvelope shed = decode(read_frame(conn));
    ASSERT_TRUE(shed.is_fault()) << "slot " << (2 + i);
    EXPECT_TRUE(is_overloaded(shed.fault()));
  }

  // The connection shed on is still a working connection.
  write_frame(conn, encode_request(24));
  EXPECT_EQ(ok_count(decode(read_frame(conn))), 24u);
  EXPECT_EQ(server->exchanges(), 5u);
  EXPECT_EQ(server->faults(), 2u);
}

TEST(EventOverload, DeadlineExpiredWhileQueuedNeverReachesTheHandler) {
  Gate gate;
  obs::Registry registry;
  ServerConfig cfg;
  cfg.encoding = AnyEncoding::from(BxsaEncoding{});
  cfg.handler = gate.handler();
  cfg.registry = &registry;
  cfg.reactor_threads = 1;
  cfg.worker_threads = 1;
  auto server = SoapServer::create(ConcurrencyModel::kEventLoop,
                                   std::move(cfg));

  TcpStream conn = TcpStream::connect(server->port());
  write_frame(conn, encode_request(30));  // no deadline: pins the worker
  ASSERT_TRUE(wait_until([&] { return gate.entered.load() == 1; }));
  // 30 ms of budget, spent entirely in the queue behind the gated worker.
  write_frame(conn, encode_request_deadline(31, milliseconds(30)));
  std::this_thread::sleep_for(milliseconds(60));
  gate.open.store(true, std::memory_order_release);

  EXPECT_EQ(ok_count(decode(read_frame(conn))), 30u);
  const SoapEnvelope dropped = decode(read_frame(conn));
  ASSERT_TRUE(dropped.is_fault());
  EXPECT_EQ(dropped.fault().reason, kDeadlineExpiredReason);
  EXPECT_FALSE(is_overloaded(dropped.fault()));  // the budget was OURS
  // The expired request was dropped after decode, BEFORE the handler.
  EXPECT_EQ(gate.entered.load(), 1);
  EXPECT_EQ(registry.counter("event.expired.dropped").value(), 1u);
}

// ---- thread-per-connection pool -------------------------------------------

TEST(PoolOverload, InflightBoundShedsInOrderAndConnectionsStayUsable) {
  Gate gate;
  obs::Registry registry;
  ServerConfig cfg;
  cfg.encoding = AnyEncoding::from(BxsaEncoding{});
  cfg.handler = gate.handler();
  cfg.registry = &registry;
  cfg.max_queue_depth = 1;  // pool reading: at most one exchange in flight
  cfg.shed_retry_after = milliseconds(30);
  auto server = SoapServer::create(ConcurrencyModel::kThreadPerConnection,
                                   std::move(cfg));

  TcpStream holder = TcpStream::connect(server->port());
  write_frame(holder, encode_request(40));
  ASSERT_TRUE(wait_until([&] { return gate.entered.load() == 1; }));

  // Another connection pipelines two requests against a saturated pool:
  // both shed, answered in order on that connection, which stays up.
  TcpStream other = TcpStream::connect(server->port());
  write_frame(other, encode_request(41));
  write_frame(other, encode_request(42));
  for (int i = 0; i < 2; ++i) {
    const SoapEnvelope shed = decode(read_frame(other));
    ASSERT_TRUE(shed.is_fault()) << "slot " << i;
    EXPECT_TRUE(is_overloaded(shed.fault()));
    EXPECT_EQ(retry_after_hint(shed.fault())->count(), 30);
  }
  EXPECT_EQ(registry.counter("pool.shed").value(), 2u);

  gate.open.store(true, std::memory_order_release);
  EXPECT_EQ(ok_count(decode(read_frame(holder))), 40u);

  // Capacity is back: the shed-on connection serves normally.
  write_frame(other, encode_request(43));
  EXPECT_EQ(ok_count(decode(read_frame(other))), 43u);
  EXPECT_EQ(server->faults(), 2u);
}

// The zero-budget drop must behave identically on both models: decoded,
// counted, answered with DeadlineExpired, handler never entered.
class ExpiredDrop : public ::testing::TestWithParam<ConcurrencyModel> {};

INSTANTIATE_TEST_SUITE_P(
    Models, ExpiredDrop,
    ::testing::Values(ConcurrencyModel::kThreadPerConnection,
                      ConcurrencyModel::kEventLoop),
    [](const auto& info) {
      return info.param == ConcurrencyModel::kThreadPerConnection ? "pool"
                                                                  : "event";
    });

TEST_P(ExpiredDrop, ZeroBudgetRequestIsDroppedBeforeTheHandler) {
  std::atomic<int> handled{0};
  obs::Registry registry;
  ServerConfig cfg;
  cfg.encoding = AnyEncoding::from(BxsaEncoding{});
  cfg.handler = [&handled](SoapEnvelope env) {
    handled.fetch_add(1);
    return services::verification_handler(std::move(env));
  };
  cfg.registry = &registry;
  auto server = SoapServer::create(GetParam(), std::move(cfg));
  const std::string prefix =
      GetParam() == ConcurrencyModel::kThreadPerConnection ? "pool" : "event";

  TcpStream conn = TcpStream::connect(server->port());
  write_frame(conn, encode_request_expired(50));
  const SoapEnvelope dropped = decode(read_frame(conn));
  ASSERT_TRUE(dropped.is_fault());
  EXPECT_EQ(dropped.fault().reason, kDeadlineExpiredReason);
  EXPECT_EQ(handled.load(), 0);
  EXPECT_EQ(registry.counter(prefix + ".expired.dropped").value(), 1u);

  // The connection survives the drop and the deadline context is cleared:
  // a fresh no-deadline request serves normally.
  write_frame(conn, encode_request(51));
  EXPECT_EQ(ok_count(decode(read_frame(conn))), 51u);
  EXPECT_EQ(handled.load(), 1);
}

// Deadline propagation all the way into the handler: remaining_deadline()
// reports the stamped budget (minus queueing) inside, and nothing outside.
class DeadlineContext : public ::testing::TestWithParam<ConcurrencyModel> {};

INSTANTIATE_TEST_SUITE_P(
    Models, DeadlineContext,
    ::testing::Values(ConcurrencyModel::kThreadPerConnection,
                      ConcurrencyModel::kEventLoop),
    [](const auto& info) {
      return info.param == ConcurrencyModel::kThreadPerConnection ? "pool"
                                                                  : "event";
    });

TEST_P(DeadlineContext, HandlerSeesTheRemainingBudget) {
  std::mutex mu;
  std::vector<std::optional<milliseconds>> seen;
  ServerConfig cfg;
  cfg.encoding = AnyEncoding::from(BxsaEncoding{});
  cfg.handler = [&](SoapEnvelope env) {
    {
      std::lock_guard lock(mu);
      seen.push_back(remaining_deadline());
    }
    return services::verification_handler(std::move(env));
  };
  auto server = SoapServer::create(GetParam(), std::move(cfg));

  TcpStream conn = TcpStream::connect(server->port());
  write_frame(conn, encode_request_deadline(60, milliseconds(400)));
  EXPECT_EQ(ok_count(decode(read_frame(conn))), 60u);
  write_frame(conn, encode_request(61));  // no deadline stamped
  EXPECT_EQ(ok_count(decode(read_frame(conn))), 61u);

  std::lock_guard lock(mu);
  ASSERT_EQ(seen.size(), 2u);
  ASSERT_TRUE(seen[0].has_value());
  EXPECT_GT(seen[0]->count(), 0);
  EXPECT_LE(seen[0]->count(), 400);
  EXPECT_FALSE(seen[1].has_value());
}

TEST(OverloadConfig, ValidationRejectsTheMeaninglessCombinations) {
  ServerConfig bad;
  bad.encoding = AnyEncoding::from(BxsaEncoding{});
  bad.handler = services::verification_handler;
  bad.max_inflight_per_conn = 4;  // pool serves serially: depth is already 1
  EXPECT_THROW(SoapServer::create(ConcurrencyModel::kThreadPerConnection,
                                  std::move(bad)),
               TransportError);

  ServerConfig negative;
  negative.encoding = AnyEncoding::from(BxsaEncoding{});
  negative.handler = services::verification_handler;
  negative.shed_retry_after = milliseconds(-1);
  EXPECT_THROW(SoapServer::create(ConcurrencyModel::kEventLoop,
                                  std::move(negative)),
               TransportError);
}

}  // namespace
}  // namespace bxsoap::transport
