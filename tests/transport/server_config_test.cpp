// ServerConfig::validate — the up-front contract of the finalized
// SoapServer::create surface: every rejected config names what is wrong
// and what to do about it, and create() refuses to build a server from one.
#include <gtest/gtest.h>

#include "services/verification.hpp"
#include "soap/any_engine.hpp"
#include "transport/server.hpp"

namespace bxsoap::transport {
namespace {

using namespace bxsoap::soap;

ServerConfig valid_config() {
  ServerConfig cfg;
  cfg.encoding = AnyEncoding::from(BxsaEncoding{});
  cfg.handler = services::verification_handler;
  return cfg;
}

TEST(ServerConfig, ValidConfigPassesBothModels) {
  EXPECT_EQ(valid_config().validate(ConcurrencyModel::kThreadPerConnection),
            "");
  EXPECT_EQ(valid_config().validate(ConcurrencyModel::kEventLoop), "");
}

TEST(ServerConfig, MissingEncodingIsRejected) {
  ServerConfig cfg = valid_config();
  cfg.encoding = nullptr;
  const std::string errors = cfg.validate(ConcurrencyModel::kEventLoop);
  EXPECT_NE(errors.find("encoding"), std::string::npos) << errors;
}

TEST(ServerConfig, MissingHandlersAreRejected) {
  ServerConfig cfg = valid_config();
  cfg.handler = nullptr;
  EXPECT_NE(cfg.validate(ConcurrencyModel::kEventLoop).find("handler"),
            std::string::npos);
  // Either handler alone is enough.
  cfg.stream_handler = [](StreamRequest&, ResponseWriter&) {};
  EXPECT_EQ(cfg.validate(ConcurrencyModel::kEventLoop), "");
}

TEST(ServerConfig, ReactorKnobsRejectedOnThreadPerConnection) {
  ServerConfig cfg = valid_config();
  cfg.reactor_threads = 4;
  const std::string errors =
      cfg.validate(ConcurrencyModel::kThreadPerConnection);
  EXPECT_NE(errors.find("reactor_threads"), std::string::npos) << errors;
  // The same knob is fine on the model it belongs to.
  EXPECT_EQ(cfg.validate(ConcurrencyModel::kEventLoop), "");

  ServerConfig workers = valid_config();
  workers.worker_threads = 4;
  EXPECT_NE(workers.validate(ConcurrencyModel::kThreadPerConnection)
                .find("worker_threads"),
            std::string::npos);

  ServerConfig rp = valid_config();
  rp.reuse_port = true;
  EXPECT_NE(
      rp.validate(ConcurrencyModel::kThreadPerConnection).find("reuse_port"),
      std::string::npos);
  EXPECT_EQ(rp.validate(ConcurrencyModel::kEventLoop), "");
}

TEST(ServerConfig, StreamChunkLargerThanFrameLimitIsRejected) {
  ServerConfig cfg = valid_config();
  cfg.stream_chunk_bytes = cfg.frame_limits.max_chunk_bytes + 1;
  const std::string errors = cfg.validate(ConcurrencyModel::kEventLoop);
  EXPECT_NE(errors.find("stream_chunk_bytes"), std::string::npos) << errors;
  EXPECT_NE(errors.find("max_chunk_bytes"), std::string::npos) << errors;
}

TEST(ServerConfig, ZeroCapacityPoolIsRejectedWithGuidance) {
  ServerConfig cfg = valid_config();
  cfg.buffer_pool.max_buffers_per_class = 0;
  const std::string errors = cfg.validate(ConcurrencyModel::kEventLoop);
  EXPECT_NE(errors.find("max_buffers_per_class"), std::string::npos)
      << errors;
  // The error must point at the right knob for "disable caching".
  EXPECT_NE(errors.find("thread_cache_buffers_per_class"), std::string::npos)
      << errors;
}

TEST(ServerConfig, MultipleErrorsAreAllReported) {
  ServerConfig cfg;  // no encoding, no handler
  cfg.backlog = 0;
  const std::string errors = cfg.validate(ConcurrencyModel::kEventLoop);
  EXPECT_NE(errors.find("encoding"), std::string::npos);
  EXPECT_NE(errors.find("handler"), std::string::npos);
  EXPECT_NE(errors.find("backlog"), std::string::npos);
  EXPECT_NE(errors.find("; "), std::string::npos) << errors;
}

TEST(ServerConfig, CreateThrowsOnInvalidConfig) {
  ServerConfig cfg;  // missing everything mandatory
  try {
    SoapServer::create(ConcurrencyModel::kEventLoop, std::move(cfg));
    FAIL() << "create() accepted an invalid config";
  } catch (const TransportError& e) {
    EXPECT_NE(std::string(e.what()).find("invalid ServerConfig"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("encoding"), std::string::npos);
  }
}

TEST(ServerConfig, EmptyPrefixDefaultsPerModel) {
  obs::Registry registry;
  {
    ServerConfig cfg = valid_config();
    cfg.registry = &registry;
    auto pool = SoapServer::create(ConcurrencyModel::kThreadPerConnection,
                                   std::move(cfg));
    auto event =
        [&] {
          ServerConfig e = valid_config();
          e.registry = &registry;
          e.reactor_threads = 1;
          e.worker_threads = 1;
          return SoapServer::create(ConcurrencyModel::kEventLoop,
                                    std::move(e));
        }();
    // Each model registered under its own canonical namespace, so the two
    // servers' metrics cannot collide.
    EXPECT_EQ(registry.gauge("pool.connections.active").value(), 0);
    EXPECT_EQ(registry.gauge("event.connections.active").value(), 0);
    EXPECT_GE(registry.histogram("event.reactor.0.loop.ns").count(), 0u);
  }
}

TEST(ServerConfig, ExplicitPrefixIsKept) {
  obs::Registry registry;
  ServerConfig cfg = valid_config();
  cfg.registry = &registry;
  cfg.metrics_prefix = "custom";
  auto server =
      SoapServer::create(ConcurrencyModel::kEventLoop, std::move(cfg));
  EXPECT_EQ(registry.counter("custom.connections.accepted").value(), 0u);
}

}  // namespace
}  // namespace bxsoap::transport
