#include "transport/server_pool.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "services/verification.hpp"
#include "soap/engine.hpp"
#include "transport/bindings.hpp"
#include "workload/lead.hpp"

namespace bxsoap::transport {
namespace {

using namespace bxsoap::soap;

std::unique_ptr<SoapServerPool> make_pool() {
  return std::make_unique<SoapServerPool>(
      AnyEncoding::from(BxsaEncoding{}), services::verification_handler);
}

TEST(ServerPool, SingleClientExchange) {
  auto pool = make_pool();
  SoapEngine<BxsaEncoding, TcpClientBinding> client(
      {}, TcpClientBinding(pool->port()));
  const auto dataset = workload::make_lead_dataset(100);
  SoapEnvelope resp = client.call(services::make_data_request(dataset));
  EXPECT_TRUE(services::parse_verify_response(resp).ok);
  EXPECT_EQ(pool->exchanges(), 1u);
}

TEST(ServerPool, ManyConcurrentClients) {
  auto pool = make_pool();
  constexpr int kClients = 8;
  constexpr int kCallsEach = 5;

  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      try {
        SoapEngine<BxsaEncoding, TcpClientBinding> client(
            {}, TcpClientBinding(pool->port()));
        const auto dataset =
            workload::make_lead_dataset(100 + static_cast<std::size_t>(c));
        for (int i = 0; i < kCallsEach; ++i) {
          SoapEnvelope resp =
              client.call(services::make_data_request(dataset));
          const auto outcome = services::parse_verify_response(resp);
          if (!outcome.ok ||
              outcome.count != 100 + static_cast<std::size_t>(c)) {
            ++failures;
          }
        }
      } catch (const std::exception&) {
        ++failures;
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(pool->exchanges(),
            static_cast<std::size_t>(kClients * kCallsEach));
}

TEST(ServerPool, HandlerFaultsPropagate) {
  SoapServerPool pool(AnyEncoding::from(BxsaEncoding{}),
                      [](SoapEnvelope) -> SoapEnvelope {
                        throw SoapFaultError("soap:Client", "nope");
                      });
  SoapEngine<BxsaEncoding, TcpClientBinding> client(
      {}, TcpClientBinding(pool.port()));
  SoapEnvelope resp = client.call(
      SoapEnvelope::wrap(xdm::make_element(xdm::QName("x"))));
  ASSERT_TRUE(resp.is_fault());
  EXPECT_EQ(resp.fault().code, "soap:Client");
}

TEST(ServerPool, XmlEncodingPool) {
  SoapServerPool pool(AnyEncoding::from(XmlEncoding{}),
                      services::verification_handler);
  SoapEngine<XmlEncoding, TcpClientBinding> client(
      {}, TcpClientBinding(pool.port()));
  const auto dataset = workload::make_lead_dataset(10);
  SoapEnvelope resp = client.call(services::make_data_request(dataset));
  EXPECT_TRUE(services::parse_verify_response(resp).ok);
}

TEST(ServerPool, StopWithLiveIdleConnections) {
  auto pool = make_pool();
  // Open a connection, complete one exchange, leave it idle.
  SoapEngine<BxsaEncoding, TcpClientBinding> client(
      {}, TcpClientBinding(pool->port()));
  const auto dataset = workload::make_lead_dataset(10);
  client.call(services::make_data_request(dataset));
  EXPECT_EQ(pool->active_connections(), 1u);
  // stop() must not hang on the worker blocked in read.
  pool->stop();
}

TEST(ServerPool, MalformedBytesBecomeFaultNotDisconnect) {
  auto pool = make_pool();
  TcpStream raw = TcpStream::connect(pool->port());
  soap::WireMessage junk;
  junk.content_type = "application/bxsa";
  junk.payload = {0xDE, 0xAD};
  write_frame(raw, junk);
  soap::WireMessage resp = read_frame(raw);
  BxsaEncoding enc;
  SoapEnvelope env(enc.deserialize(resp.payload));
  ASSERT_TRUE(env.is_fault());
  EXPECT_EQ(env.fault().code, "soap:Server");
}

}  // namespace
}  // namespace bxsoap::transport
