#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <thread>

#include "services/verification.hpp"
#include "soap/engine.hpp"
#include "transport/bindings.hpp"
#include "transport/server.hpp"
#include "workload/lead.hpp"

namespace bxsoap::transport {
namespace {

using namespace bxsoap::soap;

std::unique_ptr<SoapServer> make_pool(obs::Registry* registry = nullptr) {
  ServerConfig cfg;
  cfg.encoding = AnyEncoding::from(BxsaEncoding{});
  cfg.handler = services::verification_handler;
  cfg.registry = registry;
  return SoapServer::create(ConcurrencyModel::kThreadPerConnection,
                            std::move(cfg));
}

TEST(ServerPool, SingleClientExchange) {
  auto pool = make_pool();
  SoapEngine<BxsaEncoding, TcpClientBinding> client(
      {}, TcpClientBinding(pool->port()));
  const auto dataset = workload::make_lead_dataset(100);
  SoapEnvelope resp = client.call(services::make_data_request(dataset));
  EXPECT_TRUE(services::parse_verify_response(resp).ok);
  EXPECT_EQ(pool->exchanges(), 1u);
  EXPECT_EQ(pool->faults(), 0u);
}

TEST(ServerPool, ManyConcurrentClients) {
  auto pool = make_pool();
  constexpr int kClients = 8;
  constexpr int kCallsEach = 5;

  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      try {
        SoapEngine<BxsaEncoding, TcpClientBinding> client(
            {}, TcpClientBinding(pool->port()));
        const auto dataset =
            workload::make_lead_dataset(100 + static_cast<std::size_t>(c));
        for (int i = 0; i < kCallsEach; ++i) {
          SoapEnvelope resp =
              client.call(services::make_data_request(dataset));
          const auto outcome = services::parse_verify_response(resp);
          if (!outcome.ok ||
              outcome.count != 100 + static_cast<std::size_t>(c)) {
            ++failures;
          }
        }
      } catch (const std::exception&) {
        ++failures;
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(pool->exchanges(),
            static_cast<std::size_t>(kClients * kCallsEach));
}

// The observability satellite: N parallel clients, a handler that faults on
// a known subset of requests, and a Registry hooked into the pool. The
// pool's own tallies, the registry's counters and the clients' view of the
// traffic must all agree.
TEST(ServerPool, ConcurrentMetricsAgreeWithClientTallies) {
  constexpr int kClients = 6;
  constexpr int kCallsEach = 8;

  obs::Registry registry;
  ServerConfig cfg;
  cfg.encoding = AnyEncoding::from(BxsaEncoding{});
  // Faults on request #0 of every client's batch (payload count == 7).
  cfg.handler = [](SoapEnvelope req) -> SoapEnvelope {
    SoapEnvelope resp = services::verification_handler(std::move(req));
    if (services::parse_verify_response(resp).count == 7) {
      throw SoapFaultError("soap:Client", "seven refused");
    }
    return resp;
  };
  cfg.registry = &registry;
  auto pool = SoapServer::create(ConcurrencyModel::kThreadPerConnection,
                                 std::move(cfg));

  std::atomic<int> ok_responses{0};
  std::atomic<int> fault_responses{0};
  // Engines live past the join so every connection is still open while the
  // gauges and histograms are checked (a closed connection would also let
  // its worker record one final aborted frame_read).
  using Client = SoapEngine<BxsaEncoding, TcpClientBinding>;
  std::vector<std::unique_ptr<Client>> engines;
  for (int c = 0; c < kClients; ++c) {
    engines.push_back(std::make_unique<Client>(
        BxsaEncoding{}, TcpClientBinding(pool->port())));
  }
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Client& client = *engines[c];
      for (int i = 0; i < kCallsEach; ++i) {
        // One poisoned request (count 7) per client, the rest normal.
        const std::size_t n = (i == 0) ? 7 : 10 + static_cast<std::size_t>(i);
        SoapEnvelope resp = client.call(
            services::make_data_request(workload::make_lead_dataset(n)));
        if (resp.is_fault()) {
          ++fault_responses;
        } else {
          ++ok_responses;
        }
      }
    });
  }
  for (auto& t : clients) t.join();

  const std::size_t total = kClients * kCallsEach;
  EXPECT_EQ(ok_responses.load() + fault_responses.load(),
            static_cast<int>(total));
  EXPECT_EQ(fault_responses.load(), kClients);

  // Pool-native counters.
  EXPECT_EQ(pool->exchanges(), total);
  EXPECT_EQ(pool->faults(), static_cast<std::size_t>(kClients));
  EXPECT_EQ(pool->active_connections(), static_cast<std::size_t>(kClients));

  // Registry view must match the pool and the clients.
  EXPECT_EQ(registry.counter("pool.exchanges").value(), total);
  EXPECT_EQ(registry.counter("pool.faults").value(),
            static_cast<std::uint64_t>(kClients));
  EXPECT_EQ(registry.counter("pool.connections.accepted").value(),
            static_cast<std::uint64_t>(kClients));
  EXPECT_EQ(registry.gauge("pool.connections.active").value(),
            static_cast<std::int64_t>(kClients));

  // Per-stage timings: every server stage saw every exchange. The last
  // frame_write timer records just *after* the reply bytes reach the
  // client, so give the workers a moment to finish the final destructor.
  const std::vector<std::string> stages = {
      "frame_read", "deserialize", "handler", "serialize", "frame_write"};
  const auto stage_count = [&](const std::string& stage) {
    return registry.histogram("pool.stage." + stage + ".ns").count();
  };
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(2);
  while (std::chrono::steady_clock::now() < deadline &&
         std::any_of(stages.begin(), stages.end(), [&](const auto& s) {
           return stage_count(s) < total;
         })) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  for (const auto& stage : stages) {
    EXPECT_EQ(stage_count(stage), total) << stage;
  }
  EXPECT_GT(registry.histogram("pool.stage.handler.ns").sum(), 0u);

  // Socket and codec tallies moved.
  EXPECT_GT(registry.io("pool.io").bytes_in.value(), 0u);
  EXPECT_GT(registry.io("pool.io").bytes_out.value(), 0u);
  EXPECT_GT(registry.io("pool.io").read_calls.value(), 0u);
  const auto& codec = registry.codec("pool.bxsa");
  EXPECT_GT(codec.frames_by_type[1].value(), 0u);  // documents

  // The JSON snapshot carries the same numbers.
  const std::string json = registry.to_json();
  EXPECT_NE(json.find("\"pool.exchanges\":" + std::to_string(total)),
            std::string::npos);
  EXPECT_NE(json.find("pool.stage.handler.ns"), std::string::npos);

  pool->stop();
  EXPECT_EQ(registry.gauge("pool.connections.active").value(), 0);
}

// Satellite: finished connection threads must be reaped while the pool
// runs, not hoarded until destruction.
TEST(ServerPool, ReapsFinishedWorkers) {
  obs::Registry registry;
  auto pool = make_pool(&registry);
  constexpr int kSequentialClients = 16;
  for (int c = 0; c < kSequentialClients; ++c) {
    SoapEngine<BxsaEncoding, TcpClientBinding> client(
        {}, TcpClientBinding(pool->port()));
    client.call(
        services::make_data_request(workload::make_lead_dataset(10)));
    client.binding().close();
  }
  EXPECT_EQ(pool->exchanges(), static_cast<std::size_t>(kSequentialClients));
  // Reaping happens in the accept loop, and a worker becomes reapable only
  // once it has set its done flag — which can lag the next accept under
  // load. Keep poking the pool with fresh connections until the sweep has
  // caught up; each accept reaps everything finished by then. Steady state
  // is the trigger's own worker plus at most one not-yet-flagged laggard.
  bool reaped = false;
  for (int attempt = 0; attempt < 200 && !reaped; ++attempt) {
    {
      SoapEngine<BxsaEncoding, TcpClientBinding> trigger(
          {}, TcpClientBinding(pool->port()));
      trigger.call(
          services::make_data_request(workload::make_lead_dataset(1)));
      trigger.binding().close();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    reaped = registry.gauge("pool.workers.unreaped").value() <= 2;
  }
  EXPECT_TRUE(reaped) << "unreaped stuck at "
                      << registry.gauge("pool.workers.unreaped").value();
  pool->stop();
  EXPECT_EQ(registry.gauge("pool.workers.unreaped").value(), 0);
}

TEST(ServerPool, HandlerFaultsPropagate) {
  ServerConfig cfg;
  cfg.encoding = AnyEncoding::from(BxsaEncoding{});
  cfg.handler = [](SoapEnvelope) -> SoapEnvelope {
    throw SoapFaultError("soap:Client", "nope");
  };
  auto pool = SoapServer::create(ConcurrencyModel::kThreadPerConnection,
                                 std::move(cfg));
  SoapEngine<BxsaEncoding, TcpClientBinding> client(
      {}, TcpClientBinding(pool->port()));
  SoapEnvelope resp = client.call(
      SoapEnvelope::wrap(xdm::make_element(xdm::QName("x"))));
  ASSERT_TRUE(resp.is_fault());
  EXPECT_EQ(resp.fault().code, "soap:Client");
  EXPECT_EQ(pool->faults(), 1u);
}

TEST(ServerPool, XmlEncodingPool) {
  ServerConfig cfg;
  cfg.encoding = AnyEncoding::from(XmlEncoding{});
  cfg.handler = services::verification_handler;
  auto pool = SoapServer::create(ConcurrencyModel::kThreadPerConnection,
                                 std::move(cfg));
  SoapEngine<XmlEncoding, TcpClientBinding> client(
      {}, TcpClientBinding(pool->port()));
  const auto dataset = workload::make_lead_dataset(10);
  SoapEnvelope resp = client.call(services::make_data_request(dataset));
  EXPECT_TRUE(services::parse_verify_response(resp).ok);
}

TEST(ServerPool, StopWithLiveIdleConnections) {
  auto pool = make_pool();
  // Open a connection, complete one exchange, leave it idle.
  SoapEngine<BxsaEncoding, TcpClientBinding> client(
      {}, TcpClientBinding(pool->port()));
  const auto dataset = workload::make_lead_dataset(10);
  client.call(services::make_data_request(dataset));
  EXPECT_EQ(pool->active_connections(), 1u);
  // stop() must not hang on the worker blocked in read.
  pool->stop();
}

TEST(ServerPool, MalformedBytesBecomeFaultNotDisconnect) {
  auto pool = make_pool();
  TcpStream raw = TcpStream::connect(pool->port());
  soap::WireMessage junk;
  junk.content_type = "application/bxsa";
  junk.payload = {0xDE, 0xAD};
  write_frame(raw, junk);
  soap::WireMessage resp = read_frame(raw);
  BxsaEncoding enc;
  SoapEnvelope env(enc.deserialize(resp.payload));
  ASSERT_TRUE(env.is_fault());
  // Undecodable bytes are the client's fault, answered in-band.
  EXPECT_EQ(env.fault().code, "soap:Client");
}

// Hardening: a frame whose declared length exceeds the pool's cap is
// refused before allocation — the connection is dropped (we cannot trust
// another byte of it) and the pool keeps serving everyone else.
TEST(ServerPool, OversizedFrameRefusedAndPoolSurvives) {
  ServerConfig cfg;
  cfg.encoding = AnyEncoding::from(BxsaEncoding{});
  cfg.handler = services::verification_handler;
  cfg.frame_limits.max_message_bytes = 1024;
  auto pool = SoapServer::create(ConcurrencyModel::kThreadPerConnection,
                                 std::move(cfg));

  // Handcraft a header declaring a 1 GiB payload we never send.
  ByteWriter header;
  header.write_bytes(kFrameMagic, sizeof(kFrameMagic));
  header.write_u8(kFrameVersion);
  const std::string_view ct = "application/bxsa";
  vls_write(header, ct.size());
  header.write_string(ct);
  header.write<std::uint64_t>(1u << 30, ByteOrder::kBig);

  TcpStream hostile = TcpStream::connect(pool->port());
  hostile.write_all(header.bytes());
  // The pool rejects the declared length and closes the connection rather
  // than waiting for (or allocating) a gigabyte.
  hostile.set_read_timeout(2000);
  std::uint8_t b;
  EXPECT_THROW(hostile.read_exact(&b, 1), TransportError);

  // A well-behaved client is untouched.
  SoapEngine<BxsaEncoding, TcpClientBinding> client(
      {}, TcpClientBinding(pool->port()));
  SoapEnvelope resp = client.call(
      services::make_data_request(workload::make_lead_dataset(5)));
  EXPECT_TRUE(services::parse_verify_response(resp).ok);
  EXPECT_EQ(pool->exchanges(), 1u);
}

// Hardening: with a worker ceiling the pool stops accepting while at
// capacity (the kernel backlog holds the overflow), so concurrency never
// exceeds the ceiling — yet every queued client is eventually served.
TEST(ServerPool, WorkerCeilingAppliesBackpressure) {
  ServerConfig cfg;
  cfg.encoding = AnyEncoding::from(BxsaEncoding{});
  cfg.handler = [](SoapEnvelope req) {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    return services::verification_handler(std::move(req));
  };
  cfg.max_workers = 2;
  auto pool = SoapServer::create(ConcurrencyModel::kThreadPerConnection,
                                 std::move(cfg));

  constexpr int kClients = 6;
  std::atomic<int> failures{0};
  std::atomic<bool> done{false};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      try {
        SoapEngine<BxsaEncoding, TcpClientBinding> client(
            {}, TcpClientBinding(pool->port()));
        SoapEnvelope resp = client.call(
            services::make_data_request(workload::make_lead_dataset(3)));
        if (!services::parse_verify_response(resp).ok) ++failures;
      } catch (const std::exception&) {
        ++failures;
      }
    });
  }
  // Sample the pool's concurrency while the queue drains.
  std::size_t max_active = 0;
  std::thread sampler([&] {
    while (!done.load()) {
      max_active = std::max(max_active, pool->active_connections());
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  for (auto& t : clients) t.join();
  done.store(true);
  sampler.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(pool->exchanges(), static_cast<std::size_t>(kClients));
  EXPECT_LE(max_active, 2u);
}

// Hardening: stop() drains in-flight exchanges — a client mid-call when
// shutdown begins still gets its full response.
TEST(ServerPool, GracefulStopDrainsInFlightExchange) {
  ServerConfig cfg;
  cfg.encoding = AnyEncoding::from(BxsaEncoding{});
  cfg.handler = [](SoapEnvelope req) {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    return services::verification_handler(std::move(req));
  };
  cfg.drain_timeout = std::chrono::seconds(2);
  auto pool = SoapServer::create(ConcurrencyModel::kThreadPerConnection,
                                 std::move(cfg));

  std::atomic<bool> got_response{false};
  std::thread client_thread([&] {
    SoapEngine<BxsaEncoding, TcpClientBinding> client(
        {}, TcpClientBinding(pool->port()));
    SoapEnvelope resp = client.call(
        services::make_data_request(workload::make_lead_dataset(4)));
    got_response.store(services::parse_verify_response(resp).ok);
  });
  // Let the exchange get into the handler, then shut down around it.
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  pool->stop();
  client_thread.join();
  EXPECT_TRUE(got_response.load());
  EXPECT_EQ(pool->exchanges(), 1u);
}

}  // namespace
}  // namespace bxsoap::transport
