// End-to-end streaming authentication (FORMAT.md §"Auth trailer",
// DESIGN.md §15): signed chunked exchanges on both server models, the
// downgrade matrix (either side unsigned -> plain streams), composition
// with per-chunk compression, key mismatch cutting the stream with a
// retryable fault, the FNV differential algorithm behind its test-only
// bit, and the signed large-stream residency gate.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <functional>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "soap/engine.hpp"
#include "soap/security.hpp"
#include "transport/bindings.hpp"
#include "transport/compress.hpp"
#include "transport/server.hpp"

namespace bxsoap::transport {
namespace {

using namespace bxsoap::soap;

constexpr std::size_t kChunk = 64 * 1024;

void echo_handler(StreamRequest& req, ResponseWriter& resp) {
  while (auto c = req.next_chunk()) {
    resp.write_chunk(std::move(*c));
  }
  resp.finish();
}

ServerConfig make_config(obs::Registry* registry, const std::string& prefix,
                         StreamAuth auth) {
  ServerConfig cfg;
  cfg.encoding = AnyEncoding::from(BxsaEncoding{});
  cfg.handler = [](SoapEnvelope env) { return env; };
  cfg.stream_handler = echo_handler;
  cfg.stream_chunk_bytes = kChunk;
  cfg.registry = registry;
  cfg.metrics_prefix = prefix;
  cfg.stream_auth = std::move(auth);
  return cfg;
}

/// One signed echo exchange; returns the number of payload bytes echoed.
std::size_t run_signed_echo(TcpClientBinding& client, std::size_t chunks) {
  std::vector<std::uint8_t> sent;
  std::vector<std::uint8_t> received;
  client.stream_exchange(
      "application/x-test", kChunk,
      [&](ResponseWriter& tx) {
        for (std::size_t i = 0; i < chunks; ++i) {
          std::vector<std::uint8_t> chunk(kChunk / 2);
          for (std::size_t j = 0; j < chunk.size(); ++j) {
            chunk[j] = static_cast<std::uint8_t>(i * 131 + j * 7);
          }
          sent.insert(sent.end(), chunk.begin(), chunk.end());
          tx.write_data(std::move(chunk));
        }
        tx.finish();
      },
      [&](StreamRequest& rx) {
        while (auto data = rx.next_data()) {
          received.insert(received.end(), data->begin(), data->end());
        }
      });
  EXPECT_EQ(received, sent);
  return received.size();
}

class SignedStream : public ::testing::TestWithParam<ConcurrencyModel> {};

INSTANTIATE_TEST_SUITE_P(
    BothModels, SignedStream,
    ::testing::Values(ConcurrencyModel::kThreadPerConnection,
                      ConcurrencyModel::kEventLoop),
    [](const auto& info) {
      return info.param == ConcurrencyModel::kThreadPerConnection
                 ? "Pool"
                 : "EventLoop";
    });

TEST_P(SignedStream, HmacRoundTripsAndCountsAuthenticatedBytes) {
  obs::Registry registry;
  auto server = SoapServer::create(
      GetParam(),
      make_config(&registry, "srv", make_hmac_stream_auth("sh4red-k3y")));

  TcpClientBinding client(server->port());
  client.enable_stream_auth(make_hmac_stream_auth("sh4red-k3y"));
  const std::size_t bytes = run_signed_echo(client, 12);
  EXPECT_EQ(client.negotiated_auth(), authalgs::kHmacSha256);
  // The server authenticated at least the request AND the response.
  EXPECT_GE(registry.counter("srv.sec.bytes_authenticated").value(),
            2 * bytes);
  EXPECT_EQ(registry.counter("srv.sec.tag_failures").value(), 0u);
  EXPECT_GT(registry.counter("srv.sec.verify.ns").value(), 0u);
}

TEST_P(SignedStream, FnvDifferentialAlgorithmRoundTrips) {
  // The FNV-1a demo digest survives behind its test-only algorithm bit:
  // same framing, same trailer discipline, 8-byte tag — a differential
  // check that the Auth plumbing is algorithm-agnostic.
  auto server = SoapServer::create(
      GetParam(), make_config(nullptr, "srv", make_fnv_stream_auth("fnv-k")));

  TcpClientBinding client(server->port());
  client.enable_stream_auth(make_fnv_stream_auth("fnv-k"));
  run_signed_echo(client, 6);
  EXPECT_EQ(client.negotiated_auth(), authalgs::kFnv1a64);
}

TEST_P(SignedStream, UnsignedServerDowngradesClientToPlainStreams) {
  auto server =
      SoapServer::create(GetParam(), make_config(nullptr, "srv", {}));

  TcpClientBinding client(server->port());
  client.enable_stream_auth(make_hmac_stream_auth("k"));
  run_signed_echo(client, 4);
  EXPECT_EQ(client.negotiated_auth(), 0);  // sticky downgrade: no overlap
}

TEST_P(SignedStream, UnsignedClientIsServedPlainBySigningServer) {
  obs::Registry registry;
  auto server = SoapServer::create(
      GetParam(), make_config(&registry, "srv", make_hmac_stream_auth("k")));

  TcpClientBinding client(server->port());
  client.enable_v3({});  // v3, but no auth offer in the Hello
  run_signed_echo(client, 4);
  EXPECT_EQ(client.negotiated_auth(), 0);
  EXPECT_EQ(registry.counter("srv.sec.bytes_authenticated").value(), 0u);
}

TEST_P(SignedStream, KeyMismatchCutsStreamWithRetryableFault) {
  obs::Registry registry;
  auto server = SoapServer::create(
      GetParam(),
      make_config(&registry, "srv", make_hmac_stream_auth("server-key")));

  TcpClientBinding client(server->port());
  client.enable_stream_auth(make_hmac_stream_auth("client-key"));
  // Same algorithm negotiates, but the keys disagree: the server's verify
  // of the request trailer fails, the connection is cut, and the client
  // sees TransportError — the retryable taxonomy ReliableCaller acts on.
  EXPECT_THROW(run_signed_echo(client, 4), TransportError);
  // Poll: the failure count is committed after the socket is cut.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (registry.counter("srv.sec.tag_failures").value() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(registry.counter("srv.sec.tag_failures").value(), 1u);
}

TEST_P(SignedStream, ComposesWithPerChunkCompression) {
  obs::Registry registry;
  ServerConfig cfg =
      make_config(&registry, "srv", make_hmac_stream_auth("both-k"));
  cfg.compress_transforms = transforms::kAll;
  auto server = SoapServer::create(GetParam(), std::move(cfg));

  TcpClientBinding client(server->port());
  client.enable_stream_auth(make_hmac_stream_auth("both-k"));
  client.enable_compression(transforms::kAll, {});
  // Compressible payload: the MAC covers the PLAINTEXT chunk order, so
  // the echo verifies even though the wire carries CompressedData frames.
  std::vector<std::uint8_t> sent;
  std::vector<std::uint8_t> received;
  client.stream_exchange(
      "application/x-test", kChunk,
      [&](ResponseWriter& tx) {
        for (int i = 0; i < 8; ++i) {
          std::vector<std::uint8_t> chunk(kChunk / 2);
          for (std::size_t j = 0; j < chunk.size(); ++j) {
            chunk[j] = static_cast<std::uint8_t>(j % 17);  // low entropy
          }
          sent.insert(sent.end(), chunk.begin(), chunk.end());
          tx.write_data(std::move(chunk));
        }
        tx.finish();
      },
      [&](StreamRequest& rx) {
        while (auto data = rx.next_data()) {
          received.insert(received.end(), data->begin(), data->end());
        }
      });
  EXPECT_EQ(received, sent);
  EXPECT_EQ(client.negotiated_auth(), authalgs::kHmacSha256);
  EXPECT_GT(registry.counter("srv.compress.chunks").value(), 0u);
  EXPECT_EQ(registry.counter("srv.sec.tag_failures").value(), 0u);
  EXPECT_GE(registry.counter("srv.sec.bytes_authenticated").value(),
            2 * sent.size());
}

TEST_P(SignedStream, EngineWiresPolicyStreamAuthAutomatically) {
  // The MessageSecurity policy is the engine's ONE security hook: handing
  // BodyDigestSignature to the engine arms the binding's chunked path
  // under the same key, with no transport-level calls in user code.
  auto server = SoapServer::create(
      GetParam(),
      make_config(nullptr, "srv",
                  BodyDigestSignature("one-hook").stream_auth()));

  SoapEngine<BxsaEncoding, TcpClientBinding, BodyDigestSignature> engine(
      BxsaEncoding{}, TcpClientBinding(server->port()),
      BodyDigestSignature("one-hook"));
  std::size_t echoed = 0;
  engine.call_streamed(
      [&](bxsa::StreamWriter& w) {
        w.start_document();
        w.start_element(xdm::QName("urn:s", "bulk", "s"),
                        std::array<xdm::NamespaceDecl, 1>{{{"s", "urn:s"}}});
        const std::vector<double> xs(20'000, 2.5);
        w.array(xdm::QName("xs"), std::span<const double>(xs));
        w.end_element();
        w.end_document();
      },
      [&](auto& rx) {
        while (auto data = rx.next_data()) echoed += data->size();
      },
      kChunk);
  EXPECT_GT(echoed, 20'000 * sizeof(double));
  EXPECT_EQ(engine.binding().negotiated_auth(), authalgs::kHmacSha256);
}

TEST_P(SignedStream, SignedAndMaterializedInterleaveOnOneConnection) {
  auto server = SoapServer::create(
      GetParam(), make_config(nullptr, "srv", make_hmac_stream_auth("mix")));

  TcpClientBinding client(server->port());
  client.enable_stream_auth(make_hmac_stream_auth("mix"));
  // Two signed streams back to back on one negotiated connection: the
  // authenticator re-arms per stream, so the second exchange must verify
  // with a fresh MAC, not a continuation of the first.
  run_signed_echo(client, 3);
  run_signed_echo(client, 5);
  EXPECT_EQ(client.negotiated_auth(), authalgs::kHmacSha256);
}

/// Signed twin of the residency tentpole gate: BXSOAP_STREAM_MIB=256
/// streams the full 256 MiB with HMAC-SHA-256 on both directions;
/// verification is overlapped (per surfaced chunk), so peak queue
/// residency must STILL be ≤ 2 chunks — authentication adds zero
/// buffering.
TEST(StreamingResidency, SignedLargeEchoStaysWithinTwoChunks) {
  std::size_t mib = 8;
  if (const char* env = std::getenv("BXSOAP_STREAM_MIB")) {
    mib = static_cast<std::size_t>(std::strtoull(env, nullptr, 10));
    if (mib == 0) mib = 8;
  }
  const std::size_t chunk = 1u << 20;
  const std::size_t total = mib << 20;

  obs::Registry registry;
  ServerConfig cfg =
      make_config(&registry, "big", make_hmac_stream_auth("residency-key"));
  cfg.stream_chunk_bytes = chunk;
  cfg.frame_limits.max_stream_bytes = 2ull << 30;
  auto server =
      SoapServer::create(ConcurrencyModel::kEventLoop, std::move(cfg));

  TcpClientBinding client(server->port());
  client.enable_stream_auth(make_hmac_stream_auth("residency-key"));
  FrameLimits client_limits;
  client_limits.max_stream_bytes = 2ull << 30;
  client.set_frame_limits(client_limits);

  std::uint64_t received = 0;
  client.stream_exchange(
      "application/x-test", chunk,
      [&](ResponseWriter& tx) {
        BufferPool& pool = tx.pool();
        for (std::size_t off = 0; off < total; off += chunk) {
          std::vector<std::uint8_t> data = pool.acquire(chunk);
          data.resize(chunk);
          std::fill(data.begin(), data.end(),
                    static_cast<std::uint8_t>(off >> 20));
          tx.write_data(std::move(data));
        }
        tx.finish();
      },
      [&](StreamRequest& rx) {
        BufferPool& pool = BufferPool::global();
        while (auto data = rx.next_data()) {
          received += data->size();
          pool.release(std::move(*data));
        }
      });

  EXPECT_EQ(received, total);
  EXPECT_EQ(client.negotiated_auth(), authalgs::kHmacSha256);
  const std::uint64_t peak =
      registry.waterline("big.stream.buffered_bytes").peak();
  EXPECT_LE(peak, 2 * chunk);
  EXPECT_LE(peak, 8u << 20);
  // Both directions were authenticated end to end.
  EXPECT_GE(registry.counter("big.sec.bytes_authenticated").value(),
            2 * static_cast<std::uint64_t>(total));
  EXPECT_EQ(registry.counter("big.sec.tag_failures").value(), 0u);
}

}  // namespace
}  // namespace bxsoap::transport
