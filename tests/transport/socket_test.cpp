#include "transport/socket.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace bxsoap::transport {
namespace {

TEST(TcpSocket, ConnectAcceptExchange) {
  TcpListener listener(0);
  ASSERT_GT(listener.port(), 0);

  std::thread server([&] {
    TcpStream conn = listener.accept();
    auto data = conn.read_exact(5);
    EXPECT_EQ(std::string(data.begin(), data.end()), "hello");
    conn.write_all(std::string_view("world!"));
  });

  TcpStream client = TcpStream::connect(listener.port());
  client.write_all(std::string_view("hello"));
  auto reply = client.read_exact(6);
  EXPECT_EQ(std::string(reply.begin(), reply.end()), "world!");
  server.join();
}

TEST(TcpSocket, ReadExactOnClosedPeerThrows) {
  TcpListener listener(0);
  std::thread server([&] {
    TcpStream conn = listener.accept();
    conn.write_all(std::string_view("ab"));
    // closes on scope exit
  });
  TcpStream client = TcpStream::connect(listener.port());
  server.join();
  EXPECT_THROW(client.read_exact(10), TransportError);
}

TEST(TcpSocket, ReadUntilDelimiterWithPushback) {
  TcpListener listener(0);
  std::thread server([&] {
    TcpStream conn = listener.accept();
    conn.write_all(std::string_view("HEADER\r\n\r\nBODYBYTES"));
  });
  TcpStream client = TcpStream::connect(listener.port());
  const std::string head = client.read_until("\r\n\r\n", 1024);
  EXPECT_EQ(head, "HEADER\r\n\r\n");
  auto body = client.read_exact(9);
  EXPECT_EQ(std::string(body.begin(), body.end()), "BODYBYTES");
  server.join();
}

TEST(TcpSocket, ReadUntilRespectsLimit) {
  TcpListener listener(0);
  std::thread server([&] {
    TcpStream conn = listener.accept();
    std::string big(5000, 'x');
    conn.write_all(big);
  });
  TcpStream client = TcpStream::connect(listener.port());
  EXPECT_THROW(client.read_until("\r\n\r\n", 1000), TransportError);
  server.join();
}

TEST(TcpSocket, ConnectToClosedPortThrows) {
  // Bind then immediately close to get a port that is very likely free.
  std::uint16_t dead_port;
  {
    TcpListener l(0);
    dead_port = l.port();
  }
  EXPECT_THROW(TcpStream::connect(dead_port), TransportError);
}

TEST(TcpSocket, ShutdownUnblocksAccept) {
  TcpListener listener(0);
  std::thread blocked([&] {
    EXPECT_THROW(listener.accept(), TransportError);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  listener.shutdown();
  blocked.join();
}

TEST(TcpSocket, ReadTimeoutFires) {
  TcpListener listener(0);
  std::thread server([&] {
    TcpStream conn = listener.accept();
    // Never send anything; hold the connection open until the client is
    // done timing out.
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
  });
  TcpStream client = TcpStream::connect(listener.port());
  client.set_read_timeout(50);
  const auto start = std::chrono::steady_clock::now();
  EXPECT_THROW(client.read_exact(1), TransportError);
  const auto waited = std::chrono::steady_clock::now() - start;
  EXPECT_LT(waited, std::chrono::milliseconds(250))
      << "timeout must fire well before the peer closes";
  server.join();
}

TEST(TcpSocket, LargeTransferIntegrity) {
  TcpListener listener(0);
  std::vector<std::uint8_t> payload(1 << 20);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 2654435761u >> 24);
  }
  std::thread server([&] {
    TcpStream conn = listener.accept();
    conn.write_all(payload);
  });
  TcpStream client = TcpStream::connect(listener.port());
  auto got = client.read_exact(payload.size());
  EXPECT_EQ(got, payload);
  server.join();
}

}  // namespace
}  // namespace bxsoap::transport
