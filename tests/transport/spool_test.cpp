#include "transport/spool.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <unistd.h>

#include "soap/engine.hpp"
#include "xdm/node.hpp"

namespace bxsoap::transport {
namespace {

using namespace bxsoap::soap;

class SpoolFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("bxsoap_spool_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

TEST_F(SpoolFixture, MessagesFlowBothWays) {
  SpoolBinding client(dir_, SpoolBinding::Side::kClient);
  SpoolBinding server(dir_, SpoolBinding::Side::kServer);

  WireMessage m;
  m.content_type = "application/bxsa";
  m.payload = {1, 2, 3};
  client.send_request(m);

  WireMessage got = server.receive_request();
  EXPECT_EQ(got.content_type, "application/bxsa");
  EXPECT_EQ(got.payload, m.payload);

  WireMessage reply;
  reply.content_type = "text/xml";
  reply.payload = {9};
  server.send_response(reply);
  WireMessage back = client.receive_response();
  EXPECT_EQ(back.content_type, "text/xml");
  EXPECT_EQ(back.payload, reply.payload);
}

TEST_F(SpoolFixture, StoreAndForward) {
  // The client can send BEFORE any server exists — SMTP-style asynchrony.
  {
    SpoolBinding client(dir_, SpoolBinding::Side::kClient);
    WireMessage m;
    m.content_type = "x";
    m.payload = {42};
    client.send_request(std::move(m));
  }  // client gone
  SpoolBinding server(dir_, SpoolBinding::Side::kServer);
  EXPECT_EQ(server.receive_request().payload, std::vector<std::uint8_t>{42});
}

TEST_F(SpoolFixture, SequencePreserved) {
  SpoolBinding client(dir_, SpoolBinding::Side::kClient);
  SpoolBinding server(dir_, SpoolBinding::Side::kServer);
  for (std::uint8_t i = 0; i < 5; ++i) {
    WireMessage m;
    m.content_type = "x";
    m.payload = {i};
    client.send_request(std::move(m));
  }
  for (std::uint8_t i = 0; i < 5; ++i) {
    EXPECT_EQ(server.receive_request().payload[0], i);
  }
}

TEST_F(SpoolFixture, WrongSideOperationsThrow) {
  SpoolBinding client(dir_, SpoolBinding::Side::kClient);
  SpoolBinding server(dir_, SpoolBinding::Side::kServer);
  EXPECT_THROW(client.receive_request(), TransportError);
  EXPECT_THROW(client.send_response({}), TransportError);
  EXPECT_THROW(server.send_request({}), TransportError);
  EXPECT_THROW(server.receive_response(), TransportError);
}

TEST_F(SpoolFixture, FullSoapExchangeOverTheSpool) {
  SoapEngine<BxsaEncoding, SpoolBinding> client(
      {}, SpoolBinding(dir_, SpoolBinding::Side::kClient));
  SoapEngine<BxsaEncoding, SpoolBinding> server(
      {}, SpoolBinding(dir_, SpoolBinding::Side::kServer));

  std::thread service([&] {
    server.serve_once([](SoapEnvelope req) {
      auto out = xdm::make_element(xdm::QName("pong"));
      out->add_child(req.body_payload()->clone());
      return SoapEnvelope::wrap(std::move(out));
    });
  });

  SoapEnvelope resp = client.call(
      SoapEnvelope::wrap(xdm::make_element(xdm::QName("ping"))));
  service.join();
  ASSERT_NE(resp.body_payload(), nullptr);
  EXPECT_EQ(resp.body_payload()->name().local, "pong");
}

}  // namespace
}  // namespace bxsoap::transport
