// End-to-end tests of the streaming message path (DESIGN.md §11) through
// the unified SoapServer interface: the same StreamHandler served by both
// concurrency models, echo and typed round trips, the in-band fault
// fallback, and the bounded-memory contract verified via the
// stream.buffered_bytes waterline.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <functional>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "bxsa/decoder.hpp"
#include "bxsa/stream_reader.hpp"
#include "obs/metrics.hpp"
#include "soap/engine.hpp"
#include "transport/bindings.hpp"
#include "transport/server.hpp"
#include "xdm/equal.hpp"

namespace bxsoap::transport {
namespace {

using namespace bxsoap::soap;
using namespace bxsoap::xdm;

constexpr std::size_t kChunk = 64 * 1024;

/// Pass-through echo: forwards every chunk (data and patch alike) without
/// decoding, the relay style the API is designed to make trivial.
void echo_handler(StreamRequest& req, ResponseWriter& resp) {
  while (auto c = req.next_chunk()) {
    resp.write_chunk(std::move(*c));
  }
  resp.finish();
}

ServerConfig make_config(obs::Registry* registry,
                         const std::string& prefix,
                         StreamHandler stream_handler) {
  ServerConfig cfg;
  cfg.encoding = AnyEncoding::from(BxsaEncoding{});
  cfg.handler = [](SoapEnvelope env) { return env; };  // v1 echo
  cfg.stream_handler = std::move(stream_handler);
  cfg.stream_chunk_bytes = kChunk;
  cfg.registry = registry;
  cfg.metrics_prefix = prefix;
  return cfg;
}

/// Stream exchange/fault counters are committed by the server a beat
/// after the last response byte reaches the client; poll, don't race.
void expect_counter(const std::function<std::size_t()>& read,
                    std::size_t want, const char* what) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (read() != want && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(read(), want) << what;
}

class StreamingServer : public ::testing::TestWithParam<ConcurrencyModel> {};

INSTANTIATE_TEST_SUITE_P(BothModels, StreamingServer,
                         ::testing::Values(ConcurrencyModel::kThreadPerConnection,
                                           ConcurrencyModel::kEventLoop),
                         [](const auto& info) {
                           return info.param ==
                                          ConcurrencyModel::kThreadPerConnection
                                      ? "Pool"
                                      : "EventLoop";
                         });

TEST_P(StreamingServer, RawChunkEchoRoundTrips) {
  obs::Registry registry;
  auto server = SoapServer::create(
      GetParam(), make_config(&registry, "srv", echo_handler));

  TcpClientBinding client(server->port());
  std::vector<std::uint8_t> sent;
  std::vector<std::uint8_t> received;
  client.stream_exchange(
      "application/x-test", kChunk,
      [&](ResponseWriter& tx) {
        for (int i = 0; i < 12; ++i) {
          std::vector<std::uint8_t> chunk(kChunk / 2);
          for (std::size_t j = 0; j < chunk.size(); ++j) {
            chunk[j] = static_cast<std::uint8_t>(i * 31 + j);
          }
          sent.insert(sent.end(), chunk.begin(), chunk.end());
          tx.write_data(std::move(chunk));
        }
        tx.finish();
      },
      [&](StreamRequest& rx) {
        while (auto data = rx.next_data()) {
          received.insert(received.end(), data->begin(), data->end());
        }
      });
  EXPECT_EQ(received, sent);
  EXPECT_EQ(server->faults(), 0u);
  expect_counter([&] { return server->exchanges(); }, 1, "exchanges");
  EXPECT_GT(registry.counter("srv.stream.chunks").value(), 0u);
  EXPECT_GT(registry.counter("srv.stream.flushes").value(), 0u);
  // The bounded-memory contract: queue residency never exceeded two
  // chunks' worth of buffers, no matter the message size.
  EXPECT_LE(registry.waterline("srv.stream.buffered_bytes").peak(),
            2 * kChunk);
}

TEST_P(StreamingServer, TypedStreamedCallRoundTrips) {
  // Server: assemble the streamed request (opting into message-sized
  // memory — fine, this test is small), decode it, then stream back a
  // response through the encoding's chunk-mode writer.
  StreamHandler typed = [](StreamRequest& req, ResponseWriter& resp) {
    SharedBuffer wire = req.assemble(resp.pool());
    const DocumentPtr doc = bxsa::decode_document(wire.bytes());
    const auto& root = static_cast<const Element&>(doc->root());
    const auto* arr =
        dynamic_cast<const ArrayElement<double>*>(root.find_child("values"));
    ASSERT_NE(arr, nullptr);
    double sum = 0;
    for (double v : arr->values()) sum += v;

    std::unique_ptr<bxsa::StreamWriter> w = resp.make_stream_writer();
    ASSERT_NE(w, nullptr);  // BXSA is a StreamingEncoding
    w->start_document();
    w->start_element(QName("urn:t", "reply", "t"),
                     std::array<NamespaceDecl, 1>{{{"t", "urn:t"}}});
    w->leaf(QName("sum"), sum);
    w->end_element();
    w->end_document();
    resp.finish_stream(*w);
  };

  auto server =
      SoapServer::create(GetParam(), make_config(nullptr, "srv", typed));

  SoapEngine<BxsaEncoding, TcpClientBinding> engine(
      {}, TcpClientBinding(server->port()));
  std::vector<double> values(10'000);
  std::iota(values.begin(), values.end(), 0.0);
  const double expected = std::accumulate(values.begin(), values.end(), 0.0);

  double got = -1;
  engine.call_streamed(
      [&](bxsa::StreamWriter& w) {
        w.start_document();
        w.start_element(QName("urn:t", "req", "t"),
                        std::array<NamespaceDecl, 1>{{{"t", "urn:t"}}});
        w.array(QName("values"), std::span<const double>(values));
        w.end_element();
        w.end_document();
      },
      [&](auto& rx) {
        SharedBuffer wire = rx.assemble(engine.buffer_pool());
        const DocumentPtr doc = bxsa::decode_document(wire.bytes());
        const auto& root = static_cast<const Element&>(doc->root());
        const auto* leaf =
            dynamic_cast<const LeafElement<double>*>(root.find_child("sum"));
        ASSERT_NE(leaf, nullptr);
        got = leaf->get();
      },
      kChunk);
  EXPECT_EQ(got, expected);
}

TEST_P(StreamingServer, FaultBeforeFirstChunkArrivesInBand) {
  StreamHandler failing = [](StreamRequest& req, ResponseWriter&) {
    (void)req.next_chunk();  // read a little, write nothing
    throw SoapFaultError("soap:Client", "stream rejected");
  };
  auto server =
      SoapServer::create(GetParam(), make_config(nullptr, "srv", failing));

  TcpClientBinding client(server->port());
  std::optional<SoapEnvelope> envelope;
  client.stream_exchange(
      "application/x-test", kChunk,
      [&](ResponseWriter& tx) {
        tx.write_data(std::vector<std::uint8_t>(1024, 0xAB));
        tx.finish();
      },
      [&](StreamRequest& rx) {
        // The v1 fault envelope arrives as a one-chunk stream.
        SharedBuffer wire = rx.assemble(BufferPool::global());
        BxsaEncoding enc;
        envelope.emplace(enc.deserialize(wire.bytes()));
      });
  ASSERT_TRUE(envelope.has_value());
  ASSERT_TRUE(envelope->is_fault());
  EXPECT_EQ(envelope->fault().code, "soap:Client");
  expect_counter([&] { return server->faults(); }, 1, "faults");
}

TEST_P(StreamingServer, MaterializedAndStreamedInterleaveOnOneConnection) {
  auto server = SoapServer::create(
      GetParam(), make_config(nullptr, "srv", echo_handler));

  SoapEngine<BxsaEncoding, TcpClientBinding> engine(
      {}, TcpClientBinding(server->port()));

  // v1 call, then a v2 streamed exchange, then v1 again — one connection,
  // both framings, order preserved.
  auto root = make_element(QName("urn:m", "ping", "m"));
  root->declare_namespace("m", "urn:m");
  root->add_child(make_leaf<std::int32_t>(QName("n"), 7));
  SoapEnvelope request = SoapEnvelope::wrap(std::move(root));
  SoapEnvelope r1 = engine.call(request);
  EXPECT_FALSE(r1.is_fault());

  std::size_t echoed = 0;
  engine.call_streamed(
      [&](bxsa::StreamWriter& w) {
        w.start_document();
        w.start_element(QName("urn:m", "bulk", "m"),
                        std::array<NamespaceDecl, 1>{{{"m", "urn:m"}}});
        const std::vector<double> xs(20'000, 1.5);
        w.array(QName("xs"), std::span<const double>(xs));
        w.end_element();
        w.end_document();
      },
      [&](auto& rx) {
        while (auto data = rx.next_data()) echoed += data->size();
      },
      kChunk);
  EXPECT_GT(echoed, 20'000 * sizeof(double));

  SoapEnvelope r2 = engine.call(request);
  EXPECT_FALSE(r2.is_fault());
  expect_counter([&] { return server->exchanges(); }, 3, "exchanges");
}

TEST_P(StreamingServer, ChunkedFrameWithoutStreamHandlerCutsConnection) {
  ServerConfig cfg = make_config(nullptr, "srv", StreamHandler{});
  auto server = SoapServer::create(GetParam(), std::move(cfg));

  TcpClientBinding client(server->port());
  EXPECT_THROW(
      client.stream_exchange(
          "application/x-test", kChunk,
          [&](ResponseWriter& tx) {
            tx.write_data(std::vector<std::uint8_t>(64, 1));
            tx.finish();
          },
          [&](StreamRequest& rx) { (void)rx.next_chunk(); }),
      TransportError);
}

/// The tentpole's acceptance gate, scaled by env so the default run stays
/// fast and sanitizer-friendly: BXSOAP_STREAM_MIB=256 streams the full
/// 256 MiB; default 8 MiB. Peak queue residency must stay ≤ 2 chunks
/// (and therefore ≤ 8 MiB) regardless.
TEST(StreamingResidency, LargeEchoStaysWithinTwoChunks) {
  std::size_t mib = 8;
  if (const char* env = std::getenv("BXSOAP_STREAM_MIB")) {
    mib = static_cast<std::size_t>(std::strtoull(env, nullptr, 10));
    if (mib == 0) mib = 8;
  }
  const std::size_t chunk = 1u << 20;  // the default stream chunk size
  const std::size_t total = mib << 20;

  obs::Registry registry;
  ServerConfig cfg = make_config(&registry, "big", echo_handler);
  cfg.stream_chunk_bytes = chunk;
  cfg.frame_limits.max_stream_bytes = 2ull << 30;
  auto server = SoapServer::create(ConcurrencyModel::kEventLoop,
                                   std::move(cfg));

  TcpClientBinding client(server->port());
  FrameLimits client_limits;
  client_limits.max_stream_bytes = 2ull << 30;
  client.set_frame_limits(client_limits);

  std::uint64_t received = 0;
  client.stream_exchange(
      "application/x-test", chunk,
      [&](ResponseWriter& tx) {
        BufferPool& pool = tx.pool();
        for (std::size_t off = 0; off < total; off += chunk) {
          std::vector<std::uint8_t> data = pool.acquire(chunk);
          data.resize(chunk);
          std::fill(data.begin(), data.end(),
                    static_cast<std::uint8_t>(off >> 20));
          tx.write_data(std::move(data));
        }
        tx.finish();
      },
      [&](StreamRequest& rx) {
        BufferPool& pool = BufferPool::global();
        while (auto data = rx.next_data()) {
          received += data->size();
          pool.release(std::move(*data));
        }
      });

  EXPECT_EQ(received, total);
  const std::uint64_t peak =
      registry.waterline("big.stream.buffered_bytes").peak();
  EXPECT_LE(peak, 2 * chunk);
  EXPECT_LE(peak, 8u << 20);  // the ISSUE's headline bound
  EXPECT_GE(registry.counter("big.stream.chunks").value(), mib);
}

}  // namespace
}  // namespace bxsoap::transport
