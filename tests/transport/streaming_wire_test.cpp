// Wire-level properties of the BXTP v2 chunked path (docs/FORMAT.md):
//
//   * Differential: for every packed atom type and both byte orders, the
//     chunk-mode StreamWriter's output — data chunks reassembled, patch
//     records applied — is byte-identical to the unchunked writer's.
//   * Transcode: a chunk-reassembled document survives the BXSA -> XML ->
//     BXSA round trip, so the streaming path feeds the interop story.
//   * Truncation: a transfer cut at ANY chunk boundary is detected as an
//     error by the reader, never silently accepted as a shorter message.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "bxsa/decoder.hpp"
#include "bxsa/stream_writer.hpp"
#include "bxsa/transcode.hpp"
#include "transport/fault.hpp"
#include "transport/framing.hpp"
#include "transport/stream.hpp"
#include "xdm/equal.hpp"

namespace bxsoap::transport {
namespace {

using namespace bxsoap::xdm;

/// Deterministic test values for any packed atom type.
template <typename T>
std::vector<T> make_values(std::size_t n) {
  std::vector<T> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    if constexpr (std::is_floating_point_v<T>) {
      out[i] = static_cast<T>(i) * T(0.5) - T(100);
    } else {
      out[i] = static_cast<T>(i * 7 + 1);
    }
  }
  return out;
}

/// Emit the same document into `w` regardless of mode: a component root
/// holding a leaf, a packed array of T, and a trailing leaf (so the root's
/// backpatched Size/count fields span the array).
template <typename T>
void produce(bxsa::StreamWriter& w, const std::vector<T>& values) {
  w.start_document();
  const NamespaceDecl ns[] = {{"s", "urn:stream"}};
  w.start_element(QName("urn:stream", "data", "s"), ns);
  w.leaf(QName("before"), std::int32_t{41});
  w.array(QName("payload"), std::span<const T>(values));
  w.leaf(QName("after"), std::int32_t{43});
  w.end_element();
  w.end_document();
}

/// Chunk-mode production with a deliberately tiny chunk size, so the
/// document spans many chunks and the root's Size fields are flushed long
/// before they are patched. Returns the reassembled, patched payload.
template <typename T>
std::vector<std::uint8_t> produce_chunked(ByteOrder order,
                                          const std::vector<T>& values,
                                          std::size_t chunk_bytes,
                                          std::size_t* chunks_out = nullptr) {
  BufferPool pool;
  std::vector<std::uint8_t> reassembled;
  std::size_t chunks = 0;
  bxsa::StreamWriter w(order, chunk_bytes, pool,
                       [&](std::vector<std::uint8_t> chunk) {
                         reassembled.insert(reassembled.end(), chunk.begin(),
                                            chunk.end());
                         ++chunks;
                         pool.release(std::move(chunk));
                       });
  produce(w, values);
  const std::vector<bxsa::PatchRecord> patches = w.finish();
  if (chunks > 1) {
    // Size fields flushed before they could be patched in place must
    // have produced fix-up records. (A single-chunk run patches in the
    // buffer and legitimately needs none.)
    EXPECT_FALSE(patches.empty());
  }
  apply_patches(reassembled, patches);
  if (chunks_out != nullptr) *chunks_out = chunks;
  return reassembled;
}

template <typename T>
void check_differential(ByteOrder order) {
  const std::vector<T> values = make_values<T>(301);

  bxsa::StreamWriter reference(order);
  produce(reference, values);
  const std::vector<std::uint8_t> expected = reference.take();

  std::size_t chunks = 0;
  const std::vector<std::uint8_t> actual =
      produce_chunked(order, values, 64, &chunks);

  EXPECT_GT(chunks, 4u);  // the tiny chunk size actually forced chunking
  ASSERT_EQ(actual, expected);

  // And the reassembled bytes decode: patched Size fields are coherent.
  const DocumentPtr doc = bxsa::decode_document(actual);
  const auto& root = static_cast<const Element&>(doc->root());
  const auto* arr =
      dynamic_cast<const ArrayElement<T>*>(root.find_child("payload"));
  ASSERT_NE(arr, nullptr);
  EXPECT_EQ(arr->values(), values);
}

TEST(ChunkedDifferential, AllPackedTypesLittleEndian) {
  check_differential<std::int8_t>(ByteOrder::kLittle);
  check_differential<std::uint8_t>(ByteOrder::kLittle);
  check_differential<std::int16_t>(ByteOrder::kLittle);
  check_differential<std::uint16_t>(ByteOrder::kLittle);
  check_differential<std::int32_t>(ByteOrder::kLittle);
  check_differential<std::uint32_t>(ByteOrder::kLittle);
  check_differential<std::int64_t>(ByteOrder::kLittle);
  check_differential<std::uint64_t>(ByteOrder::kLittle);
  check_differential<float>(ByteOrder::kLittle);
  check_differential<double>(ByteOrder::kLittle);
}

TEST(ChunkedDifferential, AllPackedTypesBigEndian) {
  check_differential<std::int8_t>(ByteOrder::kBig);
  check_differential<std::uint8_t>(ByteOrder::kBig);
  check_differential<std::int16_t>(ByteOrder::kBig);
  check_differential<std::uint16_t>(ByteOrder::kBig);
  check_differential<std::int32_t>(ByteOrder::kBig);
  check_differential<std::uint32_t>(ByteOrder::kBig);
  check_differential<std::int64_t>(ByteOrder::kBig);
  check_differential<std::uint64_t>(ByteOrder::kBig);
  check_differential<float>(ByteOrder::kBig);
  check_differential<double>(ByteOrder::kBig);
}

TEST(ChunkedDifferential, ChunkSizeDoesNotChangeBytes) {
  const std::vector<double> values = make_values<double>(500);
  const std::vector<std::uint8_t> a =
      produce_chunked(ByteOrder::kLittle, values, 32);
  const std::vector<std::uint8_t> b =
      produce_chunked(ByteOrder::kLittle, values, 777);
  const std::vector<std::uint8_t> c =
      produce_chunked(ByteOrder::kLittle, values, 1u << 20);
  EXPECT_EQ(a, b);
  EXPECT_EQ(b, c);
}

TEST(ChunkedTranscode, ReassembledDocumentSurvivesXmlRoundTrip) {
  const std::vector<double> values = make_values<double>(128);
  const std::vector<std::uint8_t> bxsa1 =
      produce_chunked(ByteOrder::kLittle, values, 100);

  // BXSA -> XML -> BXSA: the chunk-reassembled bytes are a first-class
  // document to the transcoder, indistinguishable from tree output.
  const std::string xml = bxsa::bxsa_to_xml(bxsa1);
  const std::vector<std::uint8_t> bxsa2 = bxsa::xml_to_bxsa(xml);

  const DocumentPtr d1 = bxsa::decode_document(bxsa1);
  const DocumentPtr d2 = bxsa::decode_document(bxsa2);
  EXPECT_TRUE(deep_equal(d1->root(), d2->root()));
}

/// Serialize one whole chunked transfer, recording the wire offset after
/// every chunk frame (and after the v2 header).
struct RecordedTransfer {
  std::vector<std::uint8_t> wire;
  std::vector<std::size_t> boundaries;
};

RecordedTransfer record_transfer() {
  MemoryStream out;
  RecordedTransfer t;
  BufferPool pool;
  ChunkedFrameWriter<MemoryStream> writer(out, "application/bxsa");
  std::vector<bxsa::PatchRecord> patches;
  {
    bxsa::StreamWriter w(ByteOrder::kLittle, 128, pool,
                         [&](std::vector<std::uint8_t> chunk) {
                           writer.write_data(chunk);
                           t.boundaries.push_back(out.pending());
                           pool.release(std::move(chunk));
                         });
    produce(w, make_values<double>(200));
    patches = w.finish();
  }
  writer.write_patches(patches);
  t.boundaries.push_back(out.pending());
  writer.finish();
  t.boundaries.push_back(out.pending());
  t.wire = out.read_exact(out.pending());
  return t;
}

TEST(ChunkedTruncation, EveryChunkBoundaryIsDetected) {
  const RecordedTransfer t = record_transfer();
  ASSERT_GT(t.boundaries.size(), 4u);

  for (std::size_t i = 0; i + 1 < t.boundaries.size(); ++i) {
    const std::size_t cut = t.boundaries[i];
    MemoryStream in;
    in.write_all(std::span<const std::uint8_t>(t.wire.data(), cut));

    FrameStart start = read_frame_start(in);
    ASSERT_TRUE(start.chunked());
    ChunkedFrameReader<MemoryStream> reader(in);
    // Reading past the cut must throw (closed mid-message), never report
    // a complete stream: done() only flips on a VERIFIED end chunk.
    EXPECT_THROW(
        {
          while (!reader.done()) {
            (void)reader.next();
          }
        },
        TransportError)
        << "cut after chunk " << i << " (offset " << cut << ")";
  }

  // Control: the full wire parses to done() with the total verified.
  MemoryStream in;
  in.write_all(std::span<const std::uint8_t>(t.wire.data(), t.wire.size()));
  FrameStart start = read_frame_start(in);
  ASSERT_TRUE(start.chunked());
  ChunkedFrameReader<MemoryStream> reader(in);
  while (!reader.done()) (void)reader.next();
}

TEST(ChunkedTruncation, MidChunkCutIsDetected) {
  const RecordedTransfer t = record_transfer();
  // Cut INSIDE the second chunk's body, not at a frame boundary.
  const std::size_t cut = t.boundaries[0] + (t.boundaries[1] - t.boundaries[0]) / 2;
  MemoryStream in;
  in.write_all(std::span<const std::uint8_t>(t.wire.data(), cut));
  FrameStart start = read_frame_start(in);
  ChunkedFrameReader<MemoryStream> reader(in);
  EXPECT_THROW(
      {
        while (!reader.done()) (void)reader.next();
      },
      TransportError);
}

}  // namespace
}  // namespace bxsoap::transport
