#include "transport/striped.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "common/prng.hpp"
#include "services/verification.hpp"
#include "soap/engine.hpp"
#include "workload/lead.hpp"

namespace bxsoap::transport {
namespace {

using namespace bxsoap::soap;

soap::WireMessage random_message(SplitMix64& rng, std::size_t size) {
  soap::WireMessage m;
  m.content_type = "application/bxsa";
  m.payload.resize(size);
  for (auto& b : m.payload) b = static_cast<std::uint8_t>(rng.next());
  return m;
}

void run_exchange(int streams, std::size_t payload_size) {
  StripedServerBinding server;
  const std::uint16_t port = server.port();
  SplitMix64 rng(payload_size + static_cast<std::size_t>(streams));
  const soap::WireMessage request = random_message(rng, payload_size);
  const soap::WireMessage response = random_message(rng, payload_size / 2);

  std::thread service([&] {
    soap::WireMessage got = server.receive_request();
    EXPECT_EQ(got.payload, request.payload);
    EXPECT_EQ(got.content_type, request.content_type);
    server.send_response(response);
  });

  StripedClientBinding client(port, streams);
  client.send_request(request);
  soap::WireMessage got = client.receive_response();
  service.join();
  EXPECT_EQ(got.payload, response.payload);
}

TEST(StripedBinding, SingleStream) { run_exchange(1, 100000); }
TEST(StripedBinding, FourStreams) { run_exchange(4, 2000000); }
TEST(StripedBinding, SixteenStreams) { run_exchange(16, 3000000); }

TEST(StripedBinding, TinyAndEmptyPayloads) {
  run_exchange(4, 0);
  run_exchange(4, 1);
  run_exchange(4, kStripeBlockSize);      // exactly one block
  run_exchange(4, kStripeBlockSize + 1);  // one block + 1 byte
}

TEST(StripedBinding, MultipleExchangesOnOneSession) {
  StripedServerBinding server;
  const std::uint16_t port = server.port();
  std::thread service([&] {
    for (int i = 0; i < 3; ++i) {
      soap::WireMessage got = server.receive_request();
      server.send_response(std::move(got));  // echo
    }
  });

  StripedClientBinding client(port, 4);
  SplitMix64 rng(1);
  for (int i = 0; i < 3; ++i) {
    const auto m = random_message(rng, 500000 + i);
    client.send_request(m);
    EXPECT_EQ(client.receive_response().payload, m.payload);
  }
  service.join();
}

TEST(StripedBinding, WorksAsSoapEnginePolicy) {
  // The paper's conclusion, end to end: SOAP over BXSA over 8 TCP streams.
  StripedServerBinding server_binding;
  const std::uint16_t port = server_binding.port();
  SoapEngine<BxsaEncoding, StripedServerBinding> server(
      {}, std::move(server_binding));
  std::thread service([&] {
    server.serve_once(services::verification_handler);
  });

  SoapEngine<BxsaEncoding, StripedClientBinding> client(
      {}, StripedClientBinding(port, 8));
  const auto dataset = workload::make_lead_dataset(200000);  // 2.4 MB
  SoapEnvelope resp = client.call(services::make_data_request(dataset));
  service.join();
  const auto outcome = services::parse_verify_response(resp);
  EXPECT_TRUE(outcome.ok);
  EXPECT_EQ(outcome.count, 200000u);
}

TEST(StripedBinding, InvalidStreamCountRejected) {
  EXPECT_THROW(StripedClientBinding(1, 0), TransportError);
  EXPECT_THROW(StripedClientBinding(1, 65), TransportError);
}

TEST(StripedBinding, WrongRoleOperationsThrow) {
  StripedServerBinding server;
  StripedClientBinding client(server.port(), 2);
  EXPECT_THROW(client.receive_request(), TransportError);
  EXPECT_THROW(client.send_response({}), TransportError);
  EXPECT_THROW(server.send_request({}), TransportError);
  EXPECT_THROW(server.receive_response(), TransportError);
}

}  // namespace
}  // namespace bxsoap::transport
