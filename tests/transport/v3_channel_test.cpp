// BXTP v3 (FORMAT.md §"BXTP v3"): Hello/Accept negotiation, transparent
// downgrade, per-channel symbol dictionaries, and the idempotent-response
// cache — against BOTH server concurrency models, because negotiation and
// dictionary ordering take different paths through each (serial worker vs
// reactor/worker split with in-order release).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "bxsa/dict.hpp"
#include "services/verification.hpp"
#include "soap/channel_pool.hpp"
#include "soap/engine.hpp"
#include "transport/bindings.hpp"
#include "transport/respcache.hpp"
#include "transport/server.hpp"
#include "workload/lead.hpp"

namespace bxsoap::transport {
namespace {

using namespace bxsoap::soap;

std::vector<std::uint8_t> bytes_of(std::string_view s) {
  return {s.begin(), s.end()};
}

// ---- ResponseCache unit tests ----------------------------------------------

ResponseCache::Config one_shard(std::size_t entries, std::size_t bytes) {
  // One shard makes the LRU bounds exact instead of per-shard splits.
  return ResponseCache::Config{entries, bytes, /*shards=*/1};
}

TEST(RespCache, MissThenHitReturnsTheInsertedBytes) {
  ResponseCache cache(one_shard(8, 1 << 20));
  const auto req = bytes_of("request-bytes");
  EXPECT_EQ(cache.lookup("ct", req), nullptr);
  cache.insert("ct", req,
               std::make_shared<const std::vector<std::uint8_t>>(
                   bytes_of("response-bytes")));
  const ResponseCache::Payload hit = cache.lookup("ct", req);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, bytes_of("response-bytes"));
  EXPECT_EQ(cache.entries(), 1u);
}

TEST(RespCache, FirstInsertionWins) {
  ResponseCache cache(one_shard(8, 1 << 20));
  const auto req = bytes_of("req");
  cache.insert("ct", req,
               std::make_shared<const std::vector<std::uint8_t>>(
                   bytes_of("first")));
  cache.insert("ct", req,
               std::make_shared<const std::vector<std::uint8_t>>(
                   bytes_of("second")));
  const ResponseCache::Payload hit = cache.lookup("ct", req);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, bytes_of("first"));
  EXPECT_EQ(cache.entries(), 1u);
}

TEST(RespCache, EvictsLeastRecentlyUsedAtTheEntryBound) {
  ResponseCache cache(one_shard(2, 1 << 20));
  const auto mk = [](std::string_view s) {
    return std::make_shared<const std::vector<std::uint8_t>>(bytes_of(s));
  };
  cache.insert("ct", bytes_of("a"), mk("ra"));
  cache.insert("ct", bytes_of("b"), mk("rb"));
  // Touch "a" so "b" is the LRU victim when "c" lands.
  ASSERT_NE(cache.lookup("ct", bytes_of("a")), nullptr);
  cache.insert("ct", bytes_of("c"), mk("rc"));
  EXPECT_EQ(cache.entries(), 2u);
  EXPECT_NE(cache.lookup("ct", bytes_of("a")), nullptr);
  EXPECT_EQ(cache.lookup("ct", bytes_of("b")), nullptr);
  EXPECT_NE(cache.lookup("ct", bytes_of("c")), nullptr);
}

TEST(RespCache, ByteBoundEvictsAndOversizedEntriesAreNotAdmitted) {
  ResponseCache cache(one_shard(64, 32));
  const auto mk = [](std::size_t n) {
    return std::make_shared<const std::vector<std::uint8_t>>(n,
                                                             std::uint8_t{7});
  };
  cache.insert("ct", bytes_of("a"), mk(20));  // cost ≈ 2+1+20
  cache.insert("ct", bytes_of("b"), mk(20));  // pushes past 32: "a" evicted
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(cache.lookup("ct", bytes_of("a")), nullptr);
  EXPECT_NE(cache.lookup("ct", bytes_of("b")), nullptr);
  // An entry that alone exceeds the shard budget is simply refused.
  cache.insert("ct", bytes_of("big"), mk(100));
  EXPECT_EQ(cache.lookup("ct", bytes_of("big")), nullptr);
  EXPECT_LE(cache.resident_bytes(), 32u);
}

TEST(RespCache, ContentTypeIsPartOfTheKey) {
  ResponseCache cache(one_shard(8, 1 << 20));
  const auto req = bytes_of("same-request");
  cache.insert("ct-a", req,
               std::make_shared<const std::vector<std::uint8_t>>(
                   bytes_of("resp-a")));
  EXPECT_EQ(cache.lookup("ct-b", req), nullptr);
  const ResponseCache::Payload hit = cache.lookup("ct-a", req);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, bytes_of("resp-a"));
}

// ---- negotiation / downgrade across both server models ----------------------

struct V3ServerTest : ::testing::TestWithParam<ConcurrencyModel> {
  static std::unique_ptr<SoapServer> make_server(
      ConcurrencyModel model, ServerConfig cfg = {},
      ServerConfig::Handler handler = services::verification_handler) {
    cfg.encoding = AnyEncoding::from(BxsaEncoding{});
    cfg.handler = std::move(handler);
    if (model == ConcurrencyModel::kEventLoop) {
      cfg.reactor_threads = 2;
      cfg.worker_threads = 2;
    }
    return SoapServer::create(model, std::move(cfg));
  }

  static std::vector<std::uint8_t> encode_request(std::size_t count) {
    const SoapEnvelope env =
        services::make_data_request(workload::make_lead_dataset(count));
    return BxsaEncoding{}.serialize(env.document());
  }

  /// One raw exchange on `binding`: send `payload`, return the response
  /// payload bytes (post-dictionary, i.e. canonical).
  static std::vector<std::uint8_t> exchange(TcpClientBinding& binding,
                                            std::vector<std::uint8_t> payload) {
    soap::WireMessage m;
    m.content_type = std::string(BxsaEncoding::content_type());
    m.payload = std::move(payload);
    binding.send_request(std::move(m));
    return binding.receive_response().payload;
  }
};

using V3Negotiation = V3ServerTest;

TEST_P(V3Negotiation, NegotiatesDictionariesAndServesManyExchanges) {
  obs::Registry registry;
  ServerConfig cfg;
  cfg.registry = &registry;
  cfg.metrics_prefix = "srv";
  auto server = make_server(GetParam(), std::move(cfg));

  TcpClientBinding binding(server->port());
  binding.enable_v3();
  for (std::size_t i = 0; i < 10; ++i) {
    const auto resp = exchange(binding, encode_request(10 + i));
    const SoapEnvelope env(BxsaEncoding{}.deserialize(resp));
    const auto outcome = services::parse_verify_response(env);
    EXPECT_TRUE(outcome.ok);
    EXPECT_EQ(outcome.count, 10 + i);
  }
  EXPECT_TRUE(binding.v3_active());
  EXPECT_EQ(binding.negotiated_dict(), bxsa::DictLimits{});
  // Both directions admitted symbols into the server's mirror/table.
  EXPECT_GT(registry.counter("srv.dict.entries").value(), 0u);
  EXPECT_GT(registry.counter("srv.dict.bytes_saved").value(), 0u);
  EXPECT_EQ(server->exchanges(), 10u);
}

TEST_P(V3Negotiation, DowngradeAndPlainPathsAreByteIdentical) {
  ServerConfig legacy_cfg;
  legacy_cfg.accept_v3 = false;  // serves exactly as a pre-v3 build
  auto legacy = make_server(GetParam(), std::move(legacy_cfg));
  auto v3srv = make_server(GetParam());

  const auto request = encode_request(17);

  // Baseline: plain client against the v2-only server.
  TcpClientBinding plain_legacy(legacy->port());
  const auto p_legacy = exchange(plain_legacy, request);

  // A probing v3 client against the same server: the Hello gets the
  // connection cut, the binding downgrades permanently, and the exchange
  // that follows is byte-identical to the baseline.
  TcpClientBinding probe(legacy->port());
  probe.enable_v3();
  const auto v_legacy = exchange(probe, request);
  EXPECT_FALSE(probe.v3_active());
  EXPECT_EQ(v_legacy, p_legacy);
  // Downgrade is sticky: a reconnect does not probe again.
  probe.reset();
  EXPECT_EQ(exchange(probe, request), p_legacy);
  EXPECT_FALSE(probe.v3_active());

  // Reverse direction: an old (plain) client against a v3-enabled server
  // is served byte-identically to the v2-only server.
  TcpClientBinding plain_v3(v3srv->port());
  const auto p_v3 = exchange(plain_v3, request);
  EXPECT_EQ(p_v3, p_legacy);

  // And a negotiated dictionary channel still yields the same canonical
  // response bytes after decode.
  TcpClientBinding dict(v3srv->port());
  dict.enable_v3();
  EXPECT_EQ(exchange(dict, request), p_legacy);
  EXPECT_EQ(exchange(dict, request), p_legacy);  // steady state too
  EXPECT_TRUE(dict.v3_active());
}

TEST_P(V3Negotiation, ZeroOfferKeepsV3FramingWithoutDictionaries) {
  auto server = make_server(GetParam());
  TcpClientBinding binding(server->port());
  binding.enable_v3(bxsa::DictLimits{0, 0});
  const auto resp = exchange(binding, encode_request(5));
  EXPECT_TRUE(binding.v3_active());
  EXPECT_EQ(binding.negotiated_dict().max_entries, 0u);
  const SoapEnvelope env(BxsaEncoding{}.deserialize(resp));
  EXPECT_TRUE(services::parse_verify_response(env).ok);
}

TEST_P(V3Negotiation, NonBxsaEncodingNegotiatesNoDictionary) {
  ServerConfig cfg;
  cfg.encoding = AnyEncoding::from(XmlEncoding{});
  cfg.handler = services::verification_handler;
  if (GetParam() == ConcurrencyModel::kEventLoop) {
    cfg.reactor_threads = 2;
    cfg.worker_threads = 2;
  }
  auto server = SoapServer::create(GetParam(), std::move(cfg));

  SoapEngine<XmlEncoding, TcpClientBinding> client(
      {}, TcpClientBinding(server->port()));
  client.binding().enable_v3();  // offers a dictionary the server must veto
  const SoapEnvelope resp =
      client.call(services::make_data_request(workload::make_lead_dataset(6)));
  EXPECT_TRUE(services::parse_verify_response(resp).ok);
  EXPECT_TRUE(client.binding().v3_active());
  EXPECT_EQ(client.binding().negotiated_dict().max_entries, 0u);
}

INSTANTIATE_TEST_SUITE_P(Models, V3Negotiation,
                         ::testing::Values(
                             ConcurrencyModel::kThreadPerConnection,
                             ConcurrencyModel::kEventLoop),
                         [](const auto& info) {
                           return info.param ==
                                          ConcurrencyModel::kThreadPerConnection
                                      ? "pool"
                                      : "event";
                         });

// ---- dictionary channels under load -----------------------------------------

using DictChannel = V3ServerTest;

TEST_P(DictChannel, SteadyStateShrinksSmallMessageWireBytes) {
  auto server = make_server(GetParam());
  constexpr int kCalls = 40;
  const auto request = encode_request(8);  // well under 1 KiB

  obs::Registry registry;
  obs::IoStats& plain_io = registry.io("plain.io");
  obs::IoStats& dict_io = registry.io("dict.io");

  TcpClientBinding plain(server->port());
  plain.set_io_stats(&plain_io);
  for (int i = 0; i < kCalls; ++i) exchange(plain, request);

  TcpClientBinding dict(server->port());
  dict.enable_v3();
  dict.set_io_stats(&dict_io);
  for (int i = 0; i < kCalls; ++i) {
    const auto resp = exchange(dict, request);
    const SoapEnvelope env(BxsaEncoding{}.deserialize(resp));
    EXPECT_TRUE(services::parse_verify_response(env).ok);
  }
  ASSERT_TRUE(dict.v3_active());

  // Requests: after message 1 admits the symbols, every later message
  // references them — even charging the Hello against the dictionary
  // channel, 40 small calls must come out well ahead.
  EXPECT_LT(dict_io.bytes_out.value() * 100, plain_io.bytes_out.value() * 85)
      << "dict=" << dict_io.bytes_out.value()
      << " plain=" << plain_io.bytes_out.value();
  // Responses likewise (the Accept rides bytes_in).
  EXPECT_LT(dict_io.bytes_in.value() * 100, plain_io.bytes_in.value() * 85)
      << "dict=" << dict_io.bytes_in.value()
      << " plain=" << plain_io.bytes_in.value();
}

TEST(DictChannel, PipelinedDictResponsesStayOrderedOnTheEventServer) {
  ServerConfig cfg;
  cfg.encoding = AnyEncoding::from(BxsaEncoding{});
  cfg.handler = services::verification_handler;
  cfg.reactor_threads = 2;
  cfg.worker_threads = 4;  // out-of-order completion is the interesting case
  auto server =
      SoapServer::create(ConcurrencyModel::kEventLoop, std::move(cfg));

  TcpStream stream = TcpStream::connect(server->port());
  HelloFrame hello;
  hello.dict_max_entries = bxsa::DictLimits{}.max_entries;
  hello.dict_max_bytes = bxsa::DictLimits{}.max_bytes;
  write_hello(stream, hello);
  const AcceptFrame accept = read_accept(stream);
  ASSERT_EQ(accept.version, kFrameVersionNegotiated);
  ASSERT_GT(accept.dict_max_entries, 0u);
  const bxsa::DictLimits eff{accept.dict_max_entries, accept.dict_max_bytes};

  // Burst all requests dictionary-coded back to back, THEN read: responses
  // must come back in request order with a coherent response dictionary.
  constexpr std::size_t kBurst = 8;
  bxsa::DictEncoder enc(eff);
  ByteWriter burst;
  for (std::size_t i = 0; i < kBurst; ++i) {
    const SoapEnvelope env = services::make_data_request(
        workload::make_lead_dataset(20 + i));
    const auto payload = BxsaEncoding{}.serialize(env.document());
    const std::size_t len_pos = begin_frame_v3(
        burst, v3flags::kDictEncoded, BxsaEncoding::content_type());
    if (enc.encode(payload, burst)) {
      FAIL() << "unexpected dictionary reset in a small burst";
    }
    end_frame(burst, len_pos);
  }
  stream.write_all(burst.bytes());

  bxsa::DictDecoder dec(eff);
  for (std::size_t i = 0; i < kBurst; ++i) {
    FrameStart start = read_frame_start(stream, FrameLimits{}, true);
    ASSERT_FALSE(start.hello);
    const std::uint8_t flags = start.flags;
    soap::WireMessage m =
        read_frame_body(stream, std::move(start), FrameLimits{});
    std::vector<std::uint8_t> canonical;
    if ((flags & v3flags::kDictEncoded) != 0) {
      ByteWriter plain;
      dec.decode(m.payload, (flags & v3flags::kDictReset) != 0, plain);
      canonical = plain.take();
    } else {
      canonical = std::move(m.payload);
    }
    const SoapEnvelope env(BxsaEncoding{}.deserialize(canonical));
    const auto outcome = services::parse_verify_response(env);
    EXPECT_TRUE(outcome.ok);
    EXPECT_EQ(outcome.count, 20 + i) << "response " << i << " out of order";
  }
}

TEST_P(DictChannel, ConcurrentV3ChannelsHammerDictAndCache) {
  // The TSan target: many threads over pooled v3 channels against a server
  // running per-channel dictionaries AND the shared response cache.
  ServerConfig cfg;
  cfg.idempotent_ops = {"data"};
  auto server = make_server(GetParam(), std::move(cfg));

  TcpChannelPool<BxsaEncoding>::Config pool_cfg;
  pool_cfg.port = server->port();
  pool_cfg.channels = 4;
  pool_cfg.enable_v3 = true;
  TcpChannelPool<BxsaEncoding> channels(pool_cfg);

  constexpr int kThreads = 8;
  constexpr int kCallsEach = 25;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kCallsEach; ++i) {
        // A small rotating set of distinct requests: plenty of repeats for
        // the cache, several live dictionary channels at once.
        const std::size_t n = 5 + static_cast<std::size_t>((t + i) % 4);
        try {
          const SoapEnvelope resp = channels.call(
              services::make_data_request(workload::make_lead_dataset(n)));
          const auto outcome = services::parse_verify_response(resp);
          if (!outcome.ok || outcome.count != n) ++failures;
        } catch (const std::exception&) {
          ++failures;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(server->exchanges(),
            static_cast<std::size_t>(kThreads * kCallsEach));
}

INSTANTIATE_TEST_SUITE_P(Models, DictChannel,
                         ::testing::Values(
                             ConcurrencyModel::kThreadPerConnection,
                             ConcurrencyModel::kEventLoop),
                         [](const auto& info) {
                           return info.param ==
                                          ConcurrencyModel::kThreadPerConnection
                                      ? "pool"
                                      : "event";
                         });

// ---- the idempotent-response cache end to end --------------------------------

using RespCacheServer = V3ServerTest;

TEST_P(RespCacheServer, RepeatedIdempotentRequestsSkipTheHandler) {
  std::atomic<int> handler_runs{0};
  obs::Registry registry;
  ServerConfig cfg;
  cfg.registry = &registry;
  cfg.metrics_prefix = "srv";
  cfg.idempotent_ops = {"data"};
  auto server = make_server(GetParam(), std::move(cfg),
                            [&handler_runs](SoapEnvelope req) {
                              ++handler_runs;
                              return services::verification_handler(
                                  std::move(req));
                            });

  constexpr std::size_t kRepeats = 6;
  TcpClientBinding binding(server->port());
  const auto request = encode_request(33);
  std::vector<std::uint8_t> first;
  for (std::size_t i = 0; i < kRepeats; ++i) {
    auto resp = exchange(binding, request);
    if (i == 0) {
      first = std::move(resp);
    } else {
      EXPECT_EQ(resp, first) << "cached response differs on repeat " << i;
    }
  }
  EXPECT_EQ(handler_runs.load(), 1);
  EXPECT_EQ(registry.counter("srv.respcache.hits").value(), kRepeats - 1);
  EXPECT_EQ(registry.counter("srv.respcache.misses").value(), 1u);
  EXPECT_GT(registry.counter("srv.respcache.bytes").value(), 0u);
  EXPECT_EQ(server->exchanges(), kRepeats);
}

TEST_P(RespCacheServer, CacheHitsServeNegotiatedDictChannels) {
  ServerConfig cfg;
  cfg.idempotent_ops = {"data"};
  auto server = make_server(GetParam(), std::move(cfg));

  // Warm the cache over a plain channel, then repeat the request over a
  // fresh dictionary channel: the hit must come back correctly dict-framed
  // for THIS channel's epoch.
  TcpClientBinding warm(server->port());
  const auto request = encode_request(12);
  const auto baseline = exchange(warm, request);

  TcpClientBinding dict(server->port());
  dict.enable_v3();
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(exchange(dict, request), baseline);
  }
  EXPECT_TRUE(dict.v3_active());
}

TEST_P(RespCacheServer, FaultsAndUndeclaredOperationsAreNeverCached) {
  std::atomic<int> handler_runs{0};
  obs::Registry registry;
  ServerConfig cfg;
  cfg.registry = &registry;
  cfg.metrics_prefix = "srv";
  cfg.idempotent_ops = {"data"};
  auto server = make_server(
      GetParam(), std::move(cfg), [&handler_runs](SoapEnvelope req) {
        ++handler_runs;
        SoapEnvelope resp = services::verification_handler(std::move(req));
        if (services::parse_verify_response(resp).count == 7) {
          throw SoapFaultError("soap:Client", "seven refused");
        }
        return resp;
      });

  TcpClientBinding binding(server->port());
  // Faulting request, repeated: the fault is re-computed every time.
  const auto poisoned = encode_request(7);
  for (int i = 0; i < 3; ++i) {
    const SoapEnvelope env(
        BxsaEncoding{}.deserialize(exchange(binding, poisoned)));
    EXPECT_TRUE(env.is_fault());
  }
  EXPECT_EQ(handler_runs.load(), 3);
  // An operation not in idempotent_ops: handler runs on every repeat.
  const SoapEnvelope fetch =
      services::make_http_fetch_request("http://127.0.0.1:1/missing.nc");
  const auto fetch_bytes = BxsaEncoding{}.serialize(fetch.document());
  for (int i = 0; i < 2; ++i) exchange(binding, fetch_bytes);
  EXPECT_EQ(handler_runs.load(), 5);
  EXPECT_EQ(registry.counter("srv.respcache.hits").value(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Models, RespCacheServer,
                         ::testing::Values(
                             ConcurrencyModel::kThreadPerConnection,
                             ConcurrencyModel::kEventLoop),
                         [](const auto& info) {
                           return info.param ==
                                          ConcurrencyModel::kThreadPerConnection
                                      ? "pool"
                                      : "event";
                         });

}  // namespace
}  // namespace bxsoap::transport
