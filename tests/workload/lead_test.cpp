#include "workload/lead.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <unistd.h>

#include "bxsa/decoder.hpp"
#include "bxsa/encoder.hpp"
#include "xml/writer.hpp"

namespace bxsoap::workload {
namespace {

TEST(LeadDataset, GeneratorIsDeterministic) {
  const LeadDataset a = make_lead_dataset(100, 7);
  const LeadDataset b = make_lead_dataset(100, 7);
  const LeadDataset c = make_lead_dataset(100, 8);
  EXPECT_EQ(a, b);
  EXPECT_NE(a.values, c.values);
}

TEST(LeadDataset, ShapeMatchesThePaper) {
  const LeadDataset d = make_lead_dataset(1000);
  EXPECT_EQ(d.model_size(), 1000u);
  EXPECT_EQ(d.native_bytes(), 12000u) << "1000 * (4 + 8)";
  for (std::size_t i = 0; i < d.model_size(); ++i) {
    EXPECT_EQ(d.index[i], static_cast<std::int32_t>(i));
    EXPECT_GE(d.values[i], 200.0);
    EXPECT_LT(d.values[i], 320.0);
  }
}

TEST(LeadDataset, ChecksumDetectsChanges) {
  LeadDataset d = make_lead_dataset(50);
  const std::uint64_t base = dataset_checksum(d);
  d.values[10] += 0.01;
  EXPECT_NE(dataset_checksum(d), base);
}

TEST(LeadDataset, BxdmRoundTrip) {
  const LeadDataset d = make_lead_dataset(128);
  const xdm::NodePtr payload = to_bxdm(d);
  const LeadDataset back =
      from_bxdm(static_cast<const xdm::ElementBase&>(*payload));
  EXPECT_EQ(d, back);
}

TEST(LeadDataset, FromBxdmRejectsWrongShapes) {
  auto wrong = xdm::make_element(xdm::QName("data"));
  EXPECT_THROW(from_bxdm(*wrong), DecodeError);

  auto mismatched = xdm::make_element(xdm::QName("data"));
  mismatched->add_child(
      xdm::make_array<std::int32_t>(xdm::QName("index"), {1, 2}));
  mismatched->add_child(
      xdm::make_array<double>(xdm::QName("values"), {1.0}));
  EXPECT_THROW(from_bxdm(*mismatched), DecodeError);
}

TEST(LeadDataset, NetcdfRoundTrip) {
  const LeadDataset d = make_lead_dataset(333);
  const LeadDataset back = from_netcdf(to_netcdf(d));
  EXPECT_EQ(d, back);
}

TEST(LeadDataset, NetcdfFileRoundTrip) {
  const auto path =
      std::filesystem::temp_directory_path() /
      ("bxsoap_lead_test_" + std::to_string(::getpid()) + ".nc");
  const LeadDataset d = make_lead_dataset(64);
  write_netcdf_file(d, path);
  EXPECT_EQ(read_netcdf_file(path), d);
  std::filesystem::remove(path);
}

TEST(LeadDataset, Figure56SizesMatchThePaper) {
  const auto sizes = figure56_model_sizes();
  ASSERT_EQ(sizes.size(), 7u);
  EXPECT_EQ(sizes.front(), 1365u);
  EXPECT_EQ(sizes[1], 5460u);
  EXPECT_EQ(sizes.back(), 5591040u);
  // BXSA size bounds from the paper: 16 KB to 64 MB.
  EXPECT_NEAR(static_cast<double>(sizes.front()) * 12, 16384, 1000);
  EXPECT_NEAR(static_cast<double>(sizes.back()) * 12, 64.0 * 1024 * 1024,
              1.0e6);
}

TEST(GridDataset, ShapeAndOffsets) {
  const GridDataset g = make_grid_dataset(2, 3, 4, 5);
  EXPECT_EQ(g.cell_count(), 120u);
  EXPECT_EQ(g.index.size(), 120u);
  EXPECT_EQ(g.offset(0, 0, 0, 0), 0u);
  EXPECT_EQ(g.offset(0, 0, 0, 4), 4u);
  EXPECT_EQ(g.offset(0, 0, 1, 0), 5u);
  EXPECT_EQ(g.offset(1, 2, 3, 4), 119u);
  // The index array is the identity over the flattened order.
  EXPECT_EQ(g.index[g.offset(1, 0, 2, 3)],
            static_cast<std::int32_t>(g.offset(1, 0, 2, 3)));
}

TEST(GridDataset, NetcdfRoundTripKeepsFourDimensions) {
  const GridDataset g = make_grid_dataset(3, 4, 5, 2);
  const auto file = grid_to_netcdf(g);
  ASSERT_EQ(file.dimensions().size(), 4u);
  EXPECT_EQ(file.dimensions()[0].name, "time");
  EXPECT_EQ(file.find_variable("values")->dim_ids().size(), 4u);

  const GridDataset back =
      grid_from_netcdf(netcdf::NcFile::from_bytes(file.to_bytes()));
  EXPECT_EQ(back, g);
}

TEST(GridDataset, BxdmRoundTripThroughBxsa) {
  const GridDataset g = make_grid_dataset(2, 2, 3, 3);
  const auto payload = grid_to_bxdm(g);
  const auto bytes = bxsa::encode(*payload);
  const auto back_node = bxsa::decode(bytes);
  const GridDataset back =
      grid_from_bxdm(static_cast<const xdm::ElementBase&>(*back_node));
  EXPECT_EQ(back, g);
}

TEST(GridDataset, FlattenMatchesLeadShape) {
  const GridDataset g = make_grid_dataset(2, 3, 2, 2);
  const LeadDataset flat = flatten(g);
  EXPECT_EQ(flat.model_size(), g.cell_count());
  EXPECT_EQ(flat.index, g.index);
  EXPECT_EQ(flat.values, g.values);
}

TEST(GridDataset, ShapeMismatchRejected) {
  GridDataset g = make_grid_dataset(2, 2, 2, 2);
  g.values.pop_back();
  auto file_ok = grid_to_netcdf(make_grid_dataset(2, 2, 2, 2));
  // Tamper with a dimension so lengths disagree.
  auto payload = grid_to_bxdm(make_grid_dataset(2, 2, 2, 2));
  auto* el = static_cast<xdm::Element*>(payload.get());
  el->attributes()[0].value = std::uint32_t{9};
  EXPECT_THROW(grid_from_bxdm(*el), DecodeError);
}

TEST(LeadDataset, SerializationSizesReproduceTable1Shape) {
  // Table 1 at model size 1000: native 12000 B, BXSA +1.3%, netCDF +2.2%,
  // XML +99.1%. We require the ordering and the rough magnitudes.
  const LeadDataset d = make_lead_dataset(1000);
  const auto payload = to_bxdm(d);

  const auto bxsa_bytes = bxsa::encode(*payload);
  const auto nc_bytes = to_netcdf(d).to_bytes();
  xml::WriteOptions plain;
  plain.emit_type_info = false;
  const std::string xml_text = xml::write_xml(*payload, plain);

  const double native = 12000.0;
  const double bxsa_over = (bxsa_bytes.size() - native) / native;
  const double nc_over = (nc_bytes.size() - native) / native;
  const double xml_over = (xml_text.size() - native) / native;

  EXPECT_LT(bxsa_over, 0.02) << "paper: 1.3%";
  EXPECT_LT(nc_over, 0.03) << "paper: 2.2%";
  EXPECT_GT(xml_over, 0.7) << "paper: 99.1%";
  EXPECT_LT(xml_over, 1.4);
  EXPECT_LT(bxsa_over, nc_over) << "BXSA is the leanest binary form";
}

}  // namespace
}  // namespace bxsoap::workload
