#include "xbs/xbs.hpp"

#include <gtest/gtest.h>

#include "common/prng.hpp"

namespace bxsoap::xbs {
namespace {

TEST(XbsPadding, PaddingFor) {
  EXPECT_EQ(padding_for(0, 8), 0u);
  EXPECT_EQ(padding_for(1, 8), 7u);
  EXPECT_EQ(padding_for(7, 8), 1u);
  EXPECT_EQ(padding_for(8, 8), 0u);
  EXPECT_EQ(padding_for(3, 4), 1u);
  EXPECT_EQ(padding_for(5, 1), 0u);
}

TEST(XbsWriter, AlignedPutInsertsPadding) {
  Writer w(ByteOrder::kLittle);
  w.put_u8(0x01);          // offset 0..1
  w.put<std::uint32_t>(7); // pads to 4, writes 4 -> total 8
  EXPECT_EQ(w.offset(), 8u);
  Reader r(w.bytes());
  EXPECT_EQ(r.get_u8(), 0x01);
  EXPECT_EQ(r.get<std::uint32_t>(ByteOrder::kLittle), 7u);
}

TEST(XbsWriter, UnalignedPutDoesNotPad) {
  Writer w(ByteOrder::kLittle);
  w.put_u8(0x01);
  w.put_unaligned<std::uint32_t>(7);
  EXPECT_EQ(w.offset(), 5u);
  Reader r(w.bytes());
  EXPECT_EQ(r.get_u8(), 0x01);
  EXPECT_EQ(r.get_unaligned<std::uint32_t>(ByteOrder::kLittle), 7u);
}

TEST(XbsRoundTrip, AllScalarWidthsBothOrders) {
  for (ByteOrder order : {ByteOrder::kLittle, ByteOrder::kBig}) {
    Writer w(order);
    w.put<std::int8_t>(-5);
    w.put<std::int16_t>(-3000);
    w.put<std::int32_t>(123456789);
    w.put<std::int64_t>(-9876543210LL);
    w.put<float>(2.5f);
    w.put<double>(-1.25e100);

    Reader r(w.bytes());
    EXPECT_EQ(r.get<std::int8_t>(order), -5);
    EXPECT_EQ(r.get<std::int16_t>(order), -3000);
    EXPECT_EQ(r.get<std::int32_t>(order), 123456789);
    EXPECT_EQ(r.get<std::int64_t>(order), -9876543210LL);
    EXPECT_EQ(r.get<float>(order), 2.5f);
    EXPECT_EQ(r.get<double>(order), -1.25e100);
  }
}

TEST(XbsRoundTrip, StringWithVlsLength) {
  Writer w;
  w.put_string("hello xbs");
  w.put_string("");
  Reader r(w.bytes());
  EXPECT_EQ(r.get_string(), "hello xbs");
  EXPECT_EQ(r.get_string(), "");
}

TEST(XbsArray, PayloadIsAlignedToItemSize) {
  Writer w(ByteOrder::kLittle);
  w.put_u8(0xEE);  // misalign
  const std::vector<double> vals = {1.0, 2.0, 3.0};
  w.put_array<double>(vals);
  // Payload must start at offset 8 (next multiple of 8 after 1).
  EXPECT_EQ(w.offset(), 8u + 3 * 8);

  Reader r(w.bytes());
  EXPECT_EQ(r.get_u8(), 0xEE);
  auto back = r.get_array<double>(3, ByteOrder::kLittle);
  EXPECT_EQ(back, vals);
}

TEST(XbsArray, ViewArrayIsZeroCopy) {
  Writer w(host_byte_order());
  const std::vector<std::int32_t> vals = {10, 20, 30, 40};
  w.put_array<std::int32_t>(vals);
  const auto bytes = w.bytes();

  Reader r(bytes);
  auto view = r.view_array<std::int32_t>(4);
  ASSERT_EQ(view.size(), 4u);
  EXPECT_EQ(view[2], 30);
  // Zero-copy: the view must point into the original buffer.
  EXPECT_GE(reinterpret_cast<const std::uint8_t*>(view.data()), bytes.data());
  EXPECT_LT(reinterpret_cast<const std::uint8_t*>(view.data()),
            bytes.data() + bytes.size());
}

TEST(XbsArray, CrossEndianArrayRoundTrip) {
  const ByteOrder other = host_byte_order() == ByteOrder::kLittle
                              ? ByteOrder::kBig
                              : ByteOrder::kLittle;
  Writer w(other);
  const std::vector<float> vals = {1.5f, -2.5f, 3.5f};
  w.put_array<float>(vals);
  Reader r(w.bytes());
  EXPECT_EQ(r.get_array<float>(3, other), vals);
}

TEST(XbsArray, EmptyArray) {
  Writer w;
  w.put_array<double>(std::span<const double>{});
  Reader r(w.bytes());
  EXPECT_TRUE(r.get_array<double>(0, w.order()).empty());
}

TEST(XbsReader, TruncatedArrayThrows) {
  Writer w(ByteOrder::kLittle);
  const std::vector<std::int64_t> vals = {1, 2};
  w.put_array<std::int64_t>(vals);
  auto bytes = w.take();
  bytes.pop_back();
  Reader r({bytes.data(), bytes.size()});
  EXPECT_THROW(r.get_array<std::int64_t>(2, ByteOrder::kLittle), DecodeError);
}

TEST(XbsRoundTrip, RandomMixedStream) {
  SplitMix64 rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    const ByteOrder order =
        rng.next_bool() ? ByteOrder::kLittle : ByteOrder::kBig;
    Writer w(order);
    std::vector<double> doubles(rng.next_below(20));
    for (auto& d : doubles) d = rng.next_double(-1e9, 1e9);
    std::vector<std::int32_t> ints(rng.next_below(20));
    for (auto& i : ints) i = rng.next_i32();

    w.put_vls(doubles.size());
    w.put_array<double>(doubles);
    w.put_vls(ints.size());
    w.put_array<std::int32_t>(ints);
    w.put<double>(3.25);

    Reader r(w.bytes());
    const auto nd = r.get_vls();
    EXPECT_EQ(r.get_array<double>(nd, order), doubles);
    const auto ni = r.get_vls();
    EXPECT_EQ(r.get_array<std::int32_t>(ni, order), ints);
    EXPECT_EQ(r.get<double>(order), 3.25);
  }
}

TEST(XbsWriter, AlignToIsIdempotent) {
  Writer w;
  w.put_u8(1);
  w.align_to(8);
  const auto off = w.offset();
  w.align_to(8);
  EXPECT_EQ(w.offset(), off);
  EXPECT_EQ(off % 8, 0u);
}

}  // namespace
}  // namespace bxsoap::xbs
