#include "xdm/access.hpp"

#include <gtest/gtest.h>

namespace bxsoap::xdm {
namespace {

class AccessFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = make_element(QName("r"));
    root_->add_attribute(QName("id"), std::int32_t{7});
    root_->add_attribute(QName("name"), std::string("alpha"));
    root_->add_child(make_leaf<double>(QName("temp"), 287.5));
    root_->add_child(make_leaf<std::string>(QName("unit"),
                                            std::string("K")));
    root_->add_child(make_array<std::int32_t>(QName("idx"), {1, 2, 3}));
    root_->add_element(QName("nested"));
  }

  std::unique_ptr<Element> root_;
};

TEST_F(AccessFixture, LeafValueTyped) {
  EXPECT_EQ(leaf_value<double>(*root_, "temp"), 287.5);
  EXPECT_EQ(leaf_value<std::string>(*root_, "unit"), "K");
}

TEST_F(AccessFixture, LeafValueShapeMismatches) {
  EXPECT_FALSE(leaf_value<double>(*root_, "missing"));
  EXPECT_FALSE(leaf_value<float>(*root_, "temp")) << "double != float";
  EXPECT_FALSE(leaf_value<double>(*root_, "nested")) << "not a leaf";
  EXPECT_FALSE(leaf_value<double>(*root_, "idx")) << "array, not leaf";
}

TEST_F(AccessFixture, ArrayValuesAndView) {
  EXPECT_EQ(array_values<std::int32_t>(*root_, "idx"),
            (std::vector<std::int32_t>{1, 2, 3}));
  auto view = array_view<std::int32_t>(*root_, "idx");
  ASSERT_TRUE(view);
  EXPECT_EQ((*view)[1], 2);
  EXPECT_FALSE(array_values<double>(*root_, "idx")) << "wrong item type";
  EXPECT_FALSE(array_view<std::int32_t>(*root_, "temp"));
}

TEST_F(AccessFixture, AttrValueTyped) {
  EXPECT_EQ(attr_value<std::int32_t>(*root_, "id"), 7);
  EXPECT_EQ(attr_value<std::string>(*root_, "name"), "alpha");
  EXPECT_FALSE(attr_value<double>(*root_, "id")) << "int32 != double";
  EXPECT_FALSE(attr_value<std::int32_t>(*root_, "missing"));
}

TEST_F(AccessFixture, RequireVariantsThrowOnAbsence) {
  EXPECT_EQ(require_leaf<double>(*root_, "temp"), 287.5);
  EXPECT_EQ(require_attr<std::int32_t>(*root_, "id"), 7);
  EXPECT_THROW(require_leaf<double>(*root_, "nope"), DecodeError);
  EXPECT_THROW(require_attr<double>(*root_, "id"), DecodeError);
}

TEST(AccessOnLeafParent, ReturnsNullopt) {
  LeafElement<double> leaf{QName("x"), 1.0};
  EXPECT_FALSE(leaf_value<double>(leaf, "child"));
  EXPECT_FALSE(array_values<double>(leaf, "child"));
}

}  // namespace
}  // namespace bxsoap::xdm
