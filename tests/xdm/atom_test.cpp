#include "xdm/atom.hpp"

#include <gtest/gtest.h>

namespace bxsoap::xdm {
namespace {

TEST(Atom, WireSizes) {
  EXPECT_EQ(atom_wire_size(AtomType::kString), 0u);
  EXPECT_EQ(atom_wire_size(AtomType::kInt8), 1u);
  EXPECT_EQ(atom_wire_size(AtomType::kUInt8), 1u);
  EXPECT_EQ(atom_wire_size(AtomType::kBool), 1u);
  EXPECT_EQ(atom_wire_size(AtomType::kInt16), 2u);
  EXPECT_EQ(atom_wire_size(AtomType::kInt32), 4u);
  EXPECT_EQ(atom_wire_size(AtomType::kFloat32), 4u);
  EXPECT_EQ(atom_wire_size(AtomType::kInt64), 8u);
  EXPECT_EQ(atom_wire_size(AtomType::kFloat64), 8u);
}

TEST(Atom, TraitsMapTypes) {
  EXPECT_EQ(AtomTraits<double>::kType, AtomType::kFloat64);
  EXPECT_EQ(AtomTraits<std::int32_t>::kType, AtomType::kInt32);
  EXPECT_EQ(AtomTraits<std::string>::kType, AtomType::kString);
  EXPECT_EQ(AtomTraits<bool>::kType, AtomType::kBool);
  static_assert(Atomic<double>);
  static_assert(Atomic<std::string>);
  static_assert(PackedAtomic<double>);
  static_assert(!PackedAtomic<std::string>);
}

TEST(Atom, XsdNamesRoundTrip) {
  for (auto t : {AtomType::kString, AtomType::kInt8, AtomType::kUInt8,
                 AtomType::kInt16, AtomType::kUInt16, AtomType::kInt32,
                 AtomType::kUInt32, AtomType::kInt64, AtomType::kUInt64,
                 AtomType::kFloat32, AtomType::kFloat64, AtomType::kBool}) {
    const auto xsd = atom_xsd_name(t);
    ASSERT_TRUE(xsd.starts_with("xsd:"));
    auto back = atom_from_xsd_local(xsd.substr(4));
    ASSERT_TRUE(back.has_value()) << xsd;
    EXPECT_EQ(*back, t);
  }
}

TEST(Atom, UnknownXsdLocalIsNullopt) {
  EXPECT_FALSE(atom_from_xsd_local("decimal"));
  EXPECT_FALSE(atom_from_xsd_local(""));
}

TEST(Atom, ScalarTypeAndText) {
  EXPECT_EQ(scalar_type(ScalarValue(3.5)), AtomType::kFloat64);
  EXPECT_EQ(scalar_type(ScalarValue(std::string("x"))), AtomType::kString);
  EXPECT_EQ(scalar_text(ScalarValue(3.5)), "3.5");
  EXPECT_EQ(scalar_text(ScalarValue(std::int32_t{-7})), "-7");
  EXPECT_EQ(scalar_text(ScalarValue(true)), "true");
  EXPECT_EQ(scalar_text(ScalarValue(false)), "false");
  EXPECT_EQ(scalar_text(ScalarValue(std::string("txt"))), "txt");
}

TEST(Atom, ParseScalarTyped) {
  EXPECT_EQ(scalar_get<std::int32_t>(parse_scalar(AtomType::kInt32, "42")),
            42);
  EXPECT_EQ(scalar_get<double>(parse_scalar(AtomType::kFloat64, " 2.5 ")),
            2.5) << "numeric parse trims XML whitespace";
  EXPECT_EQ(scalar_get<bool>(parse_scalar(AtomType::kBool, "1")), true);
  EXPECT_EQ(scalar_get<bool>(parse_scalar(AtomType::kBool, "false")), false);
  EXPECT_EQ(scalar_get<std::string>(parse_scalar(AtomType::kString, " s ")),
            " s ") << "strings keep their whitespace";
}

TEST(Atom, ParseScalarRangeChecks) {
  EXPECT_THROW(parse_scalar(AtomType::kInt8, "128"), DecodeError);
  EXPECT_NO_THROW(parse_scalar(AtomType::kInt8, "127"));
  EXPECT_THROW(parse_scalar(AtomType::kUInt8, "-1"), DecodeError);
  EXPECT_THROW(parse_scalar(AtomType::kUInt16, "65536"), DecodeError);
  EXPECT_THROW(parse_scalar(AtomType::kInt32, "abc"), DecodeError);
  EXPECT_THROW(parse_scalar(AtomType::kFloat64, "1..2"), DecodeError);
  EXPECT_THROW(parse_scalar(AtomType::kBool, "yes"), DecodeError);
}

TEST(Atom, EraParseAgreesWithModernParse) {
  // Every value the modern parser accepts must produce the SAME scalar via
  // the era (strtod/strtoll) path — only the CPU cost differs.
  const struct {
    AtomType type;
    const char* text;
  } cases[] = {
      {AtomType::kFloat64, "287.65"},   {AtomType::kFloat64, "-2.5e-300"},
      {AtomType::kFloat64, " 1.5 "},    {AtomType::kFloat32, "3.25"},
      {AtomType::kInt8, "-128"},        {AtomType::kInt64, "-5000000000"},
      {AtomType::kUInt64, "18446744073709551615"},
      {AtomType::kUInt16, "65535"},     {AtomType::kBool, "true"},
      {AtomType::kString, " keep me "},
  };
  for (const auto& c : cases) {
    EXPECT_EQ(parse_scalar(c.type, c.text), parse_scalar_era(c.type, c.text))
        << c.text;
  }
}

TEST(Atom, EraParseRejectsGarbageToo) {
  EXPECT_THROW(parse_scalar_era(AtomType::kFloat64, "1.2.3"), DecodeError);
  EXPECT_THROW(parse_scalar_era(AtomType::kFloat64, ""), DecodeError);
  EXPECT_THROW(parse_scalar_era(AtomType::kInt32, "12x"), DecodeError);
  EXPECT_THROW(parse_scalar_era(AtomType::kInt8, "200"), DecodeError)
      << "width check still applies";
  EXPECT_THROW(parse_scalar_era(AtomType::kFloat64, "1e999999"), DecodeError)
      << "ERANGE";
  EXPECT_THROW(parse_scalar_era(AtomType::kUInt32, "-1"), DecodeError)
      << "strtoull must not silently wrap negatives";
}

TEST(Atom, ScalarGetWrongTypeThrows) {
  ScalarValue v = 3.5;
  EXPECT_THROW(scalar_get<std::int32_t>(v), Error);
}

}  // namespace
}  // namespace bxsoap::xdm
