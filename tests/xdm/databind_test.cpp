#include "xdm/databind.hpp"

#include <gtest/gtest.h>

#include "bxsa/decoder.hpp"
#include "bxsa/encoder.hpp"
#include "xdm/equal.hpp"
#include "xml/parser.hpp"
#include "xml/retype.hpp"
#include "xml/writer.hpp"

namespace bxsoap::xdm {
namespace {

struct Observation {
  std::int32_t station = 0;
  double temp = 0;
  std::string site;
  std::vector<double> samples;

  friend bool operator==(const Observation&, const Observation&) = default;
};

const auto kObservationBinding =
    databind::record<Observation>("urn:wx", "observation", "wx")
        .attribute("station", &Observation::station)
        .field("temp", &Observation::temp)
        .field("site", &Observation::site)
        .array("samples", &Observation::samples);

Observation sample_obs() {
  Observation o;
  o.station = 7;
  o.temp = 287.25;
  o.site = "KBMG";
  o.samples = {287.3, 287.2, 287.25};
  return o;
}

TEST(Databind, ToElementShape) {
  const Observation o = sample_obs();
  auto e = kObservationBinding.to_element(o);
  EXPECT_EQ(e->name().namespace_uri, "urn:wx");
  EXPECT_EQ(e->name().local, "observation");
  EXPECT_EQ(e->find_attribute("station")->text(), "7");
  EXPECT_EQ(leaf_value<double>(*e, "temp"), 287.25);
  EXPECT_EQ(leaf_value<std::string>(*e, "site"), "KBMG");
  EXPECT_EQ(array_values<double>(*e, "samples"), o.samples);
}

TEST(Databind, RoundTripInMemory) {
  const Observation o = sample_obs();
  auto e = kObservationBinding.to_element(o);
  EXPECT_EQ(kObservationBinding.from_element(*e), o);
}

TEST(Databind, RoundTripThroughBothCodecs) {
  const Observation o = sample_obs();
  auto e = kObservationBinding.to_element(o);

  // Through BXSA.
  {
    const auto bytes = bxsa::encode(*e);
    const NodePtr back = bxsa::decode(bytes);
    EXPECT_EQ(kObservationBinding.from_element(
                  static_cast<const ElementBase&>(*back)),
              o);
  }
  // Through typed textual XML.
  {
    auto doc = make_document(e->clone());
    const std::string text = xml::write_xml(*doc);
    auto typed = xml::retype(*xml::parse_xml(text));
    EXPECT_EQ(kObservationBinding.from_element(typed->root()), o);
  }
}

TEST(Databind, MissingFieldThrows) {
  auto e = make_element(QName("urn:wx", "observation", "wx"));
  e->add_attribute(QName("station"), std::int32_t{1});
  // temp/site/samples missing
  EXPECT_THROW(kObservationBinding.from_element(*e), DecodeError);
}

TEST(Databind, WrongElementNameThrows) {
  auto e = make_element(QName("urn:wx", "other", "wx"));
  EXPECT_THROW(kObservationBinding.from_element(*e), DecodeError);
}

TEST(Databind, WrongFieldTypeThrows) {
  const Observation o = sample_obs();
  auto e = kObservationBinding.to_element(o);
  // Replace <temp> (index 0 child) with a float32 leaf of the same name.
  e->remove_child(0);
  e->insert_child(0, make_leaf<float>(QName("temp"), 1.0f));
  EXPECT_THROW(kObservationBinding.from_element(*e), DecodeError);
}

struct Station {
  std::string name;
  Observation latest;

  friend bool operator==(const Station&, const Station&) = default;
};

TEST(Databind, NestedRecords) {
  const auto binding =
      databind::record<Station>("urn:wx", "stationReport", "wx")
          .field("name", &Station::name)
          .nested("observation", &Station::latest, kObservationBinding);

  Station s;
  s.name = "Bloomington";
  s.latest = sample_obs();

  auto e = binding.to_element(s);
  EXPECT_EQ(binding.from_element(*e), s);

  // And through BXSA, like everything else.
  const auto bytes = bxsa::encode(*e);
  const NodePtr back = bxsa::decode(bytes);
  EXPECT_EQ(binding.from_element(static_cast<const ElementBase&>(*back)), s);
}

TEST(Databind, EmptyArrayRoundTrips) {
  Observation o = sample_obs();
  o.samples.clear();
  auto e = kObservationBinding.to_element(o);
  EXPECT_EQ(kObservationBinding.from_element(*e), o);
}

}  // namespace
}  // namespace bxsoap::xdm
