#include "xdm/equal.hpp"

#include <gtest/gtest.h>

namespace bxsoap::xdm {
namespace {

std::unique_ptr<Element> sample_tree() {
  auto root = make_element(QName("urn:x", "root", "x"));
  root->declare_namespace("x", "urn:x");
  root->add_attribute(QName("version"), std::int32_t{2});
  root->add_child(make_leaf<double>(QName("t"), 1.5));
  root->add_child(make_array<std::int32_t>(QName("a"), {1, 2, 3}));
  auto& mixed = root->add_element(QName("m"));
  mixed.add_text("hello");
  mixed.add_child(std::make_unique<CommentNode>("c"));
  return root;
}

TEST(DeepEqual, EqualTrees) {
  auto a = sample_tree();
  auto b = a->clone();
  EXPECT_TRUE(deep_equal(*a, *b));
  EXPECT_EQ(first_difference(*a, *b), "");
}

TEST(DeepEqual, DifferentLeafValue) {
  auto a = sample_tree();
  auto b = sample_tree();
  static_cast<LeafElement<double>&>(
      *const_cast<ElementBase*>(b->find_child("t")))
      .set(2.5);
  EXPECT_FALSE(deep_equal(*a, *b));
  EXPECT_NE(first_difference(*a, *b).find("leaf value"), std::string::npos);
}

TEST(DeepEqual, DifferentAtomTypeSameText) {
  auto a = make_element(QName("r"));
  a->add_child(make_leaf<std::int32_t>(QName("v"), 1));
  auto b = make_element(QName("r"));
  b->add_child(make_leaf<std::int64_t>(QName("v"), 1));
  EXPECT_FALSE(deep_equal(*a, *b)) << "typed model: int32 != int64";
}

TEST(DeepEqual, DifferentArrayPayload) {
  auto a = make_element(QName("r"));
  a->add_child(make_array<double>(QName("a"), {1.0, 2.0}));
  auto b = make_element(QName("r"));
  b->add_child(make_array<double>(QName("a"), {1.0, 2.5}));
  EXPECT_FALSE(deep_equal(*a, *b));
  EXPECT_NE(first_difference(*a, *b).find("payload"), std::string::npos);
}

TEST(DeepEqual, DifferentArrayLength) {
  auto a = make_element(QName("r"));
  a->add_child(make_array<double>(QName("a"), {1.0}));
  auto b = make_element(QName("r"));
  b->add_child(make_array<double>(QName("a"), {1.0, 2.0}));
  EXPECT_FALSE(deep_equal(*a, *b));
}

TEST(DeepEqual, PrefixDifferenceIgnoredByDefault) {
  auto a = make_element(QName("urn:x", "r", "p"));
  auto b = make_element(QName("urn:x", "r", "q"));
  EXPECT_TRUE(deep_equal(*a, *b));
  EqualOptions strict;
  strict.compare_prefixes = true;
  EXPECT_FALSE(deep_equal(*a, *b, strict));
}

TEST(DeepEqual, NamespaceUriMatters) {
  auto a = make_element(QName("urn:x", "r"));
  auto b = make_element(QName("urn:y", "r"));
  EXPECT_FALSE(deep_equal(*a, *b));
}

TEST(DeepEqual, AttributeOrderMatters) {
  // Attribute order is significant in our model (frames are ordered).
  auto a = make_element(QName("r"));
  a->add_attribute(QName("p"), std::int32_t{1});
  a->add_attribute(QName("q"), std::int32_t{2});
  auto b = make_element(QName("r"));
  b->add_attribute(QName("q"), std::int32_t{2});
  b->add_attribute(QName("p"), std::int32_t{1});
  EXPECT_FALSE(deep_equal(*a, *b));
}

TEST(DeepEqual, ChildCountMismatch) {
  auto a = make_element(QName("r"));
  a->add_text("x");
  auto b = make_element(QName("r"));
  EXPECT_FALSE(deep_equal(*a, *b));
  EXPECT_NE(first_difference(*a, *b).find("child count"), std::string::npos);
}

TEST(DeepEqual, KindMismatch) {
  TextNode t{"x"};
  CommentNode c{"x"};
  EXPECT_FALSE(deep_equal(t, c));
}

TEST(DeepEqual, DocumentsWithProlog) {
  auto mk = [] {
    auto doc = std::make_unique<Document>();
    doc->add_child(std::make_unique<PINode>("xml-stylesheet", "href='x'"));
    doc->add_child(make_element(QName("r")));
    return doc;
  };
  auto a = mk();
  auto b = mk();
  EXPECT_TRUE(deep_equal(*a, *b));
}

}  // namespace
}  // namespace bxsoap::xdm
