#include "xdm/node.hpp"

#include <gtest/gtest.h>

#include "xdm/dump.hpp"

namespace bxsoap::xdm {
namespace {

TEST(QNameTest, LexicalForms) {
  EXPECT_EQ(QName("urn:x", "a", "p").lexical(), "p:a");
  EXPECT_EQ(QName("urn:x", "a").lexical(), "a");
  EXPECT_EQ(QName("a").lexical(), "a");
}

TEST(QNameTest, EqualityIgnoresPrefix) {
  EXPECT_EQ(QName("urn:x", "a", "p"), QName("urn:x", "a", "q"));
  EXPECT_NE(QName("urn:x", "a"), QName("urn:y", "a"));
  EXPECT_NE(QName("urn:x", "a"), QName("urn:x", "b"));
}

TEST(ElementTest, BuildTreeAndNavigate) {
  auto root = make_element(QName("urn:app", "data", "d"));
  root->declare_namespace("d", "urn:app");
  root->add_child(make_leaf<double>(QName("temp"), 287.5));
  root->add_child(make_array<std::int32_t>(QName("idx"), {1, 2, 3}));
  root->add_text("note");

  EXPECT_EQ(root->child_count(), 3u);
  EXPECT_EQ(root->child_elements().size(), 2u);

  const ElementBase* leaf = root->find_child("temp");
  ASSERT_NE(leaf, nullptr);
  EXPECT_EQ(leaf->kind(), NodeKind::kLeafElement);
  const auto* typed = dynamic_cast<const LeafElement<double>*>(leaf);
  ASSERT_NE(typed, nullptr);
  EXPECT_EQ(typed->get(), 287.5);

  const ElementBase* arr = root->find_child("idx");
  ASSERT_NE(arr, nullptr);
  EXPECT_EQ(arr->kind(), NodeKind::kArrayElement);
  const auto* tarr = dynamic_cast<const ArrayElement<std::int32_t>*>(arr);
  ASSERT_NE(tarr, nullptr);
  EXPECT_EQ(tarr->values(), (std::vector<std::int32_t>{1, 2, 3}));
}

TEST(ElementTest, FindChildByQName) {
  auto root = make_element(QName("r"));
  root->add_child(make_element(QName("urn:a", "x")));
  root->add_child(make_element(QName("urn:b", "x")));
  const ElementBase* found = root->find_child(QName("urn:b", "x"));
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->name().namespace_uri, "urn:b");
  EXPECT_EQ(root->find_child(QName("urn:c", "x")), nullptr);
}

TEST(ElementTest, AttributesTypedLookup) {
  auto e = make_element(QName("e"));
  e->add_attribute(QName("id"), std::int32_t{17});
  e->add_attribute(QName("urn:meta", "units", "m"), std::string("kelvin"));

  const Attribute* id = e->find_attribute("id");
  ASSERT_NE(id, nullptr);
  EXPECT_EQ(id->type(), AtomType::kInt32);
  EXPECT_EQ(id->text(), "17");

  const Attribute* units = e->find_attribute(QName("urn:meta", "units"));
  ASSERT_NE(units, nullptr);
  EXPECT_EQ(units->text(), "kelvin");

  EXPECT_EQ(e->find_attribute("units"), nullptr)
      << "local-name lookup only matches no-namespace attributes";
}

TEST(LeafElementTest, NativeBytesAreTheMachineValue) {
  LeafElement<double> leaf(QName("v"), 1.5);
  const auto bytes = leaf.native_bytes();
  ASSERT_EQ(bytes.size(), 8u);
  double v;
  std::memcpy(&v, bytes.data(), 8);
  EXPECT_EQ(v, 1.5);
}

TEST(LeafElementTest, TextRendering) {
  EXPECT_EQ(LeafElement<double>(QName("v"), 2.5).text(), "2.5");
  EXPECT_EQ(LeafElement<std::int32_t>(QName("v"), -9).text(), "-9");
  EXPECT_EQ(LeafElement<bool>(QName("v"), true).text(), "true");
  EXPECT_EQ(LeafElement<std::string>(QName("v"), "abc").text(), "abc");
}

TEST(ArrayElementTest, PackedBytesMatchVector) {
  ArrayElement<std::int16_t> arr(QName("a"), {1, 2, 3});
  const auto bytes = arr.packed_bytes();
  ASSERT_EQ(bytes.size(), 6u);
  std::int16_t v;
  std::memcpy(&v, bytes.data() + 2, 2);
  EXPECT_EQ(v, 2);
}

TEST(ArrayElementTest, ItemTextAndDefaultItemName) {
  ArrayElement<double> arr(QName("a"), {0.5, 1.5});
  EXPECT_EQ(arr.item_name(), "d");
  std::string s;
  arr.append_item_text(1, s);
  EXPECT_EQ(s, "1.5");
  EXPECT_THROW(arr.append_item_text(5, s), std::out_of_range);
}

TEST(ElementTest, InsertChildAtPositions) {
  auto root = make_element(QName("r"));
  root->add_element(QName("b"));
  root->insert_child(0, make_element(QName("a")));
  root->insert_child(99, make_element(QName("c")));  // clamped to end
  const auto kids = root->child_elements();
  ASSERT_EQ(kids.size(), 3u);
  EXPECT_EQ(kids[0]->name().local, "a");
  EXPECT_EQ(kids[1]->name().local, "b");
  EXPECT_EQ(kids[2]->name().local, "c");
}

TEST(ElementTest, RemoveChildReturnsOwnership) {
  auto root = make_element(QName("r"));
  root->add_element(QName("a"));
  root->add_element(QName("b"));
  NodePtr removed = root->remove_child(0);
  EXPECT_EQ(static_cast<Element*>(removed.get())->name().local, "a");
  EXPECT_EQ(root->child_count(), 1u);
  EXPECT_THROW(root->remove_child(5), Error);
}

TEST(DocumentTest, RootAccess) {
  auto doc = std::make_unique<Document>();
  EXPECT_FALSE(doc->has_root());
  EXPECT_THROW(doc->root(), Error);
  doc->add_child(std::make_unique<CommentNode>("header"));
  doc->add_child(make_element(QName("r")));
  EXPECT_TRUE(doc->has_root());
  EXPECT_EQ(doc->root().name().local, "r");
}

TEST(CloneTest, DeepCloneIsIndependent) {
  auto root = make_element(QName("urn:n", "r", "n"));
  root->declare_namespace("n", "urn:n");
  root->add_attribute(QName("k"), std::string("v"));
  auto& child = root->add_element(QName("c"));
  child.add_text("t");
  root->add_child(make_array<double>(QName("arr"), {1.0}));

  NodePtr copy = root->clone();
  auto* copied = as<Element>(*copy);
  ASSERT_NE(copied, nullptr);
  EXPECT_EQ(copied->name().prefix, "n");
  EXPECT_EQ(copied->namespaces().size(), 1u);
  EXPECT_EQ(copied->attributes().size(), 1u);
  EXPECT_EQ(copied->child_count(), 2u);

  // Mutating the original must not affect the clone.
  root->add_text("more");
  EXPECT_EQ(copied->child_count(), 2u);
}

TEST(StringValueTest, ConcatenatesDescendantText) {
  auto root = make_element(QName("r"));
  root->add_text("a");
  auto& mid = root->add_element(QName("m"));
  mid.add_text("b");
  root->add_child(make_leaf<std::int32_t>(QName("n"), 7));
  root->add_child(std::make_unique<CommentNode>("ignored"));
  EXPECT_EQ(root->string_value(), "ab7");
}

TEST(StringValueTest, ArrayItemsSpaceSeparated) {
  auto root = make_element(QName("r"));
  root->add_child(make_array<std::int32_t>(QName("a"), {1, 2, 3}));
  EXPECT_EQ(root->string_value(), "1 2 3");
}

TEST(VisitorTest, DispatchesToConcreteShape) {
  struct Counter : NodeVisitor {
    int documents = 0, elements = 0, leaves = 0, arrays = 0, texts = 0,
        pis = 0, comments = 0;
    void visit(const Document& d) override {
      ++documents;
      for (const auto& c : d.children()) c->accept(*this);
    }
    void visit(const Element& e) override {
      ++elements;
      for (const auto& c : e.children()) c->accept(*this);
    }
    void visit(const LeafElementBase&) override { ++leaves; }
    void visit(const ArrayElementBase&) override { ++arrays; }
    void visit(const TextNode&) override { ++texts; }
    void visit(const PINode&) override { ++pis; }
    void visit(const CommentNode&) override { ++comments; }
  };

  auto root = make_element(QName("r"));
  root->add_child(make_leaf<double>(QName("l"), 1.0));
  root->add_child(make_array<float>(QName("a"), {1.f}));
  root->add_text("t");
  root->add_child(std::make_unique<PINode>("tgt", "data"));
  root->add_child(std::make_unique<CommentNode>("c"));
  auto doc = make_document(std::move(root));

  Counter v;
  doc->accept(v);
  EXPECT_EQ(v.documents, 1);
  EXPECT_EQ(v.elements, 1);
  EXPECT_EQ(v.leaves, 1);
  EXPECT_EQ(v.arrays, 1);
  EXPECT_EQ(v.texts, 1);
  EXPECT_EQ(v.pis, 1);
  EXPECT_EQ(v.comments, 1);
}

TEST(DumpTest, RendersShapes) {
  auto root = make_element(QName("urn:x", "r", "x"));
  root->add_child(make_leaf<double>(QName("t"), 1.5));
  root->add_child(make_array<std::int32_t>(QName("i"), {1, 2}));
  const std::string d = dump(*root);
  EXPECT_NE(d.find("element x:r"), std::string::npos);
  EXPECT_NE(d.find("leaf(float64) t = 1.5"), std::string::npos);
  EXPECT_NE(d.find("array(int32)[2] i"), std::string::npos);
}

TEST(AsHelpers, ElementShapeChecks) {
  Element e{QName("e")};
  LeafElement<double> l{QName("l"), 1.0};
  TextNode t{"x"};
  EXPECT_TRUE(is_element(e));
  EXPECT_TRUE(is_element(l));
  EXPECT_FALSE(is_element(t));
  EXPECT_NE(as_element(e), nullptr);
  EXPECT_EQ(as_element(t), nullptr);
}

}  // namespace
}  // namespace bxsoap::xdm
