#include "xdm/path.hpp"

#include <gtest/gtest.h>

namespace bxsoap::xdm {
namespace {

class PathFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    // <x:catalog xmlns:x="urn:cat">
    //   <x:book id="1"><title>A</title></x:book>
    //   <x:book id="2" lang="en"><title>B</title></x:book>
    //   <note><title>N</title></note>
    //   <count>3</count>           (leaf int32)
    //   <prices>[1.5 2.5]</prices> (array double)
    // </x:catalog>
    auto root = make_element(QName("urn:cat", "catalog", "x"));
    root->declare_namespace("x", "urn:cat");

    auto book1 = make_element(QName("urn:cat", "book", "x"));
    book1->add_attribute(QName("id"), std::int32_t{1});
    book1->add_element(QName("title")).add_text("A");
    root->add_child(std::move(book1));

    auto book2 = make_element(QName("urn:cat", "book", "x"));
    book2->add_attribute(QName("id"), std::int32_t{2});
    book2->add_attribute(QName("lang"), std::string("en"));
    book2->add_element(QName("title")).add_text("B");
    root->add_child(std::move(book2));

    auto& note = root->add_element(QName("note"));
    note.add_element(QName("title")).add_text("N");

    root->add_child(make_leaf<std::int32_t>(QName("count"), 3));
    root->add_child(make_array<double>(QName("prices"), {1.5, 2.5}));

    doc_ = make_document(std::move(root));
    prefixes_["c"] = "urn:cat";
  }

  DocumentPtr doc_;
  PrefixMap prefixes_;
};

TEST_F(PathFixture, RootStep) {
  auto r = select(*doc_, "/c:catalog", prefixes_);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0]->name().local, "catalog");
}

TEST_F(PathFixture, ChildSteps) {
  auto r = select(*doc_, "/c:catalog/c:book", prefixes_);
  EXPECT_EQ(r.size(), 2u);
}

TEST_F(PathFixture, UnprefixedMatchesAnyNamespace) {
  auto r = select(*doc_, "/catalog/book", prefixes_);
  EXPECT_EQ(r.size(), 2u);
}

TEST_F(PathFixture, WildcardStep) {
  auto r = select(*doc_, "/c:catalog/*", prefixes_);
  EXPECT_EQ(r.size(), 5u) << "books, note, leaf and array are all elements";
}

TEST_F(PathFixture, DescendantSearch) {
  auto r = select(*doc_, "//title", prefixes_);
  EXPECT_EQ(r.size(), 3u);
}

TEST_F(PathFixture, DescendantAfterStep) {
  auto r = select(*doc_, "/c:catalog/note//title", prefixes_);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(static_cast<const Element*>(r[0])->string_value(), "N");
}

TEST_F(PathFixture, PositionPredicate) {
  auto r = select(*doc_, "/c:catalog/c:book[2]", prefixes_);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0]->find_attribute("id")->text(), "2");
}

TEST_F(PathFixture, AttrPresentPredicate) {
  auto r = select(*doc_, "//c:book[@lang]", prefixes_);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0]->find_attribute("id")->text(), "2");
}

TEST_F(PathFixture, AttrEqualsPredicate) {
  auto r = select(*doc_, "//c:book[@id='1']", prefixes_);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0]->find_attribute("id")->text(), "1");
}

TEST_F(PathFixture, ChainedPredicates) {
  auto r = select(*doc_, "//c:book[@id='2'][1]", prefixes_);
  EXPECT_EQ(r.size(), 1u);
  auto none = select(*doc_, "//c:book[@id='2'][2]", prefixes_);
  EXPECT_TRUE(none.empty());
}

TEST_F(PathFixture, SelectsLeafAndArrayElements) {
  const ElementBase* count = select_first(*doc_, "//count", prefixes_);
  ASSERT_NE(count, nullptr);
  EXPECT_EQ(count->kind(), NodeKind::kLeafElement);

  const ElementBase* prices = select_first(*doc_, "//prices", prefixes_);
  ASSERT_NE(prices, nullptr);
  EXPECT_EQ(prices->kind(), NodeKind::kArrayElement);
  EXPECT_EQ(static_cast<const ArrayElementBase*>(prices)->count(), 2u);
}

TEST_F(PathFixture, FirstReturnsNullOnNoMatch) {
  EXPECT_EQ(select_first(*doc_, "//missing", prefixes_), nullptr);
}

TEST_F(PathFixture, RelativePathFromElement) {
  const ElementBase* cat = select_first(*doc_, "/c:catalog", prefixes_);
  ASSERT_NE(cat, nullptr);
  auto titles = select(*cat, "c:book/title", prefixes_);
  EXPECT_EQ(titles.size(), 2u);
}

TEST_F(PathFixture, NamespaceQualifiedWildcard) {
  auto r = select(*doc_, "/c:catalog/c:*", prefixes_);
  EXPECT_EQ(r.size(), 2u) << "only the two x:book children are in urn:cat";
}

TEST_F(PathFixture, ChildValuePredicate) {
  auto r = select(*doc_, "//c:book[title='B']", prefixes_);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0]->find_attribute("id")->text(), "2");
  EXPECT_TRUE(select(*doc_, "//c:book[title='Z']", prefixes_).empty());
}

TEST_F(PathFixture, SelfValuePredicate) {
  auto r = select(*doc_, "//title[.='N']", prefixes_);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(static_cast<const Element*>(r[0])->string_value(), "N");
}

TEST_F(PathFixture, SelfValuePredicateOnLeaf) {
  // Leaf elements render their typed value for comparison.
  auto r = select(*doc_, "/c:catalog/count[.='3']", prefixes_);
  EXPECT_EQ(r.size(), 1u);
  EXPECT_TRUE(select(*doc_, "/c:catalog/count[.='4']", prefixes_).empty());
}

TEST_F(PathFixture, SelfValuePredicateOnArray) {
  // Array string value is space-joined items.
  auto r = select(*doc_, "/c:catalog/prices[.='1.5 2.5']", prefixes_);
  EXPECT_EQ(r.size(), 1u);
}

TEST(PathErrors, ValuePredicateSyntax) {
  EXPECT_THROW(Path::compile("a[.]", {}), PathError);
  EXPECT_THROW(Path::compile("a[b]", {}), PathError)
      << "bare child name predicates are not supported";
  EXPECT_THROW(Path::compile("a[b='v]", {}), PathError);
}

TEST(PathErrors, SyntaxErrors) {
  EXPECT_THROW(Path::compile("", {}), PathError);
  EXPECT_THROW(Path::compile("//", {}), PathError);
  EXPECT_THROW(Path::compile("a[", {}), PathError);
  EXPECT_THROW(Path::compile("a[0]", {}), PathError) << "positions 1-based";
  EXPECT_THROW(Path::compile("a[@x='v]", {}), PathError);
  EXPECT_THROW(Path::compile("a b", {}), PathError);
  EXPECT_THROW(Path::compile("p:a", {}), PathError) << "unmapped prefix";
}

TEST(PathErrors, DescendantDedup) {
  // //x from a tree where x contains x: each element reported once.
  auto root = make_element(QName("x"));
  root->add_element(QName("x")).add_element(QName("x"));
  auto r = select(*root, "//x");
  EXPECT_EQ(r.size(), 2u) << "two descendants (self excluded)";
}

}  // namespace
}  // namespace bxsoap::xdm
