#include "xml/escape.hpp"

#include <gtest/gtest.h>

namespace bxsoap::xml {
namespace {

TEST(Escape, TextBasics) {
  EXPECT_EQ(escape_text("a<b&c>d"), "a&lt;b&amp;c&gt;d");
  EXPECT_EQ(escape_text(""), "");
  EXPECT_EQ(escape_text("plain"), "plain");
}

TEST(Escape, TextLeavesQuotesAlone) {
  EXPECT_EQ(escape_text("\"'"), "\"'");
}

TEST(Escape, AttrEscapesQuotesAndWhitespace) {
  EXPECT_EQ(escape_attr("a\"b"), "a&quot;b");
  EXPECT_EQ(escape_attr("a\nb\tc\rd"), "a&#10;b&#9;c&#13;d");
  EXPECT_EQ(escape_attr("<&>"), "&lt;&amp;&gt;");
}

TEST(Escape, AppendVariantsAccumulate) {
  std::string out = "x=";
  append_escaped_text(out, "<v>");
  EXPECT_EQ(out, "x=&lt;v&gt;");
}

}  // namespace
}  // namespace bxsoap::xml
