// Robustness: the XML parser must never crash, hang, or read out of bounds
// on hostile input — every malformed document throws ParseError/DecodeError.
#include <gtest/gtest.h>

#include "common/prng.hpp"
#include "xml/parser.hpp"
#include "xml/retype.hpp"
#include "xml/writer.hpp"

namespace bxsoap::xml {
namespace {

const std::string kSeedDoc =
    "<r xmlns:x=\"urn:x\" a=\"1\" x:b=\"&lt;2&gt;\">"
    "<x:c xsi:type=\"xsd:double\" "
    "xmlns:xsi=\"http://www.w3.org/2001/XMLSchema-instance\" "
    "xmlns:xsd=\"http://www.w3.org/2001/XMLSchema\">2.5</x:c>"
    "<!--note--><?pi data?><d><![CDATA[raw<>&]]></d>text&#65;</r>";

class XmlFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(XmlFuzz, MutatedDocumentsNeverCrash) {
  SplitMix64 rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    std::string doc = kSeedDoc;
    const std::uint64_t mutations = 1 + rng.next_below(8);
    for (std::uint64_t m = 0; m < mutations; ++m) {
      const std::uint64_t pos = rng.next_below(doc.size());
      switch (rng.next_below(4)) {
        case 0:  // flip a byte
          doc[pos] = static_cast<char>(rng.next());
          break;
        case 1:  // delete a byte
          doc.erase(pos, 1);
          break;
        case 2:  // duplicate a slice
          doc.insert(pos, doc.substr(pos, rng.next_below(10)));
          break;
        default:  // insert a metacharacter
          doc.insert(pos, 1, "<>&\"'["[rng.next_below(6)]);
      }
      if (doc.empty()) break;
    }
    try {
      auto parsed = parse_xml(doc);
      // If it still parses, the typed re-parse must also not crash.
      try {
        retype(*parsed);
      } catch (const DecodeError&) {
      }
    } catch (const ParseError&) {
      // Expected for most mutations.
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, XmlFuzz,
                         ::testing::Range<std::uint64_t>(1, 11));

TEST(XmlFuzz, RandomBytesNeverCrash) {
  SplitMix64 rng(424242);
  for (int trial = 0; trial < 500; ++trial) {
    std::string doc;
    const std::uint64_t n = rng.next_below(200);
    for (std::uint64_t i = 0; i < n; ++i) {
      doc.push_back(static_cast<char>(rng.next()));
    }
    try {
      parse_xml(doc);
    } catch (const ParseError&) {
    }
  }
}

TEST(XmlFuzz, DeepNestingHitsTheDepthLimitNotTheStack) {
  // Unbounded recursion is a stack-exhaustion attack; the parser must
  // refuse pathologically deep documents instead of crashing.
  std::string doc;
  const int depth = 20000;
  for (int i = 0; i < depth; ++i) doc += "<a>";
  for (int i = 0; i < depth; ++i) doc += "</a>";
  EXPECT_THROW(parse_xml(doc), ParseError);

  // Anything under the limit parses fine.
  std::string ok_doc;
  for (int i = 0; i < 1000; ++i) ok_doc += "<a>";
  for (int i = 0; i < 1000; ++i) ok_doc += "</a>";
  EXPECT_NO_THROW(parse_xml(ok_doc));

  // And the limit is configurable.
  ParseOptions tight;
  tight.max_depth = 3;
  EXPECT_THROW(parse_xml("<a><b><c><d/></c></b></a>", tight), ParseError);
  EXPECT_NO_THROW(parse_xml("<a><b><c/></b></a>", tight));
}

TEST(XmlFuzz, WriterOutputAlwaysReparses) {
  // Generator-based: any tree the writer emits must be accepted by the
  // parser (writer/parser consistency).
  SplitMix64 rng(99);
  using namespace bxsoap::xdm;
  for (int trial = 0; trial < 100; ++trial) {
    auto root = make_element(QName("r"));
    for (std::uint64_t i = 0, n = rng.next_below(6); i < n; ++i) {
      std::string text;
      for (std::uint64_t j = 0, m = rng.next_below(12); j < m; ++j) {
        text.push_back(static_cast<char>(0x20 + rng.next_below(0x5F)));
      }
      if (rng.next_bool()) {
        root->add_text(text);
      } else {
        root->add_attribute(QName("k" + std::to_string(i)), text);
      }
    }
    const std::string out = write_xml(*root);
    EXPECT_NO_THROW(parse_xml(out)) << out;
  }
}

}  // namespace
}  // namespace bxsoap::xml
