#include "xml/parser.hpp"

#include <gtest/gtest.h>

#include "xdm/dump.hpp"

namespace bxsoap::xml {
namespace {

using namespace bxsoap::xdm;

const Element& root_of(const Document& d) {
  return static_cast<const Element&>(d.root());
}

TEST(XmlParser, MinimalDocument) {
  auto doc = parse_xml("<r/>");
  EXPECT_EQ(root_of(*doc).name().local, "r");
  EXPECT_EQ(root_of(*doc).child_count(), 0u);
}

TEST(XmlParser, NestedElementsAndText) {
  auto doc = parse_xml("<r><a>x</a><b/></r>");
  const Element& r = root_of(*doc);
  ASSERT_EQ(r.child_count(), 2u);
  const auto* a = static_cast<const Element*>(r.find_child("a"));
  EXPECT_EQ(a->string_value(), "x");
}

TEST(XmlParser, AttributesBothQuoteStyles) {
  auto doc = parse_xml("<r a=\"1\" b='2'/>");
  const Element& r = root_of(*doc);
  EXPECT_EQ(r.find_attribute("a")->text(), "1");
  EXPECT_EQ(r.find_attribute("b")->text(), "2");
}

TEST(XmlParser, EntityReferencesInTextAndAttributes) {
  auto doc = parse_xml("<r k=\"&lt;&amp;&quot;&apos;\">&gt;&#65;&#x42;</r>");
  const Element& r = root_of(*doc);
  EXPECT_EQ(r.find_attribute("k")->text(), "<&\"'");
  EXPECT_EQ(r.string_value(), ">AB");
}

TEST(XmlParser, NumericReferenceUtf8) {
  auto doc = parse_xml("<r>&#x3B1;&#946;</r>");  // alpha beta
  EXPECT_EQ(root_of(*doc).string_value(), "\xCE\xB1\xCE\xB2");
}

TEST(XmlParser, CdataIsPlainText) {
  auto doc = parse_xml("<r><![CDATA[a<b&c]]></r>");
  EXPECT_EQ(root_of(*doc).string_value(), "a<b&c");
}

TEST(XmlParser, CdataMergesWithSurroundingText) {
  auto doc = parse_xml("<r>x<![CDATA[<]]>y</r>");
  const Element& r = root_of(*doc);
  ASSERT_EQ(r.child_count(), 1u) << "single merged text node";
  EXPECT_EQ(r.string_value(), "x<y");
}

TEST(XmlParser, CommentsAndPis) {
  auto doc = parse_xml("<!--top--><?pi data?><r><!--in--><?p d?></r>");
  ASSERT_EQ(doc->children().size(), 3u);
  EXPECT_EQ(doc->children()[0]->kind(), NodeKind::kComment);
  EXPECT_EQ(doc->children()[1]->kind(), NodeKind::kPI);
  const Element& r = root_of(*doc);
  ASSERT_EQ(r.child_count(), 2u);
  EXPECT_EQ(r.children()[0]->kind(), NodeKind::kComment);
  EXPECT_EQ(static_cast<const PINode&>(*r.children()[1]).target(), "p");
}

TEST(XmlParser, XmlDeclarationSkipped) {
  auto doc = parse_xml("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n<r/>");
  EXPECT_EQ(root_of(*doc).name().local, "r");
}

TEST(XmlParser, NamespaceResolution) {
  auto doc = parse_xml(
      "<x:r xmlns:x=\"urn:a\" xmlns=\"urn:d\">"
      "<x:c/><plain/><y:c xmlns:y=\"urn:b\"/></x:r>");
  const Element& r = root_of(*doc);
  EXPECT_EQ(r.name().namespace_uri, "urn:a");
  EXPECT_EQ(r.name().prefix, "x");
  auto kids = r.child_elements();
  ASSERT_EQ(kids.size(), 3u);
  EXPECT_EQ(kids[0]->name().namespace_uri, "urn:a");
  EXPECT_EQ(kids[1]->name().namespace_uri, "urn:d")
      << "unprefixed element takes the default namespace";
  EXPECT_EQ(kids[2]->name().namespace_uri, "urn:b");
}

TEST(XmlParser, DefaultNamespaceUndeclaration) {
  auto doc = parse_xml("<r xmlns=\"urn:d\"><c xmlns=\"\"/></r>");
  auto kids = root_of(*doc).child_elements();
  ASSERT_EQ(kids.size(), 1u);
  EXPECT_EQ(kids[0]->name().namespace_uri, "");
}

TEST(XmlParser, UnprefixedAttributeHasNoNamespace) {
  auto doc = parse_xml("<r xmlns=\"urn:d\" a=\"1\"/>");
  const Attribute* a = root_of(*doc).find_attribute("a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->name.namespace_uri, "");
}

TEST(XmlParser, PrefixedAttributeResolves) {
  auto doc = parse_xml("<r xmlns:p=\"urn:p\" p:a=\"1\"/>");
  const Attribute* a = root_of(*doc).find_attribute(QName("urn:p", "a"));
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->text(), "1");
}

TEST(XmlParser, NamespaceDeclarationsRecordedOnElement) {
  auto doc = parse_xml("<r xmlns:p=\"urn:p\" xmlns=\"urn:d\"/>");
  const auto& ns = root_of(*doc).namespaces();
  ASSERT_EQ(ns.size(), 2u);
  EXPECT_EQ(ns[0].prefix, "p");
  EXPECT_EQ(ns[1].prefix, "");
}

TEST(XmlParser, XmlPrefixIsPredeclared) {
  auto doc = parse_xml("<r xml:lang=\"en\"/>");
  const Attribute* a = root_of(*doc).find_attribute(
      QName("http://www.w3.org/XML/1998/namespace", "lang"));
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->text(), "en");
}

TEST(XmlParser, IgnoreWhitespaceOption) {
  ParseOptions opt;
  opt.ignore_whitespace = true;
  auto doc = parse_xml("<r>\n  <a/>\n  <b/>\n</r>", opt);
  EXPECT_EQ(root_of(*doc).child_count(), 2u);

  auto strict = parse_xml("<r>\n  <a/>\n  <b/>\n</r>");
  EXPECT_EQ(root_of(*strict).child_count(), 5u) << "whitespace kept by default";
}

TEST(XmlParser, WhitespaceInsideTextIsNeverDropped) {
  ParseOptions opt;
  opt.ignore_whitespace = true;
  auto doc = parse_xml("<r> a </r>", opt);
  EXPECT_EQ(root_of(*doc).string_value(), " a ");
}

// ---- error cases ------------------------------------------------------------

TEST(XmlParserErrors, MismatchedTags) {
  EXPECT_THROW(parse_xml("<a></b>"), ParseError);
}

TEST(XmlParserErrors, UnterminatedElement) {
  EXPECT_THROW(parse_xml("<a><b></b>"), ParseError);
}

TEST(XmlParserErrors, MultipleRoots) {
  EXPECT_THROW(parse_xml("<a/><b/>"), ParseError);
}

TEST(XmlParserErrors, TextOutsideRoot) {
  EXPECT_THROW(parse_xml("x<a/>"), ParseError);
  EXPECT_THROW(parse_xml("<a/>x"), ParseError);
  EXPECT_NO_THROW(parse_xml(" <a/> \n"));
}

TEST(XmlParserErrors, EmptyInput) {
  EXPECT_THROW(parse_xml(""), ParseError);
  EXPECT_THROW(parse_xml("   "), ParseError);
}

TEST(XmlParserErrors, DoctypeRejected) {
  EXPECT_THROW(parse_xml("<!DOCTYPE html><r/>"), ParseError);
}

TEST(XmlParserErrors, UnknownEntity) {
  EXPECT_THROW(parse_xml("<r>&nbsp;</r>"), ParseError);
}

TEST(XmlParserErrors, UnquotedAttribute) {
  EXPECT_THROW(parse_xml("<r a=1/>"), ParseError);
}

TEST(XmlParserErrors, DuplicateAttribute) {
  EXPECT_THROW(parse_xml("<r a=\"1\" a=\"2\"/>"), ParseError);
}

TEST(XmlParserErrors, UnboundPrefix) {
  EXPECT_THROW(parse_xml("<p:r/>"), ParseError);
}

TEST(XmlParserErrors, LtInAttributeValue) {
  EXPECT_THROW(parse_xml("<r a=\"<\"/>"), ParseError);
}

TEST(XmlParserErrors, DoubleHyphenInComment) {
  EXPECT_THROW(parse_xml("<!--a--b--><r/>"), ParseError);
}

TEST(XmlParserErrors, BadCharacterReference) {
  EXPECT_THROW(parse_xml("<r>&#xZZ;</r>"), ParseError);
  EXPECT_THROW(parse_xml("<r>&#;</r>"), ParseError);
  EXPECT_THROW(parse_xml("<r>&#x110000;</r>"), ParseError);
}

TEST(XmlParserErrors, ErrorCarriesLineAndColumn) {
  try {
    parse_xml("<a>\n<b>\n</c>\n</a>");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 3u);
    EXPECT_NE(std::string(e.what()).find("xml:3:"), std::string::npos);
  }
}

TEST(XmlParserErrors, MissingAttributeWhitespace) {
  EXPECT_THROW(parse_xml("<r a=\"1\"b=\"2\"/>"), ParseError);
}

}  // namespace
}  // namespace bxsoap::xml
