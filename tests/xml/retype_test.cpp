#include "xml/retype.hpp"

#include <gtest/gtest.h>

#include "common/prng.hpp"
#include "xdm/equal.hpp"
#include "xml/ns_constants.hpp"
#include "xml/parser.hpp"
#include "xml/writer.hpp"

namespace bxsoap::xml {
namespace {

using namespace bxsoap::xdm;

/// The full transcode loop the paper requires: typed tree -> text ->
/// untyped parse -> retype must restore the original tree.
DocumentPtr text_round_trip(const Document& doc) {
  const std::string text = write_xml(doc);
  auto parsed = parse_xml(text);
  return retype(*parsed);
}

TEST(Retype, LeafDouble) {
  auto doc = make_document(make_leaf<double>(QName("t"), 287.4375));
  auto back = text_round_trip(*doc);
  EXPECT_TRUE(deep_equal(*doc, *back)) << first_difference(*doc, *back);
}

TEST(Retype, AllLeafTypes) {
  auto root = make_element(QName("all"));
  root->add_child(make_leaf<std::int8_t>(QName("i8"), -8));
  root->add_child(make_leaf<std::uint8_t>(QName("u8"), 200));
  root->add_child(make_leaf<std::int16_t>(QName("i16"), -3000));
  root->add_child(make_leaf<std::uint16_t>(QName("u16"), 60000));
  root->add_child(make_leaf<std::int32_t>(QName("i32"), -100000));
  root->add_child(make_leaf<std::uint32_t>(QName("u32"), 4000000000u));
  root->add_child(
      make_leaf<std::int64_t>(QName("i64"), -5000000000000000000LL));
  root->add_child(
      make_leaf<std::uint64_t>(QName("u64"), 18446744073709551615ULL));
  root->add_child(make_leaf<float>(QName("f32"), 1.5f));
  root->add_child(make_leaf<double>(QName("f64"), -2.5e-300));
  root->add_child(make_leaf<bool>(QName("b"), true));
  root->add_child(make_leaf<std::string>(QName("s"), std::string("x y")));
  auto doc = make_document(std::move(root));
  auto back = text_round_trip(*doc);
  EXPECT_TRUE(deep_equal(*doc, *back)) << first_difference(*doc, *back);
}

TEST(Retype, ArraysOfSeveralTypes) {
  auto root = make_element(QName("arrays"));
  root->add_child(make_array<std::int32_t>(QName("ai"), {1, -2, 3}));
  root->add_child(make_array<double>(QName("ad"), {0.5, -1.25, 3e100}));
  root->add_child(make_array<float>(QName("af"), {1.5f}));
  root->add_child(make_array<std::uint8_t>(QName("au"), {0, 255, 127}));
  auto doc = make_document(std::move(root));
  auto back = text_round_trip(*doc);
  EXPECT_TRUE(deep_equal(*doc, *back)) << first_difference(*doc, *back);
}

TEST(Retype, EmptyArray) {
  auto doc = make_document(make_array<double>(QName("a"), {}));
  auto back = text_round_trip(*doc);
  EXPECT_TRUE(deep_equal(*doc, *back)) << first_difference(*doc, *back);
}

TEST(Retype, CustomItemNamePreserved) {
  auto arr = make_array<std::int32_t>(QName("a"), {1, 2});
  arr->set_item_name("v");
  auto doc = make_document(std::move(arr));
  auto back = text_round_trip(*doc);
  EXPECT_TRUE(deep_equal(*doc, *back)) << first_difference(*doc, *back);
  const auto& a = static_cast<const ArrayElementBase&>(back->root());
  EXPECT_EQ(a.item_name(), "v");
}

TEST(Retype, TypedAttributesRestored) {
  auto e = make_element(QName("e"));
  e->add_attribute(QName("id"), std::int32_t{17});
  e->add_attribute(QName("w"), 2.5);
  e->add_attribute(QName("s"), std::string("text"));
  auto doc = make_document(std::move(e));
  auto back = text_round_trip(*doc);
  EXPECT_TRUE(deep_equal(*doc, *back)) << first_difference(*doc, *back);
}

TEST(Retype, MixedTreeWithNamespaces) {
  auto root = make_element(QName("urn:app", "data", "app"));
  root->declare_namespace("app", "urn:app");
  root->add_attribute(QName("run"), std::string("42"));
  auto& meta = root->add_element(QName("urn:app", "meta", "app"));
  meta.add_text("free text ");
  meta.add_child(std::make_unique<CommentNode>("note"));
  root->add_child(make_leaf<double>(QName("urn:app", "temp", "app"), 287.5));
  root->add_child(
      make_array<std::int32_t>(QName("urn:app", "idx", "app"), {9, 8, 7}));
  auto doc = make_document(std::move(root));
  auto back = text_round_trip(*doc);
  EXPECT_TRUE(deep_equal(*doc, *back)) << first_difference(*doc, *back);
}

TEST(Retype, FullPrecisionDoubles) {
  // The paper: floats "are converted to full precision"; shortest-round-trip
  // formatting must restore bit-identical values.
  SplitMix64 rng(1234);
  auto arr = std::make_unique<ArrayElement<double>>(QName("a"));
  for (int i = 0; i < 500; ++i) {
    arr->values().push_back(rng.next_double(-1e300, 1e300));
  }
  auto doc = make_document(std::move(arr));
  auto back = text_round_trip(*doc);
  EXPECT_TRUE(deep_equal(*doc, *back)) << first_difference(*doc, *back);
}

TEST(Retype, UnannotatedDocumentPassesThrough) {
  auto parsed = parse_xml("<r><c a=\"1\">text</c></r>");
  auto typed = retype(*parsed);
  EXPECT_TRUE(deep_equal(*parsed, *typed));
  EXPECT_EQ(typed->root().kind(), NodeKind::kElement);
}

TEST(Retype, IsIdempotent) {
  auto doc = make_document(make_leaf<double>(QName("t"), 1.5));
  auto once = text_round_trip(*doc);
  // Retyping an already-typed tree must be a no-op.
  auto twice = retype(*once);
  EXPECT_TRUE(deep_equal(*once, *twice));
}

TEST(Retype, ReservedNamespaceResidueRemoved) {
  auto doc = make_document(make_leaf<double>(QName("t"), 1.5));
  auto back = text_round_trip(*doc);
  const ElementBase& root = back->root();
  for (const auto& d : root.namespaces()) {
    EXPECT_NE(d.uri, kXsiUri);
    EXPECT_NE(d.uri, kXsdUri);
    EXPECT_NE(d.uri, kBxUri);
  }
  EXPECT_TRUE(root.attributes().empty());
}

TEST(RetypeErrors, UnknownXsdType) {
  auto parsed = parse_xml(
      "<t xmlns:xsi=\"http://www.w3.org/2001/XMLSchema-instance\" "
      "xmlns:xsd=\"http://www.w3.org/2001/XMLSchema\" "
      "xsi:type=\"xsd:decimal\">1</t>");
  EXPECT_THROW(retype(*parsed), DecodeError);
}

TEST(RetypeErrors, TypePrefixNotXsd) {
  auto parsed = parse_xml(
      "<t xmlns:xsi=\"http://www.w3.org/2001/XMLSchema-instance\" "
      "xmlns:other=\"urn:other\" xsi:type=\"other:double\">1</t>");
  EXPECT_THROW(retype(*parsed), DecodeError);
}

TEST(RetypeErrors, LeafWithElementChildren) {
  auto parsed = parse_xml(
      "<t xmlns:xsi=\"http://www.w3.org/2001/XMLSchema-instance\" "
      "xmlns:xsd=\"http://www.w3.org/2001/XMLSchema\" "
      "xsi:type=\"xsd:double\"><child/></t>");
  EXPECT_THROW(retype(*parsed), DecodeError);
}

TEST(RetypeErrors, BadLexicalValue) {
  auto parsed = parse_xml(
      "<t xmlns:xsi=\"http://www.w3.org/2001/XMLSchema-instance\" "
      "xmlns:xsd=\"http://www.w3.org/2001/XMLSchema\" "
      "xsi:type=\"xsd:int\">not-a-number</t>");
  EXPECT_THROW(retype(*parsed), DecodeError);
}

TEST(RetypeErrors, ArrayWithStrayText) {
  auto parsed = parse_xml(
      "<a xmlns:bx=\"urn:bxsa:annotations\" "
      "xmlns:xsd=\"http://www.w3.org/2001/XMLSchema\" "
      "bx:arrayType=\"xsd:int\"><d>1</d>junk</a>");
  EXPECT_THROW(retype(*parsed), DecodeError);
}

TEST(RetypeErrors, AnnotationForMissingAttribute) {
  auto parsed = parse_xml(
      "<e xmlns:bx=\"urn:bxsa:annotations\" "
      "xmlns:xsd=\"http://www.w3.org/2001/XMLSchema\" "
      "bx:at-id=\"xsd:int\"/>");
  EXPECT_THROW(retype(*parsed), DecodeError);
}

}  // namespace
}  // namespace bxsoap::xml
