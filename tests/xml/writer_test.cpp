#include "xml/writer.hpp"

#include <gtest/gtest.h>

#include "xdm/node.hpp"

namespace bxsoap::xml {
namespace {

using namespace bxsoap::xdm;

WriteOptions plain() {
  WriteOptions o;
  o.emit_type_info = false;
  return o;
}

TEST(XmlWriter, EmptyElement) {
  Element e{QName("empty")};
  EXPECT_EQ(write_xml(e, plain()), "<empty/>");
}

TEST(XmlWriter, NestedElementsAndText) {
  auto root = make_element(QName("r"));
  auto& c = root->add_element(QName("c"));
  c.add_text("hi");
  EXPECT_EQ(write_xml(*root, plain()), "<r><c>hi</c></r>");
}

TEST(XmlWriter, TextIsEscaped) {
  auto root = make_element(QName("r"));
  root->add_text("a<b&c");
  EXPECT_EQ(write_xml(*root, plain()), "<r>a&lt;b&amp;c</r>");
}

TEST(XmlWriter, AttributesEscapedAndQuoted) {
  Element e{QName("e")};
  e.add_attribute(QName("k"), std::string("a\"b<c"));
  EXPECT_EQ(write_xml(e, plain()), "<e k=\"a&quot;b&lt;c\"/>");
}

TEST(XmlWriter, ExplicitNamespaceDeclarationsHonored) {
  auto root = make_element(QName("urn:x", "r", "x"));
  root->declare_namespace("x", "urn:x");
  EXPECT_EQ(write_xml(*root, plain()), "<x:r xmlns:x=\"urn:x\"/>");
}

TEST(XmlWriter, AutoDeclaresMissingPrefix) {
  Element e{QName("urn:x", "r", "x")};
  EXPECT_EQ(write_xml(e, plain()), "<x:r xmlns:x=\"urn:x\"/>");
}

TEST(XmlWriter, AutoDeclaresDefaultNamespaceForUnprefixedName) {
  Element e{QName("urn:x", "r")};
  EXPECT_EQ(write_xml(e, plain()), "<r xmlns=\"urn:x\"/>");
}

TEST(XmlWriter, ChildReusesParentDeclaration) {
  auto root = make_element(QName("urn:x", "r", "x"));
  root->declare_namespace("x", "urn:x");
  root->add_child(make_element(QName("urn:x", "c", "x")));
  EXPECT_EQ(write_xml(*root, plain()),
            "<x:r xmlns:x=\"urn:x\"><x:c/></x:r>");
}

TEST(XmlWriter, UnprefixedChildUnderDefaultNamespaceIsUndeclared) {
  auto root = make_element(QName("urn:x", "r"));
  root->add_child(make_element(QName("c")));  // no namespace!
  EXPECT_EQ(write_xml(*root, plain()),
            "<r xmlns=\"urn:x\"><c xmlns=\"\"/></r>");
}

TEST(XmlWriter, PrefixConflictGeneratesFreshPrefix) {
  auto root = make_element(QName("urn:a", "r", "p"));
  root->declare_namespace("p", "urn:a");
  // Child claims the same prefix for a different URI; writer must not emit
  // a lying binding.
  root->add_child(make_element(QName("urn:b", "c", "p")));
  const std::string s = write_xml(*root, plain());
  EXPECT_NE(s.find("xmlns:p=\"urn:a\""), std::string::npos);
  // The child must use some prefix bound to urn:b.
  EXPECT_NE(s.find("=\"urn:b\""), std::string::npos);
  EXPECT_EQ(s.find("<p:c"), std::string::npos);
}

TEST(XmlWriter, AttributeNeverUsesDefaultNamespace) {
  auto root = make_element(QName("urn:x", "r"));
  root->add_attribute(QName("urn:x", "k"), std::string("v"));
  const std::string s = write_xml(*root, plain());
  // Attribute must get an explicit prefix even though urn:x is the default.
  EXPECT_NE(s.find(":k=\"v\""), std::string::npos);
}

TEST(XmlWriter, LeafWithTypeInfo) {
  LeafElement<double> leaf{QName("t"), 2.5};
  const std::string s = write_xml(leaf);
  EXPECT_EQ(s,
            "<t xmlns:xsi=\"http://www.w3.org/2001/XMLSchema-instance\" "
            "xmlns:xsd=\"http://www.w3.org/2001/XMLSchema\" "
            "xsi:type=\"xsd:double\">2.5</t>");
}

TEST(XmlWriter, LeafWithoutTypeInfo) {
  LeafElement<std::int32_t> leaf{QName("n"), -5};
  EXPECT_EQ(write_xml(leaf, plain()), "<n>-5</n>");
}

TEST(XmlWriter, ArrayPlainFormMatchesPaperShape) {
  // Table 1's XML: one element per item with a short tag name.
  ArrayElement<std::int32_t> arr{QName("a"), {1, 2, 3}};
  EXPECT_EQ(write_xml(arr, plain()), "<a><d>1</d><d>2</d><d>3</d></a>");
}

TEST(XmlWriter, ArrayTypedFormCarriesAnnotations) {
  ArrayElement<double> arr{QName("a"), {0.5}};
  const std::string s = write_xml(arr);
  EXPECT_NE(s.find("arrayType=\"xsd:double\""), std::string::npos);
  EXPECT_NE(s.find("<d>0.5</d>"), std::string::npos);
}

TEST(XmlWriter, ArrayCustomItemName) {
  ArrayElement<std::int32_t> arr{QName("a"), {7}};
  arr.set_item_name("item");
  const std::string s = write_xml(arr);
  EXPECT_NE(s.find("itemName=\"item\""), std::string::npos);
  EXPECT_NE(s.find("<item>7</item>"), std::string::npos);
}

TEST(XmlWriter, TypedAttributeAnnotation) {
  Element e{QName("e")};
  e.add_attribute(QName("id"), std::int32_t{9});
  const std::string s = write_xml(e);
  EXPECT_NE(s.find("id=\"9\""), std::string::npos);
  EXPECT_NE(s.find(":at-id=\"xsd:int\""), std::string::npos);
}

TEST(XmlWriter, StringAttributeHasNoAnnotation) {
  Element e{QName("e")};
  e.add_attribute(QName("k"), std::string("v"));
  const std::string s = write_xml(e);
  EXPECT_EQ(s.find("at-"), std::string::npos);
}

TEST(XmlWriter, CommentAndPi) {
  auto doc = std::make_unique<Document>();
  doc->add_child(std::make_unique<CommentNode>(" hello "));
  doc->add_child(std::make_unique<PINode>("target", "data x"));
  doc->add_child(make_element(QName("r")));
  EXPECT_EQ(write_xml(*doc, plain()), "<!-- hello --><?target data x?><r/>");
}

TEST(XmlWriter, XmlDeclOption) {
  Element e{QName("r")};
  WriteOptions o = plain();
  o.xml_decl = true;
  EXPECT_EQ(write_xml(e, o),
            "<?xml version=\"1.0\" encoding=\"UTF-8\"?><r/>");
}

TEST(XmlWriter, PrettyPrintIndentsElementChildren) {
  auto root = make_element(QName("r"));
  root->add_element(QName("a"));
  root->add_element(QName("b"));
  WriteOptions o = plain();
  o.indent = 2;
  EXPECT_EQ(write_xml(*root, o), "<r>\n  <a/>\n  <b/>\n</r>");
}

TEST(XmlWriter, PrettyPrintKeepsMixedContentInline) {
  auto root = make_element(QName("r"));
  root->add_text("a");
  root->add_element(QName("b"));
  WriteOptions o = plain();
  o.indent = 2;
  EXPECT_EQ(write_xml(*root, o), "<r>a<b/></r>");
}

}  // namespace
}  // namespace bxsoap::xml
