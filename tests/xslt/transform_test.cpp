#include "xslt/transform.hpp"

#include <gtest/gtest.h>

#include "bxsa/decoder.hpp"
#include "bxsa/encoder.hpp"
#include "xdm/equal.hpp"
#include "xml/parser.hpp"
#include "xml/retype.hpp"
#include "xml/writer.hpp"

namespace bxsoap::xslt {
namespace {

using namespace bxsoap::xdm;

DocumentPtr catalog() {
  auto root = make_element(QName("urn:obs", "stations", "o"));
  root->declare_namespace("o", "urn:obs");
  const struct {
    int id;
    const char* name;
    double temp;
  } rows[] = {{1, "Bloomington", 281.0}, {2, "Chicago", 279.5},
              {3, "Indianapolis", 282.25}};
  for (const auto& r : rows) {
    auto& s = root->add_element(QName("urn:obs", "station", "o"));
    s.add_attribute(QName("id"), static_cast<std::int32_t>(r.id));
    s.add_child(make_leaf<std::string>(QName("urn:obs", "name", "o"),
                                       std::string(r.name)));
    s.add_child(make_leaf<double>(QName("urn:obs", "temp", "o"), r.temp));
  }
  return make_document(std::move(root));
}

constexpr std::string_view kReportStylesheet = R"(
<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
  <xsl:template match="/">
    <report><xsl:apply-templates select="//o:station"/></report>
  </xsl:template>
  <xsl:template match="o:station">
    <row>
      <city><xsl:value-of select="o:name"/></city>
      <kelvin><xsl:value-of select="o:temp"/></kelvin>
    </row>
  </xsl:template>
</xsl:stylesheet>)";

PrefixMap obs_prefixes() {
  PrefixMap p;
  p["o"] = "urn:obs";
  return p;
}

TEST(Xslt, ReportTransform) {
  const Stylesheet sheet =
      Stylesheet::compile(kReportStylesheet, obs_prefixes());
  const DocumentPtr result = sheet.apply(*catalog());

  xml::WriteOptions plain;
  plain.emit_type_info = false;
  EXPECT_EQ(xml::write_xml(*result, plain),
            "<report>"
            "<row><city>Bloomington</city><kelvin>281</kelvin></row>"
            "<row><city>Chicago</city><kelvin>279.5</kelvin></row>"
            "<row><city>Indianapolis</city><kelvin>282.25</kelvin></row>"
            "</report>");
}

TEST(Xslt, SameResultFromAllThreeSources) {
  // The Figure 3 point: the transform runs identically over binary XML.
  const Stylesheet sheet =
      Stylesheet::compile(kReportStylesheet, obs_prefixes());

  const DocumentPtr in_memory = catalog();
  const auto bxsa_bytes = bxsa::encode(*in_memory);
  const DocumentPtr from_bxsa = bxsa::decode_document(bxsa_bytes);
  xml::WriteOptions typed;
  const DocumentPtr from_xml =
      xml::retype(*xml::parse_xml(xml::write_xml(*in_memory, typed)));

  const DocumentPtr a = sheet.apply(*in_memory);
  const DocumentPtr b = sheet.apply(*from_bxsa);
  const DocumentPtr c = sheet.apply(*from_xml);
  EXPECT_TRUE(deep_equal(*a, *b)) << first_difference(*a, *b);
  EXPECT_TRUE(deep_equal(*a, *c)) << first_difference(*a, *c);
}

TEST(Xslt, BuiltInRulesCopyTextThroughElements) {
  // No template matches <wrapper>; built-ins recurse and emit text.
  const Stylesheet sheet = Stylesheet::compile(
      "<xsl:stylesheet xmlns:xsl=\"http://www.w3.org/1999/XSL/Transform\">"
      "<xsl:template match=\"keep\"><kept/></xsl:template>"
      "</xsl:stylesheet>");
  auto doc = xml::parse_xml("<wrapper>text <keep>x</keep> tail</wrapper>");
  const DocumentPtr result = sheet.apply(*doc);
  xml::WriteOptions plain;
  plain.emit_type_info = false;
  // Document has multiple top-level children: text, <kept/>, text.
  std::string out;
  for (const auto& c : result->children()) {
    out += xml::write_xml(*c, plain);
  }
  EXPECT_EQ(out, "text <kept/> tail");
}

TEST(Xslt, ValueOfAttributeAndSelf) {
  const Stylesheet sheet = Stylesheet::compile(
      "<xsl:stylesheet xmlns:xsl=\"http://www.w3.org/1999/XSL/Transform\">"
      "<xsl:template match=\"item\">"
      "<out id=\"copied\"><xsl:value-of select=\"@id\"/>:"
      "<xsl:value-of select=\".\"/></out>"
      "</xsl:template></xsl:stylesheet>");
  auto doc = xml::parse_xml("<item id=\"i7\">payload</item>");
  const DocumentPtr result = sheet.apply(*doc);
  xml::WriteOptions plain;
  plain.emit_type_info = false;
  EXPECT_EQ(xml::write_xml(*result, plain),
            "<out id=\"copied\">i7:payload</out>");
}

TEST(Xslt, IfInstruction) {
  const Stylesheet sheet = Stylesheet::compile(
      "<xsl:stylesheet xmlns:xsl=\"http://www.w3.org/1999/XSL/Transform\">"
      "<xsl:template match=\"e\">"
      "<xsl:if test=\"@flag\"><flagged/></xsl:if>"
      "<xsl:if test=\"child\"><has-child/></xsl:if>"
      "</xsl:template></xsl:stylesheet>");
  {
    auto doc = xml::parse_xml("<e flag=\"1\"/>");
    const DocumentPtr result = sheet.apply(*doc);
    ASSERT_EQ(result->children().size(), 1u);
    EXPECT_EQ(result->root().name().local, "flagged");
  }
  {
    auto doc = xml::parse_xml("<e><child/></e>");
    const DocumentPtr result = sheet.apply(*doc);
    ASSERT_EQ(result->children().size(), 1u);
    EXPECT_EQ(result->root().name().local, "has-child");
  }
}

TEST(Xslt, TypedLeavesRenderThroughValueOf) {
  // A leaf decoded from BXSA renders its native double via value-of.
  auto root = make_element(QName("m"));
  root->add_child(make_leaf<double>(QName("v"), 0.5));
  root->add_child(make_array<std::int32_t>(QName("a"), {1, 2, 3}));
  const auto bytes = bxsa::encode(*make_document(std::move(root)));
  const DocumentPtr doc = bxsa::decode_document(bytes);

  const Stylesheet sheet = Stylesheet::compile(
      "<xsl:stylesheet xmlns:xsl=\"http://www.w3.org/1999/XSL/Transform\">"
      "<xsl:template match=\"m\">"
      "<t><xsl:value-of select=\"v\"/>|<xsl:value-of select=\"a\"/></t>"
      "</xsl:template></xsl:stylesheet>");
  const DocumentPtr result = sheet.apply(*doc);
  xml::WriteOptions plain;
  plain.emit_type_info = false;
  EXPECT_EQ(xml::write_xml(*result, plain), "<t>0.5|1 2 3</t>");
}

TEST(Xslt, TemplatePrecedenceNameOverWildcard) {
  const Stylesheet sheet = Stylesheet::compile(
      "<xsl:stylesheet xmlns:xsl=\"http://www.w3.org/1999/XSL/Transform\">"
      "<xsl:template match=\"*\"><other/></xsl:template>"
      "<xsl:template match=\"special\"><special-out/></xsl:template>"
      "</xsl:stylesheet>");
  auto doc = xml::parse_xml("<special/>");
  const DocumentPtr result = sheet.apply(*doc);
  EXPECT_EQ(result->root().name().local, "special-out");
}

TEST(Xslt, ForEachSwitchesContext) {
  const Stylesheet sheet = Stylesheet::compile(
      "<xsl:stylesheet xmlns:xsl=\"http://www.w3.org/1999/XSL/Transform\">"
      "<xsl:template match=\"list\">"
      "<ul><xsl:for-each select=\"item\">"
      "<li><xsl:value-of select=\"@n\"/>=<xsl:value-of select=\".\"/></li>"
      "</xsl:for-each></ul>"
      "</xsl:template></xsl:stylesheet>");
  auto doc = xml::parse_xml(
      "<list><item n=\"a\">1</item><item n=\"b\">2</item></list>");
  xml::WriteOptions plain;
  plain.emit_type_info = false;
  EXPECT_EQ(xml::write_xml(*sheet.apply(*doc), plain),
            "<ul><li>a=1</li><li>b=2</li></ul>");
}

TEST(Xslt, ChooseTakesFirstTrueBranch) {
  const Stylesheet sheet = Stylesheet::compile(
      "<xsl:stylesheet xmlns:xsl=\"http://www.w3.org/1999/XSL/Transform\">"
      "<xsl:template match=\"e\"><xsl:choose>"
      "<xsl:when test=\"@hot\"><hot/></xsl:when>"
      "<xsl:when test=\"@cold\"><cold/></xsl:when>"
      "<xsl:otherwise><mild/></xsl:otherwise>"
      "</xsl:choose></xsl:template></xsl:stylesheet>");
  auto check = [&](const char* in, const char* expected) {
    auto doc = xml::parse_xml(in);
    EXPECT_EQ(sheet.apply(*doc)->root().name().local, expected) << in;
  };
  check("<e hot=\"1\"/>", "hot");
  check("<e cold=\"1\"/>", "cold");
  check("<e hot=\"1\" cold=\"1\"/>", "hot");
  check("<e/>", "mild");
}

TEST(Xslt, AttributeValueTemplates) {
  const Stylesheet sheet = Stylesheet::compile(
      "<xsl:stylesheet xmlns:xsl=\"http://www.w3.org/1999/XSL/Transform\">"
      "<xsl:template match=\"p\">"
      "<a href=\"/users/{@id}\" note=\"{{literal}} {name}\"/>"
      "</xsl:template></xsl:stylesheet>");
  auto doc = xml::parse_xml("<p id=\"42\"><name>ada</name></p>");
  xml::WriteOptions plain;
  plain.emit_type_info = false;
  EXPECT_EQ(xml::write_xml(*sheet.apply(*doc), plain),
            "<a href=\"/users/42\" note=\"{literal} ada\"/>");
}

TEST(XsltErrors, BadAvtAndChoose) {
  const Stylesheet unterminated = Stylesheet::compile(
      "<xsl:stylesheet xmlns:xsl=\"http://www.w3.org/1999/XSL/Transform\">"
      "<xsl:template match=\"p\"><a x=\"{oops\"/></xsl:template>"
      "</xsl:stylesheet>");
  EXPECT_THROW(unterminated.apply(*xml::parse_xml("<p/>")), TransformError);

  const Stylesheet bad_choose = Stylesheet::compile(
      "<xsl:stylesheet xmlns:xsl=\"http://www.w3.org/1999/XSL/Transform\">"
      "<xsl:template match=\"p\"><xsl:choose><xsl:value-of select=\".\"/>"
      "</xsl:choose></xsl:template></xsl:stylesheet>");
  EXPECT_THROW(bad_choose.apply(*xml::parse_xml("<p/>")), TransformError);
}

TEST(XsltErrors, Malformed) {
  EXPECT_THROW(Stylesheet::compile("<notxsl/>"), TransformError);
  EXPECT_THROW(
      Stylesheet::compile(
          "<xsl:stylesheet "
          "xmlns:xsl=\"http://www.w3.org/1999/XSL/Transform\"/>"),
      TransformError)
      << "no templates";
  EXPECT_THROW(
      Stylesheet::compile(
          "<xsl:stylesheet "
          "xmlns:xsl=\"http://www.w3.org/1999/XSL/Transform\">"
          "<xsl:template><x/></xsl:template></xsl:stylesheet>"),
      TransformError)
      << "missing @match";
  EXPECT_THROW(
      Stylesheet::compile(
          "<xsl:stylesheet "
          "xmlns:xsl=\"http://www.w3.org/1999/XSL/Transform\">"
          "<xsl:template match=\"a/b\"><x/></xsl:template>"
          "</xsl:stylesheet>"),
      TransformError)
      << "unsupported pattern";
  EXPECT_THROW(
      Stylesheet::compile(
          "<xsl:stylesheet "
          "xmlns:xsl=\"http://www.w3.org/1999/XSL/Transform\">"
          "<xsl:template match=\"a\"><xsl:copy-of select=\"b\"/>"
          "</xsl:template></xsl:stylesheet>")
          .apply(*xml::parse_xml("<a/>")),
      TransformError)
      << "unsupported instruction";
}

}  // namespace
}  // namespace bxsoap::xslt
